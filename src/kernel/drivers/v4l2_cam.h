// V4L2 camera driver (simulated vendor ISP pipeline).
//
// Standard V4L2 shape: querycap, format negotiation, buffer queue, stream
// on/off. Planted bug (Table II #12): issuing S_FMT with the vendor RAW
// format while streaming is rejected with EBUSY but still flips the
// capability flags; the next QUERYCAP sees inconsistent caps and trips
// "WARNING in v4l_querycap". Requires a full negotiate/reqbufs/streamon
// prefix, then the vendor format, then querycap.
#pragma once

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct V4l2Bugs {
  bool querycap_warn = false;  // Table II #12 (device E)
};

class V4l2CamDriver final : public Driver {
 public:
  static constexpr uint64_t kIocQuerycap = 0xb001;
  static constexpr uint64_t kIocEnumFmt = 0xb002;   // u32 index
  static constexpr uint64_t kIocSetFmt = 0xb003;    // u32 fourcc, u32 w, u32 h
  static constexpr uint64_t kIocReqbufs = 0xb004;   // u32 count
  static constexpr uint64_t kIocQbuf = 0xb005;      // u32 index
  static constexpr uint64_t kIocDqbuf = 0xb006;
  static constexpr uint64_t kIocStreamOn = 0xb007;
  static constexpr uint64_t kIocStreamOff = 0xb008;

  // Supported fourcc codes; the last one is the vendor RAW format.
  static constexpr uint32_t kFmtYuyv = 0x56595559;  // 'YUYV'
  static constexpr uint32_t kFmtNv12 = 0x3231564e;  // 'NV12'
  static constexpr uint32_t kFmtMjpg = 0x47504a4d;  // 'MJPG'
  static constexpr uint32_t kFmtVraw = 0x57415256;  // 'VRAW' vendor raw

  explicit V4l2CamDriver(V4l2Bugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "v4l2_cam"; }
  std::vector<std::string> nodes() const override { return {"/dev/video0"}; }
  std::vector<std::string> state_names() const override {
    return {"open", "configured", "buffers", "streaming"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$VIDIOC_S_FMT", {{"width", 640}, {"height", 480}}}}},
        {1, 2, {{"ioctl$VIDIOC_REQBUFS", {{"count", 4}}}}},
        // STREAMON additionally requires a queued buffer, so the edge is a
        // two-call combo.
        {2, 3,
         {{"ioctl$VIDIOC_QBUF", {{"index", 0}}}, {"ioctl$VIDIOC_STREAMON"}}},
        {3, 2, {{"ioctl$VIDIOC_STREAMOFF"}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(fourcc_);
    b.u32(width_);
    b.u32(height_);
    b.u32(nbufs_);
    b.u32(queued_);
    b.b(streaming_);
    b.b(caps_dirty_);
    b.u32(frames_);
  }
  void load_state(StateReader& r) override {
    fourcc_ = r.u32();
    width_ = r.u32();
    height_ = r.u32();
    nbufs_ = r.u32();
    queued_ = r.u32();
    streaming_ = r.b();
    caps_dirty_ = r.b();
    frames_ = r.u32();
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }
  int64_t read(DriverCtx& ctx, File& f, size_t n,
               std::vector<uint8_t>& out) override;
  int64_t mmap(DriverCtx& ctx, File& f, size_t len, uint64_t prot) override;

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  // Protocol position derived from the pipeline setup flags.
  size_t protocol_state() const {
    if (streaming_) return 3;
    if (nbufs_ > 0) return 2;
    if (fourcc_ != 0) return 1;
    return 0;
  }

  uint32_t fourcc_ = 0;
  uint32_t width_ = 0, height_ = 0;
  uint32_t nbufs_ = 0;
  uint32_t queued_ = 0;
  bool streaming_ = false;
  bool caps_dirty_ = false;
  uint32_t frames_ = 0;

  V4l2Bugs bugs_;
};

}  // namespace df::kernel::drivers
