#include "kernel/drivers/wifi_rate.h"

namespace df::kernel::drivers {

// Block map: 1xx scan, 2xx rates, 3xx assoc, 4xx power, 5xx link.

void WifiRateDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void WifiRateDriver::reset() {
  scanned_bss_ = 0;
  rate_count_ = 0;
  rates_set_ = false;
  power_mode_ = 0;
  associated_ = false;
}

int64_t WifiRateDriver::ioctl_impl(DriverCtx& ctx, File&, uint64_t req,
                              std::span<const uint8_t> in,
                              std::vector<uint8_t>& out) {
  switch (req) {
    case kIocScan:
      ctx.cov(110);
      if (associated_) {
        ctx.cov(111);
        return err::kEBUSY;
      }
      scanned_bss_ = 4;  // simulated environment has four APs
      ctx.covp(12, power_mode_);  // scan dwell depends on power mode
      put_u32(out, scanned_bss_);
      return 0;
    case kIocSetRates: {
      ctx.cov(200);
      const uint32_t count = le_u32(in, 0);
      if (count > 16) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      if (count == 0) {
        // Mainline rejects an empty table; the vendor 11b-compat path
        // (power mode 2) forgot the check on the *update* path, which only
        // runs once a table has been programmed before.
        if (!(bugs_.empty_rates_warn && power_mode_ == 2 && rates_set_)) {
          ctx.cov(202);
          return err::kEINVAL;
        }
        ctx.cov(203);
      }
      if (in.size() < 4 + count * 2u) {
        ctx.cov(204);
        return err::kEINVAL;
      }
      for (uint32_t i = 0; i < count; ++i) {
        const uint16_t rate = le_u16(in, 4 + i * 2);
        // Rates are in 500 kbps units and must match the PHY's supported
        // set, as mac80211 validates against the sband rate table.
        static constexpr uint16_t kSupported[] = {2,  4,  11, 12, 18, 22,
                                                  24, 36, 48, 72, 96, 108};
        bool valid = false;
        for (uint16_t s : kSupported) valid = valid || s == rate;
        if (!valid) {
          ctx.cov(205);
          return err::kEINVAL;
        }
        ctx.covp(21, rate % 12);  // per-rate-bucket init
      }
      rate_count_ = count;
      rates_set_ = true;
      ctx.covp(22, count);
      return 0;
    }
    case kIocAssoc: {
      ctx.cov(300);
      const uint32_t idx = le_u32(in, 0);
      if (scanned_bss_ == 0) {
        ctx.cov(301);
        return err::kEINVAL;  // must scan first
      }
      if (idx >= scanned_bss_) {
        ctx.cov(302);
        return err::kEINVAL;
      }
      if (!rates_set_) {
        ctx.cov(303);
        return err::kEINVAL;
      }
      if (associated_) {
        ctx.cov(304);
        return err::kEBUSY;
      }
      // rate_control_rate_init: pick the initial tx rate from the table.
      ctx.cov(310);
      if (rate_count_ == 0) {
        ctx.cov(311);
        ctx.warn("rate_control_rate_init", "empty supported-rates table");
      } else {
        ctx.covp(32, rate_count_);
      }
      associated_ = true;
      ctx.covp(33, idx);
      return 0;
    }
    case kIocDisassoc:
      ctx.cov(320);
      if (!associated_) return err::kEINVAL;
      associated_ = false;
      ctx.cov(321);
      return 0;
    case kIocSetPower: {
      ctx.cov(400);
      const uint32_t mode = le_u32(in, 0);
      if (mode > 3) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      power_mode_ = mode;
      ctx.covp(41, mode);
      return 0;
    }
    case kIocGetLink:
      ctx.cov(500);
      put_u32(out, associated_ ? 1 : 0);
      put_u32(out, rate_count_);
      ctx.covp(51, (associated_ ? 4 : 0) + power_mode_);
      return 0;
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

}  // namespace df::kernel::drivers
