// Vendor Wi-Fi driver with mac80211-style rate control (simulated).
//
// Scan -> (optional power/compat tuning) -> supported-rates table -> assoc.
// Planted bug (Table II #10): with the legacy "11b compat" power mode set,
// the vendor path accepts an *empty* supported-rates table; association then
// runs rate_control_rate_init over zero rates and trips
// "WARNING in rate_control_rate_init".
#pragma once

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct WifiRateBugs {
  bool empty_rates_warn = false;  // Table II #10 (device C2)
};

class WifiRateDriver final : public Driver {
 public:
  static constexpr uint64_t kIocScan = 0xa001;
  static constexpr uint64_t kIocSetRates = 0xa002;  // u32 count, u16 rates[]
  static constexpr uint64_t kIocAssoc = 0xa003;     // u32 bss index
  static constexpr uint64_t kIocDisassoc = 0xa004;
  static constexpr uint64_t kIocSetPower = 0xa005;  // u32 mode 0..3
  static constexpr uint64_t kIocGetLink = 0xa006;

  explicit WifiRateDriver(WifiRateBugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "wifi_rate"; }
  std::vector<std::string> nodes() const override { return {"/dev/wifi0"}; }
  std::vector<std::string> state_names() const override {
    return {"idle", "scanned", "rates_set", "associated"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$WIFI_SCAN"}}},
        // One rate entry, 2 (1 Mbps in 500 kbps units) little-endian.
        {1, 2,
         {{"ioctl$WIFI_SET_RATES", {{"count", 1}, {"rates", 0, {0x02, 0x00}}}}}},
        {2, 3, {{"ioctl$WIFI_ASSOC", {{"bss", 0}}}}},
        {3, 2, {{"ioctl$WIFI_DISASSOC"}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(scanned_bss_);
    b.u32(rate_count_);
    b.b(rates_set_);
    b.u32(power_mode_);
    b.b(associated_);
  }
  void load_state(StateReader& r) override {
    scanned_bss_ = r.u32();
    rate_count_ = r.u32();
    rates_set_ = r.b();
    power_mode_ = r.u32();
    associated_ = r.b();
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  // Protocol position derived from the connection-setup flags.
  size_t protocol_state() const {
    if (associated_) return 3;
    if (rates_set_) return 2;
    if (scanned_bss_ > 0) return 1;
    return 0;
  }

  uint32_t scanned_bss_ = 0;   // results of the last scan
  uint32_t rate_count_ = 0;
  bool rates_set_ = false;
  uint32_t power_mode_ = 0;
  bool associated_ = false;

  WifiRateBugs bugs_;
};

}  // namespace df::kernel::drivers
