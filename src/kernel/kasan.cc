#include "kernel/kasan.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace df::kernel {

void Kasan::free(HeapPtr p, std::string_view driver, std::string_view site) {
  if (p == kNullHeapPtr) return;  // kfree(NULL) is a no-op, as in Linux
  const Heap::Slab* s = heap_.find(p);
  if (s == nullptr) {
    ++reports_;
    dmesg_.kasan(driver, "invalid-free", site, "wild pointer");
    return;
  }
  if (!s->live) {
    ++reports_;
    dmesg_.kasan(driver, "double-free", site, "object " + s->tag);
    return;
  }
  heap_.free(p);
}

bool Kasan::check(HeapPtr p, size_t off, size_t len, Access kind,
                  std::string_view driver, std::string_view site) {
  const char* dir = kind == Access::kRead ? "Read" : "Write";
  if (p == kNullHeapPtr) {
    ++reports_;
    dmesg_.kasan(driver, std::string("null-ptr-deref ") + dir, site);
    return false;
  }
  const Heap::Slab* s = heap_.find(p);
  if (s == nullptr) {
    ++reports_;
    dmesg_.kasan(driver, std::string("invalid-access ") + dir, site,
                 "wild pointer");
    return false;
  }
  if (!s->live) {
    ++reports_;
    dmesg_.kasan(driver, std::string("slab-use-after-free ") + dir, site,
                 "object " + s->tag);
    return false;
  }
  if (off > s->size || len > s->size - off) {
    ++reports_;
    dmesg_.kasan(driver, std::string("slab-out-of-bounds ") + dir, site,
                 "object " + s->tag);
    return false;
  }
  return true;
}

bool Kasan::read(HeapPtr p, size_t off, std::span<uint8_t> dst,
                 std::string_view driver, std::string_view site) {
  if (!check(p, off, dst.size(), Access::kRead, driver, site)) return false;
  const Heap::Slab* s = heap_.find(p);
  std::memcpy(dst.data(), s->bytes.data() + off, dst.size());
  return true;
}

bool Kasan::write(HeapPtr p, size_t off, std::span<const uint8_t> src,
                  std::string_view driver, std::string_view site) {
  if (!check(p, off, src.size(), Access::kWrite, driver, site)) return false;
  Heap::Slab* s = heap_.find_mutable(p);
  std::memcpy(s->bytes.data() + off, src.data(), src.size());
  return true;
}

}  // namespace df::kernel
