// Simulated Kernel Address Sanitizer.
//
// Wraps the slab Heap with the access-checking policy KASAN provides on an
// instrumented kernel: every driver access to a heap object goes through
// `check_*`, and violations (use-after-free, out-of-bounds, invalid-access,
// double-free) produce dmesg reports titled exactly like real KASAN splats
// ("KASAN: slab-use-after-free Read in <site>"). Fatal, as on a panic_on_warn
// fuzzing kernel.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "kernel/dmesg.h"
#include "kernel/kmalloc.h"

namespace df::kernel {

enum class Access { kRead, kWrite };

class Kasan {
 public:
  explicit Kasan(Dmesg& dmesg) : dmesg_(dmesg) {}

  HeapPtr alloc(size_t size, std::string_view tag) {
    return heap_.alloc(size, tag);
  }

  // Frees p; reports "double-free" / "invalid-free" on misuse.
  // `driver`/`site` attribute the report.
  void free(HeapPtr p, std::string_view driver, std::string_view site);

  // Checks a [off, off+len) access. Returns true if the access is valid.
  // On violation a KASAN report is raised and false is returned; callers
  // must treat the access as not having happened.
  bool check(HeapPtr p, size_t off, size_t len, Access kind,
             std::string_view driver, std::string_view site);

  // Checked data access helpers (return false and report on violation).
  bool read(HeapPtr p, size_t off, std::span<uint8_t> dst,
            std::string_view driver, std::string_view site);
  bool write(HeapPtr p, size_t off, std::span<const uint8_t> src,
             std::string_view driver, std::string_view site);

  Heap& heap() { return heap_; }
  const Heap& heap() const { return heap_; }

  size_t report_count() const { return reports_; }
  void reset() { heap_.reset(); }

 private:
  Dmesg& dmesg_;
  Heap heap_;
  size_t reports_ = 0;
};

}  // namespace df::kernel
