#include "kernel/kcov.h"

// Kcov is header-only today; this TU anchors the target and keeps room for
// an out-of-line comparison mode (full PC traces) later.
