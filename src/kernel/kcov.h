// Simulated kcov: per-task kernel code-coverage collection.
//
// Drivers report basic-block hits via DriverCtx::cov(); each hit becomes a
// 64-bit coverage feature `(driver_id << 48) | block`, so per-driver
// attribution (used by the paper's per-driver coverage claim) is a mask away.
// Like real kcov, collection is per-task and drained by the executor after
// each program; unlike real kcov we deduplicate at insertion for efficiency.
//
// Hot-path note: hit() runs for every covered basic block of every
// execution, so the dedup set is an open-addressing util::U64Set and both
// it and the hit buffer retain their capacity across executions — a
// steady-state collect() does no allocator work (BM_KcovRecord in
// bench_micro.cc measures this against the old unordered_set shape).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/u64_set.h"

namespace df::kernel {

// Packs a (driver, block) pair into one coverage feature.
constexpr uint64_t cov_feature(uint16_t driver_id, uint64_t block) {
  return (static_cast<uint64_t>(driver_id) << 48) | (block & 0xffffffffffffull);
}
constexpr uint16_t cov_driver(uint64_t feature) {
  return static_cast<uint16_t>(feature >> 48);
}

class Kcov {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void hit(uint64_t feature) {
    if (!enabled_) return;
    if (seen_.insert(feature)) buf_.push_back(feature);
  }

  // Drains the per-exec buffer (ordered by first hit) into a fresh vector.
  // The internal buffer and dedup set keep their capacity.
  std::vector<uint64_t> collect() {
    std::vector<uint64_t> out(buf_.begin(), buf_.end());
    reset();
    return out;
  }

  // Allocation-free drain: appends the pending features to `out` (callers
  // owning a reusable buffer avoid the per-exec vector).
  void collect_into(std::vector<uint64_t>& out) {
    out.insert(out.end(), buf_.begin(), buf_.end());
    reset();
  }

  size_t pending() const { return buf_.size(); }

 private:
  void reset() {
    buf_.clear();
    seen_.clear();
  }

  bool enabled_ = false;
  util::U64Set seen_;
  std::vector<uint64_t> buf_;
};

}  // namespace df::kernel
