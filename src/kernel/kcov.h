// Simulated kcov: per-task kernel code-coverage collection.
//
// Drivers report basic-block hits via DriverCtx::cov(); each hit becomes a
// 64-bit coverage feature `(driver_id << 48) | block`, so per-driver
// attribution (used by the paper's per-driver coverage claim) is a mask away.
// Like real kcov, collection is per-task and drained by the executor after
// each program; unlike real kcov we deduplicate at insertion for efficiency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace df::kernel {

// Packs a (driver, block) pair into one coverage feature.
constexpr uint64_t cov_feature(uint16_t driver_id, uint64_t block) {
  return (static_cast<uint64_t>(driver_id) << 48) | (block & 0xffffffffffffull);
}
constexpr uint16_t cov_driver(uint64_t feature) {
  return static_cast<uint16_t>(feature >> 48);
}

class Kcov {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void hit(uint64_t feature) {
    if (!enabled_) return;
    if (seen_.insert(feature).second) buf_.push_back(feature);
  }

  // Drains the per-exec buffer (ordered by first hit).
  std::vector<uint64_t> collect() {
    std::vector<uint64_t> out;
    out.swap(buf_);
    seen_.clear();
    return out;
  }

  size_t pending() const { return buf_.size(); }

 private:
  bool enabled_ = false;
  std::unordered_set<uint64_t> seen_;
  std::vector<uint64_t> buf_;
};

}  // namespace df::kernel
