#include "kernel/kernel.h"

#include <algorithm>

#include "util/log.h"

namespace df::kernel {

const char* sys_name(Sys nr) {
  switch (nr) {
    case Sys::kOpenAt: return "openat";
    case Sys::kClose: return "close";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kIoctl: return "ioctl";
    case Sys::kMmap: return "mmap";
    case Sys::kMunmap: return "munmap";
    case Sys::kLseek: return "lseek";
    case Sys::kFcntl: return "fcntl";
    case Sys::kDup: return "dup";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kConnect: return "connect";
    case Sys::kListen: return "listen";
    case Sys::kAccept: return "accept";
    case Sys::kSetsockopt: return "setsockopt";
    case Sys::kGetsockopt: return "getsockopt";
    case Sys::kSendmsg: return "sendmsg";
    case Sys::kRecvmsg: return "recvmsg";
    case Sys::kPoll: return "poll";
    case Sys::kFsync: return "fsync";
    case Sys::kCount: break;
  }
  return "?";
}

Kernel::Kernel(KernelConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed), dmesg_(), kasan_(dmesg_) {}

Kernel::~Kernel() = default;

Driver& Kernel::register_driver(std::unique_ptr<Driver> drv) {
  drv->driver_id_ = static_cast<uint16_t>(drivers_.size() + 1);  // 0 == core
  drivers_.push_back(std::move(drv));
  return *drivers_.back();
}

void Kernel::boot() {
  registry_.clear();
  Task boot_task;
  boot_task.id = 0;
  boot_task.origin = TaskOrigin::kKernel;
  boot_task.name = "kworker/boot";
  for (auto& drv : drivers_) {
    for (auto& node : drv->nodes()) registry_.add_node(node, drv.get());
    for (auto& triple : drv->socket_protos())
      registry_.add_socket(triple, drv.get());
    drv->state_machine_boot();
    DriverCtx ctx(*this, boot_task, *drv);
    drv->probe(ctx);
  }
  booted_ = true;
}

void Kernel::reboot() {
  // Close every task's open files without running release hooks against
  // half-dead driver state; drivers reset wholesale below.
  for (auto& [tid, task] : tasks_) task->fds.clear();
  for (auto& drv : drivers_) drv->reset();
  kasan_.reset();
  mappings_.clear();
  dmesg_.clear_panic();
  ++reboot_count_;
  boot();
}

TaskId Kernel::create_task(TaskOrigin origin, std::string name) {
  auto t = std::make_unique<Task>();
  t->id = next_task_++;
  t->origin = origin;
  t->name = std::move(name);
  const TaskId id = t->id;
  tasks_.emplace(id, std::move(t));
  return id;
}

void Kernel::exit_task(TaskId tid) {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) return;
  Task& task = *it->second;
  for (auto& f : task.fds.clear()) {
    if (f.use_count() == 1) close_file(task, f);
  }
  task.alive = false;
  tasks_.erase(it);
}

Task* Kernel::task(TaskId tid) {
  auto it = tasks_.find(tid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

void Kernel::kcov_enable(TaskId tid) {
  if (Task* t = task(tid)) t->kcov.enable();
}

void Kernel::kcov_disable(TaskId tid) {
  if (Task* t = task(tid)) t->kcov.disable();
}

std::vector<uint64_t> Kernel::kcov_collect(TaskId tid) {
  Task* t = task(tid);
  return t ? t->kcov.collect() : std::vector<uint64_t>{};
}

void Kernel::kcov_collect_into(TaskId tid, std::vector<uint64_t>& out) {
  if (Task* t = task(tid)) t->kcov.collect_into(out);
}

int Kernel::attach_tracepoint(Tracepoint hook) {
  const int id = next_tp_++;
  tracepoints_.emplace(id, std::move(hook));
  return id;
}

void Kernel::detach_tracepoint(int id) { tracepoints_.erase(id); }

Driver* Kernel::find_driver(std::string_view name) const {
  for (const auto& d : drivers_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

std::unordered_map<uint16_t, size_t> Kernel::per_driver_coverage() const {
  std::unordered_map<uint16_t, size_t> out;
  for (uint64_t f : cumulative_cov_) ++out[cov_driver(f)];
  return out;
}

void Kernel::record_cov(uint16_t driver_id, uint64_t block, Task& task) {
  const uint64_t feature = cov_feature(driver_id, block);
  task.kcov.hit(feature);
  cumulative_cov_.insert(feature);
}

Kernel::Cursors Kernel::cursors() const {
  Cursors c;
  c.rng = rng_.state();
  c.reboot_count = reboot_count_;
  c.syscall_count = syscall_count_;
  c.next_map = next_map_;
  c.next_task = next_task_;
  c.heap_next = kasan_.heap().next_handle();
  return c;
}

void Kernel::restore_cursors(const Cursors& c) {
  rng_.set_state(c.rng);
  reboot_count_ = c.reboot_count;
  syscall_count_ = c.syscall_count;
  next_map_ = c.next_map;
  next_task_ = c.next_task;
  kasan_.heap().set_next_handle(c.heap_next);
}

void Kernel::save_live(StateBuf& out) const {
  const util::RngState rs = rng_.state();
  for (uint64_t word : rs.s) out.u64(word);
  out.u64(next_map_);
  // mappings_ is an unordered_map; emit in handle order for a
  // byte-deterministic section image.
  std::vector<uint64_t> handles;
  handles.reserve(mappings_.size());
  for (const auto& [h, v] : mappings_) handles.push_back(h);
  std::sort(handles.begin(), handles.end());
  out.u32(static_cast<uint32_t>(handles.size()));
  for (const uint64_t h : handles) {
    out.u64(h);
    out.u64(mappings_.at(h));
  }
}

void Kernel::load_live(StateReader& in) {
  util::RngState rs;
  for (uint64_t& word : rs.s) word = in.u64();
  rng_.set_state(rs);
  next_map_ = in.u64();
  mappings_.clear();
  const uint32_t n = in.u32();
  for (uint32_t i = 0; i < n && in.ok(); ++i) {
    const uint64_t h = in.u64();
    mappings_.emplace(h, in.u64());
  }
}

void Kernel::save_task_files(TaskId tid, StateBuf& out) const {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) {
    out.u32(0);
    out.u32(0);
    out.i32(3);
    return;
  }
  const Task& t = *it->second;
  // Unique File descriptions in first-appearance fd order (fds() iterates
  // the sorted fd map, so this order is deterministic).
  std::vector<const File*> uniq;
  std::vector<std::pair<int32_t, uint32_t>> table;
  for (const int32_t fd : t.fds.fds()) {
    const std::shared_ptr<File> f = t.fds.get(fd);
    uint32_t idx = 0;
    for (; idx < uniq.size(); ++idx) {
      if (uniq[idx] == f.get()) break;
    }
    if (idx == uniq.size()) uniq.push_back(f.get());
    table.emplace_back(fd, idx);
  }
  out.u32(static_cast<uint32_t>(uniq.size()));
  for (const File* f : uniq) {
    uint16_t didx = 0xFFFF;
    for (size_t i = 0; i < drivers_.size(); ++i) {
      if (drivers_[i].get() == f->drv) {
        didx = static_cast<uint16_t>(i);
        break;
      }
    }
    out.u16(didx);
    out.str(f->path);
    out.u64(f->flags);
    out.u64(f->pos);
    out.b(f->is_sock);
    out.u64(f->sock_type);
    out.u64(f->sock_proto);
    StateBuf priv;
    if (f->drv != nullptr) f->drv->save_file_state(*f, priv);
    out.blob(priv.bytes());
  }
  out.u32(static_cast<uint32_t>(table.size()));
  for (const auto& [fd, idx] : table) {
    out.i32(fd);
    out.u32(idx);
  }
  out.i32(t.fds.next_fd());
}

bool Kernel::load_task_files(TaskId tid, StateReader& in) {
  Task* t = task(tid);
  if (t == nullptr) return false;
  // Drop the current table without release hooks (the drivers are restored
  // wholesale by the same snapshot, exactly as in reboot()).
  t->fds.clear();
  const uint32_t nfiles = in.u32();
  std::vector<std::shared_ptr<File>> files;
  files.reserve(nfiles);
  for (uint32_t i = 0; i < nfiles && in.ok(); ++i) {
    auto f = std::make_shared<File>();
    const uint16_t didx = in.u16();
    f->drv = didx < drivers_.size() ? drivers_[didx].get() : nullptr;
    f->path = in.str();
    f->flags = in.u64();
    f->pos = in.u64();
    f->is_sock = in.b();
    f->sock_type = in.u64();
    f->sock_proto = in.u64();
    const std::vector<uint8_t> priv = in.blob();
    if (f->drv != nullptr) {
      StateReader pr(priv);
      f->drv->load_file_state(*f, pr);
    }
    files.push_back(std::move(f));
  }
  const uint32_t nfds = in.u32();
  for (uint32_t i = 0; i < nfds && in.ok(); ++i) {
    const int32_t fd = in.i32();
    const uint32_t idx = in.u32();
    if (idx < files.size()) t->fds.restore_install(fd, files[idx]);
  }
  t->fds.set_next_fd(in.i32());
  return in.ok();
}

void Kernel::close_file(Task& task, const std::shared_ptr<File>& f) {
  if (f && f->drv) {
    DriverCtx ctx(*this, task, *f->drv);
    f->drv->release(ctx, *f);
  }
}

namespace {
// Outcome class for core-kernel path coverage: success and common errno
// families take distinct syscall-entry blocks.
uint64_t outcome_class(int64_t ret) {
  if (ret >= 0) return 0;
  switch (ret) {
    case err::kEBADF: return 1;
    case err::kEINVAL: return 2;
    case err::kENOTTY: return 3;
    case err::kENOENT: return 4;
    case err::kEOPNOTSUPP: return 5;
    default: return 6;
  }
}
}  // namespace

SyscallRes Kernel::syscall(TaskId tid, const SyscallReq& req) {
  Task* t = task(tid);
  if (t == nullptr || !booted_) return {err::kEPERM, {}};
  ++syscall_count_;
  SyscallRes res = dispatch(*t, req);
  // Core-kernel syscall entry/exit path coverage (driver_id 0).
  record_cov(0, static_cast<uint64_t>(req.nr) * 8 + outcome_class(res.ret),
             *t);
  for (auto& [id, hook] : tracepoints_) hook(*t, req, res);
  return res;
}

SyscallRes Kernel::dispatch(Task& task, const SyscallReq& req) {
  SyscallRes res;
  // `op` names the driver handler for the driver-op hook; nullptr marks
  // core-kernel paths (lseek/fcntl/fsync) that never enter driver code.
  auto with_file = [&](const char* op, auto&& fn) {
    std::shared_ptr<File> f = task.fds.get(req.fd);
    if (!f) {
      res.ret = err::kEBADF;
      return;
    }
    DriverCtx ctx(*this, task, *f->drv);
    const bool hooked = op != nullptr && driver_op_hook_ != nullptr;
    if (hooked) driver_op_hook_(f->drv->name(), op, true);
    res.ret = fn(ctx, *f);
    if (hooked) driver_op_hook_(f->drv->name(), op, false);
  };

  switch (req.nr) {
    case Sys::kOpenAt: {
      Driver* drv = registry_.resolve(req.path);
      if (drv == nullptr) {
        res.ret = err::kENOENT;
        break;
      }
      auto f = std::make_shared<File>();
      f->drv = drv;
      f->path = req.path;
      f->flags = req.arg;
      DriverCtx ctx(*this, task, *drv);
      if (driver_op_hook_) driver_op_hook_(drv->name(), "open", true);
      const int64_t rc = drv->open(ctx, *f);
      if (driver_op_hook_) driver_op_hook_(drv->name(), "open", false);
      if (rc < 0) {
        res.ret = rc;
        break;
      }
      res.ret = task.fds.install(std::move(f));
      break;
    }
    case Sys::kClose: {
      std::shared_ptr<File> f = task.fds.remove(req.fd);
      if (!f) {
        res.ret = err::kEBADF;
        break;
      }
      if (f.use_count() == 1) close_file(task, f);
      res.ret = 0;
      break;
    }
    case Sys::kDup: {
      std::shared_ptr<File> f = task.fds.get(req.fd);
      if (!f) {
        res.ret = err::kEBADF;
        break;
      }
      res.ret = task.fds.install(std::move(f));
      break;
    }
    case Sys::kRead:
      with_file("read", [&](DriverCtx& ctx, File& f) {
        return f.drv->read(ctx, f, req.size, res.out);
      });
      break;
    case Sys::kWrite:
      with_file("write", [&](DriverCtx& ctx, File& f) {
        return f.drv->write(ctx, f, req.data);
      });
      break;
    case Sys::kIoctl:
      with_file("ioctl", [&](DriverCtx& ctx, File& f) {
        return f.drv->ioctl(ctx, f, req.arg, req.data, res.out);
      });
      break;
    case Sys::kMmap:
      with_file("mmap", [&](DriverCtx& ctx, File& f) -> int64_t {
        const int64_t rc = f.drv->mmap(ctx, f, req.size, req.arg);
        if (rc < 0) return rc;
        const uint64_t handle = next_map_;
        next_map_ += 0x1000;
        mappings_.emplace(handle, static_cast<uint64_t>(rc));
        return static_cast<int64_t>(handle);
      });
      break;
    case Sys::kMunmap:
      res.ret = mappings_.erase(req.arg) ? 0 : err::kEINVAL;
      break;
    case Sys::kLseek:
      with_file(nullptr, [&](DriverCtx&, File& f) -> int64_t {
        f.pos = req.arg;
        return static_cast<int64_t>(f.pos);
      });
      break;
    case Sys::kFcntl:
      with_file(nullptr, [&](DriverCtx&, File& f) -> int64_t {
        if (req.arg == 1 /*F_GETFL*/) return static_cast<int64_t>(f.flags);
        if (req.arg == 2 /*F_SETFL*/) {
          f.flags = req.arg2;
          return 0;
        }
        return err::kEINVAL;
      });
      break;
    case Sys::kFsync:
      with_file(nullptr, [&](DriverCtx&, File&) -> int64_t { return 0; });
      break;
    case Sys::kPoll:
      with_file("poll", [&](DriverCtx& ctx, File& f) {
        return f.drv->poll(ctx, f, req.arg);
      });
      break;
    case Sys::kSocket: {
      Driver* drv = registry_.resolve_socket(req.arg, req.arg2, req.arg3);
      if (drv == nullptr) {
        res.ret = err::kEINVAL;
        break;
      }
      auto f = std::make_shared<File>();
      f->drv = drv;
      f->is_sock = true;
      f->sock_type = req.arg2;
      f->sock_proto = req.arg3;
      f->path = "sock:" + std::to_string(req.arg) + ":" +
                std::to_string(req.arg3);
      DriverCtx ctx(*this, task, *drv);
      if (driver_op_hook_) driver_op_hook_(drv->name(), "socket", true);
      const int64_t rc = drv->sock_create(ctx, *f);
      if (driver_op_hook_) driver_op_hook_(drv->name(), "socket", false);
      if (rc < 0) {
        res.ret = rc;
        break;
      }
      res.ret = task.fds.install(std::move(f));
      break;
    }
    case Sys::kBind:
      with_file("bind", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->bind(ctx, f, req.data);
      });
      break;
    case Sys::kConnect:
      with_file("connect", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->connect(ctx, f, req.data);
      });
      break;
    case Sys::kListen:
      with_file("listen", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->listen(ctx, f, req.arg);
      });
      break;
    case Sys::kAccept: {
      std::shared_ptr<File> f = task.fds.get(req.fd);
      if (!f) {
        res.ret = err::kEBADF;
        break;
      }
      if (!f->is_sock) {
        res.ret = err::kEOPNOTSUPP;
        break;
      }
      auto child = std::make_shared<File>();
      child->drv = f->drv;
      child->is_sock = true;
      child->sock_type = f->sock_type;
      child->sock_proto = f->sock_proto;
      child->path = f->path + ":accepted";
      DriverCtx ctx(*this, task, *f->drv);
      if (driver_op_hook_) driver_op_hook_(f->drv->name(), "accept", true);
      const int64_t rc = f->drv->accept(ctx, *f, *child);
      if (driver_op_hook_) driver_op_hook_(f->drv->name(), "accept", false);
      if (rc < 0) {
        res.ret = rc;
        break;
      }
      res.ret = task.fds.install(std::move(child));
      break;
    }
    case Sys::kSetsockopt:
      with_file("setsockopt", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->setsockopt(ctx, f, req.arg, req.arg2, req.data);
      });
      break;
    case Sys::kGetsockopt:
      with_file("getsockopt", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->getsockopt(ctx, f, req.arg, req.arg2, res.out);
      });
      break;
    case Sys::kSendmsg:
      with_file("sendmsg", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->sendmsg(ctx, f, req.data);
      });
      break;
    case Sys::kRecvmsg:
      with_file("recvmsg", [&](DriverCtx& ctx, File& f) -> int64_t {
        if (!f.is_sock) return err::kEOPNOTSUPP;
        return f.drv->recvmsg(ctx, f, req.size, res.out);
      });
      break;
    case Sys::kCount:
      res.ret = err::kEINVAL;
      break;
  }
  return res;
}

}  // namespace df::kernel
