// The simulated Linux kernel: task contexts, syscall dispatch, driver
// registry, kcov, KASAN, dmesg, and eBPF-style tracepoints.
//
// One Kernel instance is one booted device kernel. Everything is
// single-threaded and deterministic: given the same driver set, seed and
// syscall sequence, coverage and crash behaviour replay exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kernel/dmesg.h"
#include "kernel/driver.h"
#include "kernel/kasan.h"
#include "kernel/kcov.h"
#include "kernel/syscall.h"
#include "kernel/vfs.h"
#include "util/rng.h"

namespace df::kernel {

using TaskId = uint32_t;

// Who issued a syscall. The eBPF tracer filters on kHal to implement the
// paper's "system calls originating from the HAL" directional coverage.
enum class TaskOrigin { kNative, kHal, kApp, kKernel };

struct Task {
  TaskId id = 0;
  TaskOrigin origin = TaskOrigin::kNative;
  std::string name;
  bool alive = true;
  FdTable fds;
  Kcov kcov;
};

struct KernelConfig {
  std::string version = "6.6";
  uint64_t seed = 1;
  // Loop-watchdog budget per syscall; exceeding it raises a hang report.
  size_t loop_budget = 4096;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig cfg = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- setup ---------------------------------------------------------------
  // Register before boot(). Returns a stable reference for configuration.
  Driver& register_driver(std::unique_ptr<Driver> drv);
  // Populates the node registry and probes every driver.
  void boot();
  // Full reboot: closes all files, resets drivers and heap, clears panic,
  // and re-probes. Tasks survive (their fds do not). Coverage statistics
  // and dmesg sequence numbers are campaign-global and survive too.
  void reboot();
  bool booted() const { return booted_; }

  // --- tasks ---------------------------------------------------------------
  TaskId create_task(TaskOrigin origin, std::string name);
  void exit_task(TaskId tid);  // closes the task's fds
  Task* task(TaskId tid);

  // --- syscalls --------------------------------------------------------------
  SyscallRes syscall(TaskId tid, const SyscallReq& req);

  // --- kcov ------------------------------------------------------------------
  void kcov_enable(TaskId tid);
  void kcov_disable(TaskId tid);
  std::vector<uint64_t> kcov_collect(TaskId tid);
  // Allocation-free variant: appends the task's pending features to `out`
  // (the broker reuses one buffer across tasks and executions).
  void kcov_collect_into(TaskId tid, std::vector<uint64_t>& out);

  // --- tracepoints (eBPF attach surface) --------------------------------------
  // Hook invoked after every syscall completes. Returns an id for detach.
  using Tracepoint =
      std::function<void(const Task&, const SyscallReq&, const SyscallRes&)>;
  int attach_tracepoint(Tracepoint hook);
  void detach_tracepoint(int id);

  // Hook invoked around every driver handler invocation (open/ioctl/...):
  // enter=true immediately before the op, enter=false after it returns.
  // Installed by the execution layer for driver-handler span tracing; when
  // empty (the default) each dispatch pays only one branch.
  using DriverOpHook =
      std::function<void(std::string_view driver, const char* op, bool enter)>;
  void set_driver_op_hook(DriverOpHook hook) {
    driver_op_hook_ = std::move(hook);
  }

  // --- observability ----------------------------------------------------------
  Dmesg& dmesg() { return dmesg_; }
  const Dmesg& dmesg() const { return dmesg_; }
  Kasan& kasan() { return kasan_; }
  bool panicked() const { return dmesg_.panicked(); }

  const std::vector<std::unique_ptr<Driver>>& drivers() const {
    return drivers_;
  }
  Driver* find_driver(std::string_view name) const;
  const NodeRegistry& registry() const { return registry_; }

  // Cumulative coverage over the whole campaign (unions per-exec kcov).
  size_t cumulative_coverage() const { return cumulative_cov_.size(); }
  const std::unordered_set<uint64_t>& cumulative_coverage_set() const {
    return cumulative_cov_;
  }
  // Cumulative per-driver block counts, keyed by driver_id.
  std::unordered_map<uint16_t, size_t> per_driver_coverage() const;

  uint64_t syscall_count() const { return syscall_count_; }
  uint64_t reboot_count() const { return reboot_count_; }
  std::string_view version() const { return cfg_.version; }
  size_t loop_budget() const { return cfg_.loop_budget; }
  util::Rng& rng() { return rng_; }

  // --- checkpoint support -----------------------------------------------------
  // The kernel-side cursors a campaign checkpoint must carry so a resumed
  // run hands out the same ids/addresses the uninterrupted run would have.
  // Live driver/HAL state is deliberately NOT here — checkpoints are taken
  // right after a barrier reboot, when that state is freshly reset on both
  // sides (core/fuzz/checkpoint.h).
  struct Cursors {
    util::RngState rng;
    uint64_t reboot_count = 0;
    uint64_t syscall_count = 0;
    uint64_t next_map = 0;
    uint32_t next_task = 0;
    uint64_t heap_next = 0;
  };
  Cursors cursors() const;
  void restore_cursors(const Cursors& c);

  // --- snapshot support (DESIGN.md §13) ---------------------------------------
  // Live kernel state orthogonal to the Cursors block: the RNG position and
  // the mmap handle table + cursor. Campaign-cumulative counters (syscall
  // and reboot counts, cumulative coverage, dmesg sequence) are deliberately
  // untouched — a snapshot restore rewinds the device, not the campaign.
  void save_live(StateBuf& out) const;
  void load_live(StateReader& in);
  // One task's open-file table: unique File descriptions (driver, path,
  // flags, per-open driver state via Driver::save_file_state) plus the
  // fd -> file map (dup() sharing preserved) and the fd cursor. Restore
  // replaces the task's table without running release hooks, exactly like
  // reboot() — the drivers are wholesale-restored by the same snapshot.
  void save_task_files(TaskId tid, StateBuf& out) const;
  bool load_task_files(TaskId tid, StateReader& in);
  // A snapshot is only captured on a sane device, so restoring one clears
  // any panic latched since.
  void clear_panic() { dmesg_.clear_panic(); }

 private:
  friend class DriverCtx;
  void record_cov(uint16_t driver_id, uint64_t block, Task& task);
  void close_file(Task& task, const std::shared_ptr<File>& f);
  SyscallRes dispatch(Task& task, const SyscallReq& req);

  KernelConfig cfg_;
  util::Rng rng_;
  Dmesg dmesg_;
  Kasan kasan_;
  NodeRegistry registry_;
  std::vector<std::unique_ptr<Driver>> drivers_;
  std::unordered_map<TaskId, std::unique_ptr<Task>> tasks_;
  std::unordered_map<int, Tracepoint> tracepoints_;
  DriverOpHook driver_op_hook_;
  std::unordered_set<uint64_t> cumulative_cov_;
  std::unordered_map<uint64_t, uint64_t> mappings_;  // handle -> dummy
  TaskId next_task_ = 1;
  int next_tp_ = 1;
  uint64_t next_map_ = 0x7f0000000000ull;
  uint64_t syscall_count_ = 0;
  uint64_t reboot_count_ = 0;
  bool booted_ = false;
};

}  // namespace df::kernel
