#include "kernel/kmalloc.h"

#include <algorithm>

namespace df::kernel {

HeapPtr Heap::alloc(size_t size, std::string_view tag) {
  const HeapPtr p = next_++;
  Slab s;
  s.size = size;
  s.tag = std::string(tag);
  s.live = true;
  s.bytes.assign(size, 0);
  slabs_.emplace(p, std::move(s));
  ++live_count_;
  live_bytes_ += size;
  return p;
}

bool Heap::free(HeapPtr p) {
  auto it = slabs_.find(p);
  if (it == slabs_.end() || !it->second.live) return false;
  it->second.live = false;
  it->second.bytes.clear();
  --live_count_;
  live_bytes_ -= it->second.size;
  return true;
}

const Heap::Slab* Heap::find(HeapPtr p) const {
  auto it = slabs_.find(p);
  return it == slabs_.end() ? nullptr : &it->second;
}

Heap::Slab* Heap::find_mutable(HeapPtr p) {
  auto it = slabs_.find(p);
  return it == slabs_.end() ? nullptr : &it->second;
}

bool Heap::is_live(HeapPtr p) const {
  const Slab* s = find(p);
  return s != nullptr && s->live;
}

void Heap::reset() {
  slabs_.clear();
  live_count_ = 0;
  live_bytes_ = 0;
  // next_ keeps increasing: handles stay unique across reboots.
}

void Heap::save(StateBuf& out) const {
  out.u64(next_);
  // slabs_ is an unordered_map; serialize in handle order so identical
  // heaps always produce identical section bytes (the delta check relies
  // on byte equality).
  std::vector<HeapPtr> handles;
  handles.reserve(slabs_.size());
  for (const auto& [p, s] : slabs_) handles.push_back(p);
  std::sort(handles.begin(), handles.end());
  out.u32(static_cast<uint32_t>(handles.size()));
  for (const HeapPtr p : handles) {
    const Slab& s = slabs_.at(p);
    out.u64(p);
    out.u64(s.size);
    out.str(s.tag);
    out.b(s.live);
    out.blob(s.bytes);
  }
}

void Heap::load(StateReader& in) {
  slabs_.clear();
  live_count_ = 0;
  live_bytes_ = 0;
  next_ = in.u64();
  const uint32_t n = in.u32();
  for (uint32_t i = 0; i < n && in.ok(); ++i) {
    const HeapPtr p = in.u64();
    Slab s;
    s.size = static_cast<size_t>(in.u64());
    s.tag = in.str();
    s.live = in.b();
    s.bytes = in.blob();
    if (s.live) {
      ++live_count_;
      live_bytes_ += s.size;
    }
    slabs_.emplace(p, std::move(s));
  }
}

}  // namespace df::kernel
