#include "kernel/kmalloc.h"

namespace df::kernel {

HeapPtr Heap::alloc(size_t size, std::string_view tag) {
  const HeapPtr p = next_++;
  Slab s;
  s.size = size;
  s.tag = std::string(tag);
  s.live = true;
  s.bytes.assign(size, 0);
  slabs_.emplace(p, std::move(s));
  ++live_count_;
  live_bytes_ += size;
  return p;
}

bool Heap::free(HeapPtr p) {
  auto it = slabs_.find(p);
  if (it == slabs_.end() || !it->second.live) return false;
  it->second.live = false;
  it->second.bytes.clear();
  --live_count_;
  live_bytes_ -= it->second.size;
  return true;
}

const Heap::Slab* Heap::find(HeapPtr p) const {
  auto it = slabs_.find(p);
  return it == slabs_.end() ? nullptr : &it->second;
}

Heap::Slab* Heap::find_mutable(HeapPtr p) {
  auto it = slabs_.find(p);
  return it == slabs_.end() ? nullptr : &it->second;
}

bool Heap::is_live(HeapPtr p) const {
  const Slab* s = find(p);
  return s != nullptr && s->live;
}

void Heap::reset() {
  slabs_.clear();
  live_count_ = 0;
  live_bytes_ = 0;
  // next_ keeps increasing: handles stay unique across reboots.
}

}  // namespace df::kernel
