// Simulated slab allocator.
//
// Drivers allocate kernel objects through this heap so that the KASAN layer
// (kernel/kasan.h) can detect use-after-free, out-of-bounds and double-free
// conditions exactly where a real instrumented kernel would. Allocations are
// identified by opaque non-zero handles; freed allocations are quarantined
// (metadata retained) so late accesses remain attributable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernel/snapshot.h"

namespace df::kernel {

using HeapPtr = uint64_t;  // 0 == null
inline constexpr HeapPtr kNullHeapPtr = 0;

class Heap {
 public:
  struct Slab {
    size_t size = 0;
    std::string tag;      // allocation site tag, e.g. "bt_hci:codec_buf"
    bool live = false;
    std::vector<uint8_t> bytes;
  };

  // Returns a fresh handle; never reuses handles, so stale pointers are
  // always distinguishable from new allocations.
  HeapPtr alloc(size_t size, std::string_view tag);

  // Marks the slab freed. Returns false on double-free or bogus handle.
  bool free(HeapPtr p);

  // nullptr if the handle was never allocated.
  const Slab* find(HeapPtr p) const;
  Slab* find_mutable(HeapPtr p);

  bool is_live(HeapPtr p) const;

  size_t live_count() const { return live_count_; }
  size_t total_allocs() const { return next_ - 1; }
  size_t live_bytes() const { return live_bytes_; }

  // Drop quarantined metadata (device reboot).
  void reset();

  // Checkpoint support: handles are never reused, so the cursor must be
  // restored for a resumed run to mint the same handle values (they appear
  // in KASAN report details).
  HeapPtr next_handle() const { return next_; }
  void set_next_handle(HeapPtr p) { next_ = p; }

  // Snapshot support (DESIGN.md §13): full slab image including the
  // KASAN quarantine (freed slabs keep their metadata) and the handle
  // cursor, serialized in handle order so the section image is
  // deterministic. load() replaces the entire heap.
  void save(StateBuf& out) const;
  void load(StateReader& in);

 private:
  HeapPtr next_ = 1;
  size_t live_count_ = 0;
  size_t live_bytes_ = 0;
  std::unordered_map<HeapPtr, Slab> slabs_;
};

}  // namespace df::kernel
