// Live-state serialization primitives for the snapshot/restore layer
// (DESIGN.md §13).
//
// A StateBuf is a little-endian append-only byte buffer; a StateReader is
// its bounds-checked consumer. Drivers, HAL services and the kernel itself
// write their *live* state (protocol fields, per-open socket state, slab
// contents, fd tables) through these so the device-level StateSnapshot
// (src/device/snapshot.h) can capture and restore execution state without a
// reboot + prefix replay.
//
// Campaign-cumulative statistics (visit tallies, dmesg sequence numbers,
// cumulative coverage) are deliberately NOT part of this layer — a restore
// rewinds the device, not the campaign.
//
// Encoding is fixed little-endian so section byte images are
// platform-stable and byte-comparable (the dirty-struct delta check is a
// memcmp of section images).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace df::kernel {

class StateBuf {
 public:
  void u8(uint8_t v) { bytes_.push_back(v); }
  void u16(uint16_t v) {
    bytes_.push_back(static_cast<uint8_t>(v));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v));
    u16(static_cast<uint16_t>(v >> 16));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void blob(std::span<const uint8_t> data) {
    u32(static_cast<uint32_t>(data.size()));
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked reader. An overrun (corrupted or truncated section) trips
// ok() permanently and every subsequent read returns zero — callers check
// ok() once at the end instead of after every field.
class StateReader {
 public:
  explicit StateReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  uint16_t u16() {
    const uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(u8()) << 8));
  }
  uint32_t u32() {
    const uint32_t lo = u16();
    return lo | (static_cast<uint32_t>(u16()) << 16);
  }
  uint64_t u64() {
    const uint64_t lo = u32();
    return lo | (static_cast<uint64_t>(u32()) << 32);
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  bool b() { return u8() != 0; }
  std::string str() {
    const uint32_t n = u32();
    if (!need(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  std::vector<uint8_t> blob() {
    const uint32_t n = u32();
    if (!need(n)) return {};
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  // Every byte consumed and no overrun: the section matched the reader.
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace df::kernel
