// Simulated Linux syscall ABI.
//
// The simulated kernel exposes the subset of the Linux syscall surface that
// embedded Android HALs actually exercise against driver device nodes:
// file ops (openat/read/write/ioctl/mmap), and the socket family used by
// the Bluetooth stack (socket/bind/connect/listen/accept/setsockopt/...).
//
// The ABI is value-based rather than pointer-based: user payloads travel in
// `SyscallReq::data` and kernel output in `SyscallRes::out`. This keeps the
// simulation memory-safe while preserving everything the fuzzer and the
// eBPF-style tracer can observe on real hardware (numbers, critical
// arguments, payload bytes, ordering).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace df::kernel {

enum class Sys : uint32_t {
  kOpenAt = 0,
  kClose,
  kRead,
  kWrite,
  kIoctl,
  kMmap,
  kMunmap,
  kLseek,
  kFcntl,
  kDup,
  kSocket,
  kBind,
  kConnect,
  kListen,
  kAccept,
  kSetsockopt,
  kGetsockopt,
  kSendmsg,
  kRecvmsg,
  kPoll,
  kFsync,
  kCount,  // number of syscalls; keep last
};

// Human-readable syscall name ("openat", "ioctl", ...).
const char* sys_name(Sys nr);

// Simulated errno values (returned negated, Linux-style).
namespace err {
inline constexpr int64_t kEPERM = -1;
inline constexpr int64_t kENOENT = -2;
inline constexpr int64_t kEBADF = -9;
inline constexpr int64_t kEAGAIN = -11;
inline constexpr int64_t kENOMEM = -12;
inline constexpr int64_t kEFAULT = -14;
inline constexpr int64_t kEBUSY = -16;
inline constexpr int64_t kENODEV = -19;
inline constexpr int64_t kEINVAL = -22;
inline constexpr int64_t kENOTTY = -25;
inline constexpr int64_t kENOSPC = -28;
inline constexpr int64_t kEPIPE = -32;
inline constexpr int64_t kEPROTO = -71;
inline constexpr int64_t kEOPNOTSUPP = -95;
inline constexpr int64_t kEADDRINUSE = -98;
inline constexpr int64_t kECONNREFUSED = -111;
inline constexpr int64_t kEINTR = -4;
}  // namespace err

// Socket address families / protocols used by the simulated drivers.
inline constexpr uint64_t kAfBluetooth = 31;
inline constexpr uint64_t kBtProtoL2cap = 0;
inline constexpr uint64_t kBtProtoHci = 1;
inline constexpr uint64_t kSockSeqpacket = 5;
inline constexpr uint64_t kSockRaw = 3;

// A single syscall invocation. Fields are interpreted per syscall:
//   openat:    path, arg = flags
//   close/dup/fsync: fd
//   read:      fd, size = byte count          -> out
//   write:     fd, data
//   ioctl:     fd, arg = request, data (in)   -> out (driver-dependent)
//   mmap:      fd, size = length, arg = prot  -> ret = mapping handle
//   munmap:    arg = mapping handle
//   lseek:     fd, arg = offset, arg2 = whence
//   fcntl:     fd, arg = cmd, arg2 = value
//   socket:    arg = family, arg2 = type, arg3 = protocol
//   bind/connect: fd, data = address bytes
//   listen:    fd, arg = backlog
//   accept:    fd                              -> ret = new fd
//   setsockopt: fd, arg = level, arg2 = optname, data
//   getsockopt: fd, arg = level, arg2 = optname -> out
//   sendmsg:   fd, data
//   recvmsg:   fd, size                        -> out
//   poll:      fd, arg = events
struct SyscallReq {
  Sys nr = Sys::kOpenAt;
  int32_t fd = -1;
  uint64_t arg = 0;
  uint64_t arg2 = 0;
  uint64_t arg3 = 0;
  size_t size = 0;
  std::string path;
  std::vector<uint8_t> data;
};

struct SyscallRes {
  int64_t ret = 0;           // >= 0: success value (fd/bytes/handle); < 0: -errno
  std::vector<uint8_t> out;  // kernel -> user payload
};

}  // namespace df::kernel
