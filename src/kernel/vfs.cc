#include "kernel/vfs.h"

namespace df::kernel {

void NodeRegistry::add_node(std::string path, Driver* drv) {
  nodes_[std::move(path)] = drv;
}

void NodeRegistry::add_socket(Driver::SockTriple t, Driver* drv) {
  socks_[{t.family, t.type, t.proto}] = drv;
}

void NodeRegistry::clear() {
  nodes_.clear();
  socks_.clear();
}

Driver* NodeRegistry::resolve(std::string_view path) const {
  auto it = nodes_.find(path);
  return it == nodes_.end() ? nullptr : it->second;
}

Driver* NodeRegistry::resolve_socket(uint64_t family, uint64_t type,
                                     uint64_t proto) const {
  auto it = socks_.find({family, type, proto});
  return it == socks_.end() ? nullptr : it->second;
}

std::vector<std::string> NodeRegistry::paths() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [path, drv] : nodes_) out.push_back(path);
  return out;
}

int32_t FdTable::install(std::shared_ptr<File> f) {
  const int32_t fd = next_fd_++;
  table_.emplace(fd, std::move(f));
  return fd;
}

std::shared_ptr<File> FdTable::get(int32_t fd) const {
  auto it = table_.find(fd);
  return it == table_.end() ? nullptr : it->second;
}

std::shared_ptr<File> FdTable::remove(int32_t fd) {
  auto it = table_.find(fd);
  if (it == table_.end()) return nullptr;
  std::shared_ptr<File> f = std::move(it->second);
  table_.erase(it);
  return f;
}

std::vector<int32_t> FdTable::fds() const {
  std::vector<int32_t> out;
  out.reserve(table_.size());
  for (const auto& [fd, f] : table_) out.push_back(fd);
  return out;
}

std::vector<std::shared_ptr<File>> FdTable::clear() {
  std::vector<std::shared_ptr<File>> out;
  out.reserve(table_.size());
  for (auto& [fd, f] : table_) out.push_back(std::move(f));
  table_.clear();
  return out;
}

}  // namespace df::kernel
