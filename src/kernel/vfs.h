// Minimal VFS: device-node registry plus per-task fd tables.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "kernel/driver.h"

namespace df::kernel {

// Maps device-node paths to their owning drivers. Populated at boot from
// Driver::nodes(); also resolves socket (family,type,proto) triples.
class NodeRegistry {
 public:
  void add_node(std::string path, Driver* drv);
  void add_socket(Driver::SockTriple triple, Driver* drv);
  void clear();

  Driver* resolve(std::string_view path) const;
  Driver* resolve_socket(uint64_t family, uint64_t type, uint64_t proto) const;

  std::vector<std::string> paths() const;

 private:
  std::map<std::string, Driver*, std::less<>> nodes_;
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, Driver*> socks_;
};

// Per-task fd table. Fds are shared File descriptions (dup() shares).
class FdTable {
 public:
  int32_t install(std::shared_ptr<File> f);
  std::shared_ptr<File> get(int32_t fd) const;
  // Removes the fd; returns the File (possibly still referenced by dups).
  std::shared_ptr<File> remove(int32_t fd);
  std::vector<int32_t> fds() const;
  // Drops every fd, returning files whose last reference just went away.
  std::vector<std::shared_ptr<File>> clear();
  size_t size() const { return table_.size(); }

  // Checkpoint support: the fd cursor survives clear() (fds are never
  // reused within a task), so a resumed run must restore it to hand out
  // the same fd values the uninterrupted run would.
  int32_t next_fd() const { return next_fd_; }
  void set_next_fd(int32_t fd) { next_fd_ = fd; }

  // Snapshot support: reinstates a file at its original fd (bypassing the
  // cursor) when a StateSnapshot rebuilds the table.
  void restore_install(int32_t fd, std::shared_ptr<File> f) {
    table_[fd] = std::move(f);
  }

 private:
  int32_t next_fd_ = 3;  // 0..2 reserved, as on a real system
  std::map<int32_t, std::shared_ptr<File>> table_;
};

}  // namespace df::kernel
