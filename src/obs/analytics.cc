#include "obs/analytics.h"

#include <algorithm>

#include "obs/json.h"

namespace df::obs {

namespace {

constexpr std::string_view kOriginNames[kProgramOriginCount] = {
    "generate",         "mutate_arg",    "mutate_insert", "mutate_remove",
    "mutate_duplicate", "mutate_splice", "mutate_rewire", "plan_injected",
    "minimized",        "replay",        "snapshot_fork",
};

constexpr std::string_view kFrontierNames[kFrontierClassCount] = {
    "unreachable-from-frontier",
    "planned-but-failed",
    "never-attempted",
};

// 16 lowercase hex digits, matching CrashLog::title_hash's filename style.
std::string hex16(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string_view origin_name(ProgramOrigin o) {
  const auto i = static_cast<size_t>(o);
  return i < kProgramOriginCount ? kOriginNames[i] : "unknown";
}

std::optional<ProgramOrigin> origin_from_name(std::string_view name) {
  for (size_t i = 0; i < kProgramOriginCount; ++i) {
    if (kOriginNames[i] == name) return static_cast<ProgramOrigin>(i);
  }
  return std::nullopt;
}

std::string_view frontier_class_name(FrontierClass c) {
  const auto i = static_cast<size_t>(c);
  return i < kFrontierClassCount ? kFrontierNames[i] : "unknown";
}

void OperatorAttribution::record_attempt(ProgramOrigin o, uint64_t calls) {
  OperatorYield& r = rows_[static_cast<size_t>(o)];
  ++r.attempts;
  r.total_calls += calls;
}

void OperatorAttribution::credit(ProgramOrigin o, uint64_t new_features,
                                 uint64_t new_states, uint64_t bugs,
                                 bool accepted) {
  OperatorYield& r = rows_[static_cast<size_t>(o)];
  r.new_features += new_features;
  r.new_states += new_states;
  r.bugs += bugs;
  if (accepted) ++r.accepts;
}

void OperatorAttribution::record_minimize(uint64_t oracle_calls,
                                          bool shrunk) {
  OperatorYield& r = rows_[static_cast<size_t>(ProgramOrigin::kMinimized)];
  ++r.attempts;
  r.total_calls += oracle_calls;
  if (shrunk) ++r.accepts;
}

bool OperatorAttribution::any() const {
  for (const OperatorYield& r : rows_) {
    if (r.attempts != 0 || r.accepts != 0 || r.new_features != 0 ||
        r.new_states != 0 || r.bugs != 0) {
      return true;
    }
  }
  return false;
}

void OperatorAttribution::write_json(JsonWriter& w) const {
  w.begin_array();
  for (size_t i = 0; i < kProgramOriginCount; ++i) {
    const OperatorYield& r = rows_[i];
    w.begin_object();
    w.field("origin", kOriginNames[i]);
    w.field("attempts", r.attempts);
    w.field("total_calls", r.total_calls);
    w.field("accepts", r.accepts);
    w.field("new_features", r.new_features);
    w.field("new_states", r.new_states);
    w.field("bugs", r.bugs);
    w.field("mean_cost",
            r.attempts == 0 ? 0.0
                            : static_cast<double>(r.total_calls) /
                                  static_cast<double>(r.attempts));
    w.end_object();
  }
  w.end_array();
}

void write_lineage_json(JsonWriter& w,
                        const std::vector<LineageLink>& chain) {
  w.begin_array();
  for (const LineageLink& l : chain) {
    w.begin_object();
    w.field("hash", hex16(l.hash));
    w.field("origin", origin_name(l.origin));
    w.field("exec_index", l.exec_index);
    w.field("depth", l.depth);
    w.end_object();
  }
  w.end_array();
}

void LineageSummary::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("seeds", seeds);
  w.field("roots", roots);
  w.field("max_depth", max_depth);
  w.key("depth_histogram").begin_array();
  for (uint64_t n : depth_histogram) w.value(n);
  w.end_array();
  w.key("top_ancestors").begin_array();
  for (const AncestorYield& a : top_ancestors) {
    w.begin_object();
    w.field("hash", hex16(a.hash));
    w.field("exec_index", a.exec_index);
    w.field("descendants", a.descendants);
    w.field("subtree_new_features", a.subtree_new_features);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void FrontierReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("states_total", states_total);
  w.field("states_visited", states_visited);
  w.key("unvisited").begin_array();
  for (const FrontierState& s : unvisited) {
    w.begin_object();
    w.field("driver", s.driver);
    w.field("state", s.state);
    w.field("state_index", s.state_index);
    w.field("class", frontier_class_name(s.cls));
    w.field("plan_length", s.plan_length);
    w.field("plans_injected", s.plans_injected);
    w.field("materialize_failed", s.materialize_failed);
    w.field("executed_no_visit", s.executed_no_visit);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_downsampled_series(JsonWriter& w,
                              const std::vector<StatsReporter::Point>& points,
                              size_t max_points) {
  w.begin_array();
  const size_t n = points.size();
  if (max_points < 2) max_points = 2;
  for (size_t i = 0; i < n; ++i) {
    if (n > max_points) {
      // Deterministic index grid: keep point i only when it is the chosen
      // representative of its grid slot (first and last always qualify).
      const size_t slot = i * (max_points - 1) / (n - 1);
      const size_t representative = slot * (n - 1) / (max_points - 1);
      if (i != representative && i != n - 1) continue;
    }
    const StatsReporter::Point& p = points[i];
    w.begin_object();
    w.field("executions", p.sample.executions);
    w.field("kernel_coverage", p.sample.kernel_coverage);
    w.field("total_coverage", p.sample.total_coverage);
    w.field("corpus_size", p.sample.corpus_size);
    w.field("unique_bugs", p.sample.unique_bugs);
    w.field("states_visited", p.sample.states_visited);
    w.key("timing").begin_object().field("secs", p.secs).end_object();
    w.end_object();
  }
  w.end_array();
}

void AnalyticsSnapshot::write_json(
    JsonWriter& w, const std::vector<StatsReporter::Point>* series,
    size_t max_series_points) const {
  w.begin_object();
  w.field("schema_version", kAnalyticsSchemaVersion);
  w.key("operators");
  operators.write_json(w);
  w.key("lineage");
  lineage.write_json(w);
  w.key("frontier");
  frontier.write_json(w);
  if (series != nullptr) {
    w.key("series");
    write_downsampled_series(w, *series, max_series_points);
  }
  w.end_object();
}

}  // namespace df::obs
