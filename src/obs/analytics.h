// Campaign analytics: attribution and explainability (DESIGN.md §11).
//
// Three plain-data families, all produced by the core layer and exported
// everywhere campaign state is exported (/status, /frontier, --stats-json,
// BENCH_*.json):
//  * Operator attribution — every candidate program carries a ProgramOrigin
//    tag; on new-coverage/new-state/new-bug events the engine credits the
//    origin, yielding a syzkaller-style per-operator yield table.
//  * Seed lineage — parent→child edges over corpus seeds (LineageLink
//    chains, depth histogram, top-yield ancestors).
//  * Coverage frontier — every declared-but-unvisited driver state
//    classified as unreachable-from-frontier, planned-but-failed (with
//    failure-reason counters), or never-attempted.
//
// Everything here is observational bookkeeping: collecting it draws no
// randomness and changes no control flow, so per-device campaign results
// are bit-identical with analytics on or off (the determinism tests hold
// the engine to that).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats_reporter.h"

namespace df::obs {

class JsonWriter;

// Bumped when the exported "analytics" JSON shape changes
// (scripts/check_bench_json.py validates against it).
inline constexpr uint64_t kAnalyticsSchemaVersion = 2;

// Where a candidate program came from. Mutation operators mirror
// Generator::mutate_once; kPlanInjected marks reachability-plan programs,
// kMinimized marks seeds the minimizer shrank before corpus insertion,
// kReplay marks post-reboot re-warm executions of existing seeds, and
// kSnapshotFork marks programs executed from a restored deep-state
// snapshot (DESIGN.md §13) instead of the device's rolling state.
enum class ProgramOrigin : uint8_t {
  kGenerate = 0,
  kMutateArg,
  kMutateInsert,
  kMutateRemove,
  kMutateDuplicate,
  kMutateSplice,
  kMutateRewire,
  kPlanInjected,
  kMinimized,
  kReplay,
  kSnapshotFork,
};
inline constexpr size_t kProgramOriginCount = 11;

// Stable wire names ("generate", "mutate_arg", ... "replay"); round-trips
// through origin_from_name for checkpoint restore.
std::string_view origin_name(ProgramOrigin o);
std::optional<ProgramOrigin> origin_from_name(std::string_view name);

// One row of the per-operator yield table. `total_calls` is the summed
// program length of every attempt, so mean cost (calls per attempt) is
// total_calls / attempts. For the kMinimized row the semantics shift to
// minimization work: attempts = minimizations run, total_calls = oracle
// executions spent, accepts = seeds actually shrunk.
struct OperatorYield {
  uint64_t attempts = 0;
  uint64_t total_calls = 0;
  uint64_t accepts = 0;       // corpus insertions credited to this origin
  uint64_t new_features = 0;  // coverage features first seen under it
  uint64_t new_states = 0;    // driver states first entered under it
  uint64_t bugs = 0;          // unique bugs first triggered under it

  bool operator==(const OperatorYield&) const = default;
};

// The full yield table, indexed by ProgramOrigin. Copyable plain data;
// the engine owns one and updates it on the step path.
class OperatorAttribution {
 public:
  void record_attempt(ProgramOrigin o, uint64_t calls);
  void credit(ProgramOrigin o, uint64_t new_features, uint64_t new_states,
              uint64_t bugs, bool accepted);
  // kMinimized-row bookkeeping (see OperatorYield).
  void record_minimize(uint64_t oracle_calls, bool shrunk);

  const OperatorYield& row(ProgramOrigin o) const {
    return rows_[static_cast<size_t>(o)];
  }
  bool any() const;
  bool operator==(const OperatorAttribution&) const = default;

  // Checkpoint round-trip.
  void restore_row(ProgramOrigin o, const OperatorYield& y) {
    rows_[static_cast<size_t>(o)] = y;
  }

  // Array of all rows in enum order:
  // [{"origin":"generate","attempts":..,"total_calls":..,"accepts":..,
  //   "new_features":..,"new_states":..,"bugs":..,"mean_cost":..}, ...]
  void write_json(JsonWriter& w) const;

 private:
  std::array<OperatorYield, kProgramOriginCount> rows_{};
};

// One ancestor step in a seed's (or bug reproducer's) derivation chain,
// root first. `hash` is the structural dsl::program_hash of the program at
// that step; `exec_index` is when it entered the corpus (or, for the final
// link of a bug chain, when the reproducer executed).
struct LineageLink {
  uint64_t hash = 0;
  ProgramOrigin origin = ProgramOrigin::kGenerate;
  uint64_t exec_index = 0;
  uint64_t depth = 0;
};

void write_lineage_json(JsonWriter& w, const std::vector<LineageLink>& chain);

// A high-yield root/ancestor: how many corpus descendants it spawned and
// how many new features its whole subtree contributed.
struct AncestorYield {
  uint64_t hash = 0;
  uint64_t exec_index = 0;
  uint64_t descendants = 0;
  uint64_t subtree_new_features = 0;
};

// Corpus-wide lineage digest (Corpus::lineage_summary).
struct LineageSummary {
  uint64_t seeds = 0;
  uint64_t roots = 0;  // seeds with no corpus parent
  uint64_t max_depth = 0;
  std::vector<uint64_t> depth_histogram;  // index == generation depth
  std::vector<AncestorYield> top_ancestors;

  void write_json(JsonWriter& w) const;
};

// Why a declared driver state has never been visited.
enum class FrontierClass : uint8_t {
  kUnreachableFromFrontier = 0,  // no declared route from the boot state
  kPlannedButFailed,             // plans attempted, state still unvisited
  kNeverAttempted,               // reachable, but no plan ever injected
};
inline constexpr size_t kFrontierClassCount = 3;

std::string_view frontier_class_name(FrontierClass c);

struct FrontierState {
  std::string driver;
  std::string state;
  uint64_t state_index = 0;
  FrontierClass cls = FrontierClass::kNeverAttempted;
  uint64_t plan_length = 0;  // declared shortest-route calls (0: no route)
  // Failure-reason counters for kPlannedButFailed (zero otherwise):
  uint64_t plans_injected = 0;     // materialized programs queued
  uint64_t materialize_failed = 0; // plans the table could not instantiate
  uint64_t executed_no_visit = 0;  // injected programs run, state not entered
};

// Per-device frontier report (Engine::frontier_report): joins
// Engine::state_coverage with declared_transitions() and the
// ReachabilityPlanner verdicts.
struct FrontierReport {
  uint64_t states_total = 0;    // declared states across planned drivers
  uint64_t states_visited = 0;  // of those, entered at least once
  std::vector<FrontierState> unvisited;

  void write_json(JsonWriter& w) const;
};

// AFL-plot-style downsampled coverage time series: at most `max_points`
// reporter points, first and last always kept, interior points picked on a
// deterministic index grid. Content axes (executions, coverage, corpus,
// bugs, states) are determinism-comparable; wall seconds stay under
// "timing".
void write_downsampled_series(JsonWriter& w,
                              const std::vector<StatsReporter::Point>& points,
                              size_t max_points = 32);

// Everything the "analytics" export section holds for one device.
struct AnalyticsSnapshot {
  OperatorAttribution operators;
  LineageSummary lineage;
  FrontierReport frontier;

  // {"schema_version":..,"operators":[..],"lineage":{..},"frontier":{..}}
  // plus a "series" array when `series` is non-null.
  void write_json(JsonWriter& w,
                  const std::vector<StatsReporter::Point>* series = nullptr,
                  size_t max_series_points = 32) const;
};

}  // namespace df::obs
