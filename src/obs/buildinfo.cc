#include "obs/buildinfo.h"

#include "obs/json.h"

// CMake injects DF_BUILD_TYPE / DF_SANITIZE_CFG / DF_CXX_FLAGS as
// per-source compile definitions on this file (src/CMakeLists.txt); plain
// compiler invocations (e.g. IDE preview builds) fall back to empty.
#ifndef DF_BUILD_TYPE
#define DF_BUILD_TYPE ""
#endif
#ifndef DF_SANITIZE_CFG
#define DF_SANITIZE_CFG ""
#endif
#ifndef DF_CXX_FLAGS
#define DF_CXX_FLAGS ""
#endif

namespace df::obs {

namespace {

BuildInfo make_build_info() {
  BuildInfo b;
#if defined(__clang__)
  b.compiler = "clang";
#elif defined(__GNUC__)
  b.compiler = "gcc";
#else
  b.compiler = "unknown";
#endif
#if defined(__VERSION__)
  b.compiler_version = __VERSION__;
#endif
  b.build_type = DF_BUILD_TYPE;
  b.sanitizer = DF_SANITIZE_CFG;
  // The configured sanitizer normally reaches us via CMake; detect the
  // common ones directly as a fallback so a hand-built binary still
  // self-identifies.
  if (b.sanitizer.empty()) {
#if defined(__SANITIZE_ADDRESS__)
    b.sanitizer = "address";
#elif defined(__SANITIZE_THREAD__)
    b.sanitizer = "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    b.sanitizer = "address";
#elif __has_feature(thread_sanitizer)
    b.sanitizer = "thread";
#endif
#endif
  }
  b.flags = DF_CXX_FLAGS;
  b.cxx_standard = __cplusplus;
#if defined(NDEBUG)
  b.assertions = false;
#else
  b.assertions = true;
#endif
  return b;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = make_build_info();
  return info;
}

void write_build_json(
    JsonWriter& w,
    const std::vector<std::pair<std::string, uint64_t>>& schemas) {
  const BuildInfo& b = build_info();
  w.begin_object();
  w.field("compiler", b.compiler);
  w.field("compiler_version", b.compiler_version);
  w.field("build_type", b.build_type);
  w.field("sanitizer", b.sanitizer);
  w.field("flags", b.flags);
  w.field("cxx_standard", b.cxx_standard);
  w.field("assertions", b.assertions);
  w.key("schema").begin_object();
  for (const auto& [name, version] : schemas) w.field(name, version);
  w.end_object();
  w.end_object();
}

std::string build_json(
    const std::vector<std::pair<std::string, uint64_t>>& schemas) {
  JsonWriter w;
  write_build_json(w, schemas);
  return w.take();
}

}  // namespace df::obs
