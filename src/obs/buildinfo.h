// Build self-identification for exported artifacts: the /buildz endpoint
// and the "build" block in --stats-json and BENCH_*.json. Everything is
// captured at compile time (compiler macros plus CMake-injected definitions
// on buildinfo.cc), so any exported document names the toolchain, flags,
// and sanitizer configuration that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace df::obs {

class JsonWriter;

struct BuildInfo {
  std::string compiler;          // "clang" / "gcc" / "unknown"
  std::string compiler_version;  // __VERSION__
  std::string build_type;        // CMAKE_BUILD_TYPE ("" when unset)
  std::string sanitizer;         // DF_SANITIZE cache value ("" = none)
  std::string flags;             // CMAKE_CXX_FLAGS as configured
  uint64_t cxx_standard = 0;     // __cplusplus
  bool assertions = false;       // NDEBUG not defined
};

// The compile-time-constant build description of this binary.
const BuildInfo& build_info();

// {"compiler":..,"compiler_version":..,"build_type":..,"sanitizer":..,
//  "flags":..,"cxx_standard":..,"assertions":..,"schema":{name:version,..}}
// `schemas` lets callers attach the schema versions of the documents they
// export (analytics, checkpoint, ...) — obs cannot see core's constants.
void write_build_json(
    JsonWriter& w,
    const std::vector<std::pair<std::string, uint64_t>>& schemas = {});

std::string build_json(
    const std::vector<std::pair<std::string, uint64_t>>& schemas = {});

}  // namespace df::obs
