#include "obs/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "obs/json.h"

namespace df::obs {

namespace {

struct SpanEntry {
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  std::string name;
  uint64_t id = 0;
  uint64_t parent = 0;
  uint64_t exec = 0;
};

}  // namespace

std::string chrome_trace_json(const TraceSink& sink) {
  std::vector<std::string> tracks;
  std::vector<SpanEntry> spans;
  auto tid_for = [&](const std::string& track) -> uint32_t {
    const std::string label = track.empty() ? "main" : track;
    for (size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i] == label) return static_cast<uint32_t>(i + 1);
    }
    tracks.push_back(label);
    return static_cast<uint32_t>(tracks.size());
  };

  for (size_t i = 0; i < sink.size(); ++i) {
    const TraceEvent& ev = sink.at(i);
    if (ev.kind != EventKind::kSpan) continue;
    SpanEntry e;
    e.tid = tid_for(ev.device);
    e.exec = ev.exec_index;
    for (const auto& f : ev.fields) {
      if (f.key == "span") e.name = f.str;
      else if (f.key == "id") e.id = f.num;
      else if (f.key == "parent") e.parent = f.num;
      else if (f.key == "ts_ns") e.ts_us = f.num / 1000;
      else if (f.key == "dur_ns") e.dur_us = f.num / 1000;
    }
    spans.push_back(std::move(e));
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEntry& a, const SpanEntry& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });

  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  w.begin_object();
  w.field("name", "process_name");
  w.field("ph", "M");
  w.field("pid", 1);
  w.field("tid", 0);
  w.key("args").begin_object().field("name", "droidfuzz").end_object();
  w.end_object();
  for (size_t i = 0; i < tracks.size(); ++i) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", static_cast<uint64_t>(i + 1));
    w.key("args").begin_object().field("name", tracks[i]).end_object();
    w.end_object();
  }
  for (const auto& e : spans) {
    w.begin_object();
    w.field("name", e.name);
    w.field("cat", "droidfuzz");
    w.field("ph", "X");
    w.field("pid", 1);
    w.field("tid", static_cast<uint64_t>(e.tid));
    w.field("ts", e.ts_us);
    w.field("dur", e.dur_us);
    w.key("args").begin_object();
    w.field("id", e.id);
    w.field("parent", e.parent);
    w.field("exec", e.exec);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool write_chrome_trace(const TraceSink& sink, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << chrome_trace_json(sink) << '\n';
  return out.good();
}

}  // namespace df::obs
