// Chrome trace-event exporter: renders the kSpan events retained in a
// TraceSink as one {"traceEvents":[...]} JSON document of "X" (complete)
// events — one tid per span track, "M" thread_name metadata per track —
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Events are sorted by (tid, ts) so timestamps are monotone per track, the
// property scripts/check_bench_json.py validates.
#pragma once

#include <string>

#include "obs/trace.h"

namespace df::obs {

std::string chrome_trace_json(const TraceSink& sink);

// Writes chrome_trace_json(sink) to `path`. Returns false on I/O failure.
bool write_chrome_trace(const TraceSink& sink, const std::string& path);

}  // namespace df::obs
