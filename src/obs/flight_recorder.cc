#include "obs/flight_recorder.h"

namespace df::obs {

void FlightRecorder::enable(size_t capacity) {
  capacity_ = capacity;
  clear();
}

void FlightRecorder::clear() {
  ring_.clear();
  if (capacity_ > 0) ring_.reserve(capacity_);
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

void FlightRecorder::push(ExecutionRecord rec) {
  if (capacity_ == 0) return;
  ++recorded_;
  if (count_ < capacity_) {
    ring_.push_back(std::move(rec));
    ++count_;
    return;
  }
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
}

const ExecutionRecord& FlightRecorder::at(size_t i) const {
  return ring_[(head_ + i) % count_];
}

}  // namespace df::obs
