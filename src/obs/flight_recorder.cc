#include "obs/flight_recorder.h"

namespace df::obs {

void FlightRecorder::enable(size_t capacity) {
  capacity_ = capacity;
  clear();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  if (capacity_ > 0) ring_.reserve(capacity_);
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void FlightRecorder::push(ExecutionRecord rec) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (count_ < capacity_) {
    ring_.push_back(std::move(rec));
    ++count_;
    return;
  }
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
}

const ExecutionRecord& FlightRecorder::at(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_[(head_ + i) % count_];
}

std::vector<ExecutionRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExecutionRecord> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % count_]);
  }
  return out;
}

}  // namespace df::obs
