// Crash flight recorder: a bounded ring of the last N execution records,
// dumped wholesale into crash_<hash>.json provenance reports when a kernel
// report or HAL crash fires (the "what led up to this?" window).
//
// `program` is an owner-interpreted handle: the layer that pushes records
// (core::Engine pushes dsl::Program copies) is also the layer that formats
// them at dump time (core::CrashLog), keeping obs below dsl in the layer
// order and avoiding per-execution DSL formatting on the hot path.
//
// Disabled (capacity 0) by default; components cache a FlightRecorder* only
// when enabled, so the detached hot path stays a single null-check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace df::obs {

struct ExecutionRecord {
  uint64_t exec_index = 0;
  std::shared_ptr<const void> program;  // dsl::Program, formatted by the owner
  std::vector<int64_t> rets;            // per-call syscall ret / binder status
  uint64_t new_features = 0;
  bool kernel_bug = false;
  bool hal_crash = false;
  // The transport lost this execution (fault injection, core/exec/faults.h).
  bool transport_fault = false;
  // Per-driver state-machine position (state index) in kernel driver
  // registration order, captured before and after the execution. The
  // `after` snapshot is post-reboot when the execution rebooted the device.
  std::vector<uint8_t> states_before;
  std::vector<uint8_t> states_after;
};

// Thread model: the ring is shared by every engine in the fleet, so push()
// and the readers are serialized by an internal mutex. Crash dumps use
// snapshot() — a consistent copy taken under the lock — because at()'s
// reference is only stable while no other worker pushes (DESIGN.md §8).
class FlightRecorder {
 public:
  FlightRecorder() = default;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return capacity_ > 0; }
  // Sets the window size and clears retained records; 0 disables.
  void enable(size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  uint64_t recorded() const;

  void push(ExecutionRecord rec);
  // i = 0 is the oldest retained record. Single-threaded use only — under
  // concurrent push() the returned reference can be overwritten; parallel
  // readers want snapshot().
  const ExecutionRecord& at(size_t i) const;
  // Consistent copy of the retained window, oldest first.
  std::vector<ExecutionRecord> snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_ = 0;
  std::vector<ExecutionRecord> ring_;
  size_t head_ = 0;   // index of the oldest record
  size_t count_ = 0;  // records currently retained
  uint64_t recorded_ = 0;
};

}  // namespace df::obs
