#include "obs/json.h"

#include <cstdio>

namespace df::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_item() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_item();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!first_in_container_.empty()) first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_item();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!first_in_container_.empty()) first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  before_item();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_item();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  before_item();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  before_item();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_item();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_item();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_item();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace df::obs
