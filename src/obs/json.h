// Minimal JSON emitter for the observability layer: trace events (JSONL),
// metric snapshots, and campaign stats export. Emission only — the repo has
// no JSON consumer; scripts/check_bench_json.py validates the output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace df::obs {

// Escapes `s` for embedding inside a JSON string literal (quotes not
// included). Control characters become \uXXXX.
std::string json_escape(std::string_view s);

// Streaming writer with container bookkeeping (commas, key/value pairing).
// Misuse (value without key inside an object, unbalanced end) is a logic
// error; the writer keeps going and the checker script flags the result.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(const std::string& s) {
    return value(std::string_view(s));
  }
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint32_t v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  // Inserts `json` verbatim as the next value (caller guarantees it is a
  // well-formed JSON document, e.g. TraceSink::to_json output).
  JsonWriter& raw(std::string_view json);

  // key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_item();

  std::string out_;
  std::vector<bool> first_in_container_;
  bool after_key_ = false;
};

}  // namespace df::obs
