#include "obs/json_parse.h"

#include <cstdio>
#include <cstdlib>

namespace df::obs {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "offset %zu: %s", pos_, what);
      *error_ = buf;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    bool ok = false;
    switch (text_[pos_]) {
      case '{':
        ok = object(out);
        break;
      case '[':
        ok = array(out);
        break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = string(out.scalar);
        break;
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        ok = literal("true");
        if (!ok) fail("bad literal");
        break;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        ok = literal("false");
        if (!ok) fail("bad literal");
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = literal("null");
        if (!ok) fail("bad literal");
        break;
      default:
        ok = number(out);
        break;
    }
    --depth_;
    return ok;
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key string");
        return false;
      }
      std::string key;
      if (!string(key)) return false;
      if (!eat(':')) {
        fail("expected ':' after object key");
        return false;
      }
      JsonValue member;
      if (!value(member)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      if (eat(',')) continue;
      if (eat('}')) return true;
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue item;
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      if (eat(',')) continue;
      if (eat(']')) return true;
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!hex4(cp)) return false;
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad string escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      uint32_t d;
      if (c >= '0' && c <= '9') {
        d = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        fail("bad \\u escape digit");
        return false;
      }
      out = out * 16 + d;
    }
    return true;
  }

  // BMP-only UTF-8 encode; the writer only emits \u for control characters,
  // so surrogate pairs never occur in well-formed checkpoints.
  static void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  bool number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const size_t digits = pos_;
    while (pos_ < text_.size() &&
           text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits) {
      fail("expected a value");
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    out.scalar.assign(text_.substr(start, pos_ - start));
    return true;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint64_t JsonValue::as_u64() const {
  if (kind == Kind::kString && scalar.size() > 2 && scalar[0] == '0' &&
      (scalar[1] == 'x' || scalar[1] == 'X')) {
    return std::strtoull(scalar.c_str() + 2, nullptr, 16);
  }
  if (kind != Kind::kNumber && kind != Kind::kString) return 0;
  return std::strtoull(scalar.c_str(), nullptr, 10);
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber && kind != Kind::kString) return 0.0;
  return std::strtod(scalar.c_str(), nullptr);
}

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  if (error != nullptr) error->clear();
  Parser p(text, error);
  return p.run();
}

}  // namespace df::obs
