// Minimal recursive-descent JSON parser for checkpoint restore
// (core/fuzz/checkpoint.h). The repo serializes everything through
// obs::JsonWriter but until checkpoints never needed to read JSON back;
// this is the read side, sized for that one job:
//
//  - numbers keep their *raw token* in `scalar` — callers re-parse with the
//    width they expect (u64 cursor values round-trip exactly; no silent
//    double conversion),
//  - object member order is preserved (vector of pairs, not a map), which
//    the trace-event restore path relies on,
//  - corrupted or truncated input is rejected with a position-tagged error
//    message, never a crash — the checkpoint resume contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace df::obs {

struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string scalar;  // raw token for numbers, decoded text for strings
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // First member with `key`, or nullptr. Object-kind only.
  const JsonValue* find(std::string_view key) const;

  // Scalar accessors; return 0/0.0 on kind mismatch. as_u64 also decodes
  // "0x..." hex strings (the writer stores 64-bit cursors and double bit
  // patterns that way to round-trip exactly).
  uint64_t as_u64() const;
  double as_double() const;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage
// rejected). Returns nullopt and fills `error` (if non-null) with a
// human-readable "offset N: what went wrong" message on malformed input.
std::optional<JsonValue> json_parse(std::string_view text, std::string* error);

}  // namespace df::obs
