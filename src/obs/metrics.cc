#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "obs/json.h"

namespace df::obs {

namespace {

size_t bucket_index(uint64_t v) {
  return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

// Geometric midpoint of bucket `i` (its representative value).
uint64_t bucket_mid(size_t i) {
  if (i == 0) return 0;
  const uint64_t lo = uint64_t{1} << (i - 1);
  const uint64_t hi = i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
  return lo + (hi - lo) / 2;
}

// Monotone CAS update: keeps the stored value the min/max of itself and `v`.
void store_min(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void store_max(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Serialization key for a counter/gauge value: wall-dependent metrics carry
// their unit in the metric name, and the JSON key mirrors it so the
// checker's timing-suffix rule strips them from determinism comparisons.
std::string_view value_key(std::string_view name) {
  if (name.ends_with("_ns")) return "value_ns";
  if (name.ends_with("_per_sec")) return "value_per_sec";
  return "value";
}

}  // namespace

void Histogram::record(uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  store_min(min_, v);
  store_max(max_, v);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kBucketCount> Histogram::buckets() const {
  std::array<uint64_t, kBucketCount> out;
  for (size_t i = 0; i < kBucketCount; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      return std::clamp<uint64_t>(bucket_mid(i), min(), max());
    }
  }
  return max();
}

Counter& Registry::counter(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[Key(std::string(name), std::string(label))];
}

Gauge& Registry::gauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[Key(std::string(name), std::string(label))];
}

Histogram& Registry::histogram(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[Key(std::string(name), std::string(label))];
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [key, c] : counters_) {
    s.counters.push_back({key.first, key.second, c.value()});
  }
  for (const auto& [key, g] : gauges_) {
    s.gauges.push_back({key.first, key.second, g.value()});
  }
  for (const auto& [key, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.name = key.first;
    v.label = key.second;
    v.count = h.count();
    v.sum_ns = h.sum();
    v.min_ns = h.min();
    v.max_ns = h.max();
    v.p50_ns = h.quantile(0.50);
    v.p90_ns = h.quantile(0.90);
    v.p99_ns = h.quantile(0.99);
    v.buckets = h.buckets();
    s.histograms.push_back(std::move(v));
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

const Snapshot::CounterValue* Snapshot::find_counter(
    std::string_view name, std::string_view label) const {
  for (const auto& c : counters) {
    if (c.name == name && c.label == label) return &c;
  }
  return nullptr;
}

void Snapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_array();
  for (const auto& c : counters) {
    w.begin_object()
        .field("name", c.name)
        .field("label", c.label)
        .field(value_key(c.name), c.value)
        .end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& g : gauges) {
    w.begin_object()
        .field("name", g.name)
        .field("label", g.label)
        .field(value_key(g.name), g.value)
        .end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& h : histograms) {
    w.begin_object()
        .field("name", h.name)
        .field("label", h.label)
        .field("count", h.count)
        .field("sum_ns", h.sum_ns)
        .field("min_ns", h.min_ns)
        .field("max_ns", h.max_ns)
        .field("p50_ns", h.p50_ns)
        .field("p90_ns", h.p90_ns)
        .field("p99_ns", h.p99_ns)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

std::string Snapshot::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

}  // namespace df::obs
