// Metrics registry for campaign telemetry (syzkaller-style stats loop):
// named + labeled Counters, Gauges, and log-scale Histograms, snapshot-able
// into an immutable value object that serializes to JSON.
//
// Cost model: instrumented code caches `Counter*`/`Histogram*` pointers at
// attach time (one map lookup), so a hot-path update is a single relaxed
// atomic add with no hashing, no locking, no formatting. When no
// Observability bundle is attached, every hook degrades to a null-pointer
// check (see obs.h).
//
// Thread model (parallel fleet, DESIGN.md §8): metric *updates* are atomic
// with relaxed ordering — every counter/histogram is labeled by device id,
// so in practice each has a single writer thread and relaxed adds cost the
// same as plain adds on x86/arm (BENCH_micro.json's attached-vs-detached
// probe guards this). Metric *creation* (the registry maps) is mutex-
// guarded because worker threads can create metrics lazily (e.g. the
// device reboot hook). Snapshots use relaxed loads: they are taken at
// slice barriers or after joins, where a happens-before edge already
// exists.
//
// Determinism contract: counter/gauge values and histogram *counts* are pure
// functions of the executed work; histogram time fields (sum/min/max/
// quantiles, always nanoseconds, always `*_ns` in JSON) are wall-dependent
// and excluded from determinism comparisons. Counters and gauges whose
// *name* ends in `_ns` or `_per_sec` (the fleet utilization profiler,
// DESIGN.md §10) are wall-dependent too: Snapshot::write_json serializes
// their value under "value_ns" / "value_per_sec" so the checker's timing
// suffix rule strips them from same-seed comparisons.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace df::obs {

class JsonWriter;

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Power-of-two bucketed histogram for latencies (unit: nanoseconds by
// convention). Bucket 0 holds the value 0; bucket i >= 1 holds values in
// [2^(i-1), 2^i). Quantiles are approximated by the geometric midpoint of
// the bucket containing the target rank.
//
// Concurrency: plain relaxed atomics per bucket rather than per-shard
// bucket arrays — measured on this codebase's hot path (BM_ObsHistogramRecord
// / the BENCH_micro.json obs-overhead probe) the uncontended atomic record
// is indistinguishable from the pre-atomic version, and per-device labels
// mean writers never actually contend. buckets() returns a merged copy by
// value (atomics are not copyable).
class Histogram {
 public:
  static constexpr size_t kBucketCount = 65;

  void record(uint64_t v);
  void reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t c = count();
    return c == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(c);
  }
  // q in [0, 1]; returns 0 on an empty histogram.
  uint64_t quantile(double q) const;
  std::array<uint64_t, kBucketCount> buckets() const;

  // Checkpoint support: restores the deterministic record count only. The
  // timing fields (sum/min/max/buckets) are wall-dependent and excluded
  // from determinism comparisons, so a resume restarts them at zero.
  void restore_count(uint64_t n) {
    count_.store(n, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// RAII phase timer: records elapsed steady-clock nanoseconds into `h` on
// destruction. A null histogram makes both ends no-ops — no clock read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      h_->record(static_cast<uint64_t>(ns.count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

// Immutable copy of a registry's state at one instant. Mutating the registry
// afterwards does not affect an existing snapshot.
struct Snapshot {
  struct CounterValue {
    std::string name, label;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name, label;
    double value = 0;
  };
  struct HistogramValue {
    std::string name, label;
    uint64_t count = 0;
    uint64_t sum_ns = 0, min_ns = 0, max_ns = 0;
    uint64_t p50_ns = 0, p90_ns = 0, p99_ns = 0;
    // Raw per-bucket counts (log2 layout, Histogram::kBucketCount). Consumed
    // by the Prometheus renderer (obs/prom.h); not part of the JSON shape.
    std::array<uint64_t, Histogram::kBucketCount> buckets{};
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* find_counter(std::string_view name,
                                   std::string_view label = "") const;

  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

// Metric store keyed by (name, label). Lookups create on first use and
// return references that stay valid for the registry's lifetime (node-based
// map), so callers cache them once and update lock- and lookup-free.
// Creation, snapshot, and reset take the registry mutex — worker threads
// may create metrics lazily (reboot hooks), and the node-based map keeps
// previously handed-out references valid across those insertions.
class Registry {
 public:
  Counter& counter(std::string_view name, std::string_view label = "");
  Gauge& gauge(std::string_view name, std::string_view label = "");
  Histogram& histogram(std::string_view name, std::string_view label = "");

  Snapshot snapshot() const;
  void reset();

 private:
  using Key = std::pair<std::string, std::string>;
  mutable std::mutex mu_;
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace df::obs
