// Metrics registry for campaign telemetry (syzkaller-style stats loop):
// named + labeled Counters, Gauges, and log-scale Histograms, snapshot-able
// into an immutable value object that serializes to JSON.
//
// Cost model: instrumented code caches `Counter*`/`Histogram*` pointers at
// attach time (one map lookup), so a hot-path update is a single add with no
// hashing, no locking, no formatting. When no Observability bundle is
// attached, every hook degrades to a null-pointer check (see obs.h).
//
// Determinism contract: counter/gauge values and histogram *counts* are pure
// functions of the executed work; histogram time fields (sum/min/max/
// quantiles, always nanoseconds, always `*_ns` in JSON) are wall-dependent
// and excluded from determinism comparisons.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace df::obs {

class JsonWriter;

class Counter {
 public:
  void inc(uint64_t n = 1) { v_ += n; }
  void reset() { v_ = 0; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0;
};

// Power-of-two bucketed histogram for latencies (unit: nanoseconds by
// convention). Bucket 0 holds the value 0; bucket i >= 1 holds values in
// [2^(i-1), 2^i). Quantiles are approximated by the geometric midpoint of
// the bucket containing the target rank.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 65;

  void record(uint64_t v);
  void reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  // q in [0, 1]; returns 0 on an empty histogram.
  uint64_t quantile(double q) const;
  const std::array<uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// RAII phase timer: records elapsed steady-clock nanoseconds into `h` on
// destruction. A null histogram makes both ends no-ops — no clock read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      h_->record(static_cast<uint64_t>(ns.count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

// Immutable copy of a registry's state at one instant. Mutating the registry
// afterwards does not affect an existing snapshot.
struct Snapshot {
  struct CounterValue {
    std::string name, label;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name, label;
    double value = 0;
  };
  struct HistogramValue {
    std::string name, label;
    uint64_t count = 0;
    uint64_t sum_ns = 0, min_ns = 0, max_ns = 0;
    uint64_t p50_ns = 0, p90_ns = 0, p99_ns = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* find_counter(std::string_view name,
                                   std::string_view label = "") const;

  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

// Metric store keyed by (name, label). Lookups create on first use and
// return references that stay valid for the registry's lifetime (node-based
// map), so callers cache them once and update lock- and lookup-free.
class Registry {
 public:
  Counter& counter(std::string_view name, std::string_view label = "");
  Gauge& gauge(std::string_view name, std::string_view label = "");
  Histogram& histogram(std::string_view name, std::string_view label = "");

  Snapshot snapshot() const;
  void reset();

 private:
  using Key = std::pair<std::string, std::string>;
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace df::obs
