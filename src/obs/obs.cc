#include "obs/obs.h"

#include "util/log.h"

namespace df::obs {

void capture_log_metrics(Registry& r) {
  const util::LogCounters& c = util::log_counters();
  static constexpr const char* kLevels[] = {"debug", "info", "warn", "error"};
  for (size_t i = 0; i < 4; ++i) {
    r.gauge("log.emitted", kLevels[i])
        .set(static_cast<double>(c.emitted[i]));
  }
}

}  // namespace df::obs
