// The Observability bundle every instrumented layer attaches to: one
// metrics registry, one structured event trace, one hierarchical span
// tracer, and one crash flight recorder. Components receive an
// `Observability*` (null = observability off); they cache metric pointers
// at attach time so the instrumented hot paths are single null-checks when
// detached and single adds when attached.
//
// Spans and the flight recorder are opt-in *within* an attached bundle:
// enable them (`spans.set_enabled(true)`, `flight.enable(n)`) before
// components attach — components cache SpanTracer*/FlightRecorder* only
// when enabled, keeping the default attached configuration inside the <5%
// overhead budget.
#pragma once

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace df::obs {

struct Observability {
  Registry registry;
  TraceSink trace;
  SpanTracer spans;
  FlightRecorder flight;

  Observability() : spans(trace) {}
  explicit Observability(size_t trace_capacity)
      : trace(trace_capacity), spans(trace) {}
};

// Mirrors the util::log emission counters into `r` as gauges named
// "log.emitted" labeled by level, making log volume a first-class metric.
void capture_log_metrics(Registry& r);

}  // namespace df::obs
