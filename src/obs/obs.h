// The Observability bundle every instrumented layer attaches to: one
// metrics registry plus one structured event trace. Components receive an
// `Observability*` (null = observability off); they cache metric pointers
// at attach time so the instrumented hot paths are single null-checks when
// detached and single adds when attached.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace df::obs {

struct Observability {
  Registry registry;
  TraceSink trace;

  Observability() = default;
  explicit Observability(size_t trace_capacity) : trace(trace_capacity) {}
};

// Mirrors the util::log emission counters into `r` as gauges named
// "log.emitted" labeled by level, making log volume a first-class metric.
void capture_log_metrics(Registry& r);

}  // namespace df::obs
