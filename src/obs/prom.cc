#include "obs/prom.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace df::obs {

namespace {

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

// `{label="..."}` for a non-empty label, optionally merged with an `le`
// bucket bound ("" = no le label).
std::string label_set(std::string_view label, std::string_view le = {}) {
  if (label.empty() && le.empty()) return "";
  std::string out = "{";
  if (!label.empty()) {
    out += "label=\"";
    out += prom_escape_label(label);
    out += '"';
    if (!le.empty()) out += ',';
  }
  if (!le.empty()) {
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
  return out;
}

void type_line(std::string& out, const std::string& name,
               std::string_view type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

// Inclusive upper bound of log2 bucket `i` as an exposition string: "0" for
// the zero bucket, 2^i - 1 for bucket i in [1, 63]. Bucket 64 (values with
// the top bit set) has no finite bound and is covered by +Inf.
std::string bucket_bound(size_t i) {
  if (i == 0) return "0";
  std::string out;
  append_u64(out, (uint64_t{1} << i) - 1);
  return out;
}

}  // namespace

std::string prom_metric_name(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])) &&
      out.empty()) {
    out += '_';
  }
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_prometheus(const Snapshot& s, std::string_view prefix) {
  std::string out;
  // Counters and gauges: one # TYPE line per family (consecutive snapshot
  // entries sharing a name), one sample per label.
  const std::string* family = nullptr;
  for (const auto& c : s.counters) {
    const std::string name = prom_metric_name(c.name, prefix);
    if (family == nullptr || *family != c.name) {
      type_line(out, name, "counter");
      family = &c.name;
    }
    out += name;
    out += label_set(c.label);
    out += ' ';
    append_u64(out, c.value);
    out += '\n';
  }
  family = nullptr;
  for (const auto& g : s.gauges) {
    const std::string name = prom_metric_name(g.name, prefix);
    if (family == nullptr || *family != g.name) {
      type_line(out, name, "gauge");
      family = &g.name;
    }
    out += name;
    out += label_set(g.label);
    out += ' ';
    append_double(out, g.value);
    out += '\n';
  }
  family = nullptr;
  for (const auto& h : s.histograms) {
    const std::string name = prom_metric_name(h.name, prefix);
    if (family == nullptr || *family != h.name) {
      type_line(out, name, "histogram");
      family = &h.name;
    }
    // Cumulative buckets up to the highest non-empty finite bucket; +Inf
    // always equals the total count.
    size_t last = 0;
    for (size_t i = 0; i + 1 < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) last = i;
    }
    uint64_t cum = 0;
    for (size_t i = 0; i <= last; ++i) {
      cum += h.buckets[i];
      out += name;
      out += "_bucket";
      out += label_set(h.label, bucket_bound(i));
      out += ' ';
      append_u64(out, cum);
      out += '\n';
    }
    out += name;
    out += "_bucket";
    out += label_set(h.label, "+Inf");
    out += ' ';
    append_u64(out, h.count);
    out += '\n';
    out += name;
    out += "_sum";
    out += label_set(h.label);
    out += ' ';
    append_u64(out, h.sum_ns);
    out += '\n';
    out += name;
    out += "_count";
    out += label_set(h.label);
    out += ' ';
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

}  // namespace df::obs
