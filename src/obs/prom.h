// Prometheus text exposition (format version 0.0.4) rendered from a metrics
// Snapshot — the wire format behind `GET /metrics` on the embedded
// introspection server (obs/serve.h, DESIGN.md §10).
//
// Mapping from the registry's naming scheme:
//  - metric names are sanitized ("engine.executions" -> "df_engine_executions":
//    every character outside [a-zA-Z0-9_] becomes '_', a configurable prefix
//    is prepended, and a leading digit gets an extra '_'),
//  - the registry's single free-form label is exposed as `label="..."` with
//    backslash / quote / newline escaping,
//  - log2 histograms become native Prometheus histograms: cumulative
//    `_bucket{le="..."}` samples (le = upper bound of each power-of-two
//    bucket, inclusive, so bucket i covers [2^(i-1), 2^i - 1] and gets
//    le = 2^i - 1; bucket 0 holds the value 0 and gets le="0"), a final
//    `le="+Inf"` equal to `_count`, plus `_sum` and `_count`.
//
// Families are emitted in snapshot order (sorted by name then label, the
// registry map order) with one `# TYPE` line per family.
#pragma once

#include <string>
#include <string_view>

namespace df::obs {

struct Snapshot;

std::string prom_metric_name(std::string_view name,
                             std::string_view prefix = "df_");
std::string prom_escape_label(std::string_view v);

std::string render_prometheus(const Snapshot& s,
                              std::string_view prefix = "df_");

}  // namespace df::obs
