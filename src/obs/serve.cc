#include "obs/serve.h"

#include <netinet/in.h>
#include <poll.h>
#include <strings.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace df::obs {

namespace {

constexpr size_t kMaxHeadBytes = 16 * 1024;

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Content Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

void send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing to recover
    off += static_cast<size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& r,
                   const std::string& extra_headers = {}) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += reason_phrase(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n";
  out += extra_headers;
  out += "\r\n";
  out += r.body;
  send_all(fd, out);
}

// Case-insensitive single-header lookup in a raw request head. Returns the
// trimmed value or "" when absent.
std::string header_value(const std::string& head, const std::string& name) {
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    const size_t eol = head.find("\r\n", pos + 2);
    const std::string line = head.substr(
        pos + 2, eol == std::string::npos ? std::string::npos : eol - pos - 2);
    const size_t colon = line.find(':');
    if (colon != std::string::npos && colon == name.size() &&
        ::strncasecmp(line.c_str(), name.c_str(), name.size()) == 0) {
      size_t begin = colon + 1;
      while (begin < line.size() && line[begin] == ' ') ++begin;
      size_t end = line.size();
      while (end > begin && (line[end - 1] == ' ' || line[end - 1] == '\t')) {
        --end;
      }
      return line.substr(begin, end - begin);
    }
    pos = eol;
  }
  return "";
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[std::move(path)] = std::move(fn);
}

void HttpServer::handle_route(std::string prefix, RouteHandler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[std::move(prefix)] = std::move(fn);
}

HttpServer::RouteHandler HttpServer::find_route(
    const std::string& path) const {
  // Longest matching prefix: a route matches its exact path or any path one
  // '/' below it, so "/jobs" serves "/jobs/7/pause" but never "/jobsx".
  std::lock_guard<std::mutex> lock(mu_);
  const RouteHandler* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, fn] : routes_) {
    if (path.size() < prefix.size() ||
        path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (path.size() > prefix.size() && path[prefix.size()] != '/') continue;
    if (best == nullptr || prefix.size() > best_len) {
      best = &fn;
      best_len = prefix.size();
    }
  }
  return best != nullptr ? *best : RouteHandler{};
}

bool HttpServer::start(uint16_t port, std::string* error) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, /*timeout_ms=*/100);
    if (r <= 0 || (p.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // A stuck peer must not wedge the accept loop: every recv — head and
    // body alike — is bounded by this timeout.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    serve_client(client);
    ::close(client);
  }
}

void HttpServer::serve_client(int fd) {
  // Read until the end of the request head; bytes past it are the start of
  // the body.
  std::string req;
  char buf[2048];
  size_t head_end = std::string::npos;
  while (req.size() < kMaxHeadBytes) {
    head_end = req.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  const size_t line_end = req.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? req : req.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      head_end == std::string::npos) {
    HttpResponse r;
    r.status = 400;
    r.body = "bad request\n";
    send_response(fd, r);
    return;
  }
  const std::string head = req.substr(0, head_end);
  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = request.path.find('?');
  if (query != std::string::npos) request.path.resize(query);

  // Body: declared by Content-Length and capped at kMaxBodyBytes. The limit
  // is enforced twice — against the declared length before reading a single
  // body byte, and against the actual byte count for clients that lie.
  size_t content_length = 0;
  const std::string declared = header_value(head, "Content-Length");
  if (!declared.empty()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(declared.c_str(), &end, 10);
    if (end == declared.c_str() || v > kMaxBodyBytes) {
      HttpResponse r;
      r.status = 413;
      r.body = "request body too large (limit " +
               std::to_string(kMaxBodyBytes) + " bytes)\n";
      send_response(fd, r);
      return;
    }
    content_length = static_cast<size_t>(v);
  }
  request.body = req.substr(head_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // slow/dead client: the receive timeout fired
    request.body.append(buf, static_cast<size_t>(n));
    if (request.body.size() > kMaxBodyBytes) {
      HttpResponse r;
      r.status = 413;
      r.body = "request body too large (limit " +
               std::to_string(kMaxBodyBytes) + " bytes)\n";
      send_response(fd, r);
      return;
    }
  }
  if (request.body.size() < content_length) {
    HttpResponse r;
    r.status = 400;
    r.body = "incomplete request body\n";
    send_response(fd, r);
    return;
  }
  if (request.body.size() > content_length) request.body.resize(content_length);

  bool have_routes = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    have_routes = !routes_.empty();
  }
  const std::string allow =
      have_routes ? "Allow: GET, POST\r\n" : "Allow: GET\r\n";

  if (request.method != "GET" && request.method != "POST") {
    HttpResponse r;
    r.status = 405;
    r.body = "method not allowed\n";
    send_response(fd, r, allow);
    return;
  }

  if (request.method == "GET") {
    Handler fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = handlers_.find(request.path);
      if (it != handlers_.end()) fn = it->second;
    }
    if (fn) {
      send_response(fd, fn());
      return;
    }
  }

  if (const RouteHandler route = find_route(request.path); route) {
    send_response(fd, route(request));
    return;
  }

  if (request.method == "POST") {
    // No route claims the path: the resource (if it exists at all) is
    // GET-only — the historical read-only-server behaviour.
    HttpResponse r;
    r.status = 405;
    r.body = "method not allowed\n";
    send_response(fd, r, allow);
    return;
  }
  HttpResponse r;
  r.status = 404;
  r.body = "not found\n";
  send_response(fd, r);
}

}  // namespace df::obs
