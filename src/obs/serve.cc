#include "obs/serve.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace df::obs {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

void send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing to recover
    off += static_cast<size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& r,
                   const std::string& extra_headers = {}) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += reason_phrase(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n";
  out += extra_headers;
  out += "\r\n";
  out += r.body;
  send_all(fd, out);
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[std::move(path)] = std::move(fn);
}

bool HttpServer::start(uint16_t port, std::string* error) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, /*timeout_ms=*/100);
    if (r <= 0 || (p.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // A stuck peer must not wedge the accept loop.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    serve_client(client);
    ::close(client);
  }
}

void HttpServer::serve_client(int fd) {
  // Read until the end of the request head; the body (if any) is ignored.
  std::string req;
  char buf[2048];
  while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  const size_t line_end = req.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? req : req.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    HttpResponse r;
    r.status = 400;
    r.body = "bad request\n";
    send_response(fd, r);
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    HttpResponse r;
    r.status = 405;
    r.body = "method not allowed\n";
    send_response(fd, r, "Allow: GET\r\n");
    return;
  }

  Handler fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) fn = it->second;
  }
  if (!fn) {
    HttpResponse r;
    r.status = 404;
    r.body = "not found\n";
    send_response(fd, r);
    return;
  }
  send_response(fd, fn());
}

}  // namespace df::obs
