// Embedded introspection HTTP server (DESIGN.md §10): a dependency-free
// HTTP/1.1 endpoint bound to 127.0.0.1 that serves registered GET handlers
// from a dedicated accept-loop thread. This is the read-only precursor to
// the campaign control plane (ROADMAP item 2): operators scrape /metrics
// (Prometheus exposition), /status, /healthz, and /coverage from a live
// campaign without touching its output files.
//
// Scope is deliberately tiny: GET only (anything else is 405), one request
// per connection (`Connection: close`), no TLS, no keep-alive, no
// chunked encoding. Handlers run on the server thread — they must only
// touch thread-safe state (the metrics Registry) or data published for them
// under a lock (Daemon::publish_introspection).
//
// Port 0 asks the kernel for a free ephemeral port; port() reports the
// bound one. The accept loop polls with a 100 ms timeout so stop() (also
// called by the destructor) converges quickly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace df::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse()>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers (or replaces) the handler for an exact request path. The
  // query string is stripped before matching. Safe while running.
  void handle(std::string path, Handler fn);

  // Binds 127.0.0.1:`port` and starts the accept thread. Returns false and
  // fills `error` (if non-null) on bind/listen failure; the server is then
  // inert and start() may be retried.
  bool start(uint16_t port, std::string* error = nullptr);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (meaningful after a successful start()).
  uint16_t port() const { return port_; }
  // Requests answered so far (any status).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void serve_client(int fd);

  mutable std::mutex mu_;  // guards handlers_
  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace df::obs
