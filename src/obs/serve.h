// Embedded introspection + control HTTP server (DESIGN.md §10, §14): a
// dependency-free HTTP/1.1 endpoint bound to 127.0.0.1 that serves
// registered handlers from a dedicated accept-loop thread. It started as
// the read-only scrape surface (/metrics, /status, /healthz, /coverage);
// the campaign service control plane (ROADMAP item 2) adds method-aware
// *routes* so the job API can accept POST bodies (submit / pause / resume /
// cancel) on the same tiny server.
//
// Scope stays deliberately small: GET plus POST (anything else is 405 with
// an Allow header), one request per connection (`Connection: close`), no
// TLS, no keep-alive, no chunked encoding. Request bodies are read up to
// Content-Length and hard-capped at kMaxBodyBytes — an oversized or
// lying client gets 413 and the connection is dropped, and a slow client
// runs into the per-connection receive timeout, so neither can wedge the
// accept loop. Handlers run on the server thread — they must only touch
// thread-safe state (the metrics Registry, the service job table's own
// lock) or data published for them under a lock
// (Daemon::publish_introspection).
//
// Exact GET handlers (handle()) are matched first; route handlers
// (handle_route()) then match by longest path prefix for any method and
// see the full request, so "/jobs" can serve "/jobs", "/jobs/7", and
// "/jobs/7/pause" from one handler.
//
// Port 0 asks the kernel for a free ephemeral port; port() reports the
// bound one. The accept loop polls with a 100 ms timeout so stop() (also
// called by the destructor) converges quickly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace df::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// One parsed request as a route handler sees it: the method verb, the path
// with any query string stripped, and the (possibly empty) body.
struct HttpRequest {
  std::string method;
  std::string path;
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse()>;
  using RouteHandler = std::function<HttpResponse(const HttpRequest&)>;

  // Request bodies beyond this are rejected with 413 (Content-Length is
  // checked before any body byte is read, and the read loop enforces the
  // same cap against clients that lie about the length).
  static constexpr size_t kMaxBodyBytes = 64 * 1024;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers (or replaces) the GET handler for an exact request path. The
  // query string is stripped before matching. Safe while running.
  void handle(std::string path, Handler fn);

  // Registers (or replaces) a method-aware handler for `prefix` and every
  // path below it ("/jobs" matches "/jobs", "/jobs/7/pause", but not
  // "/jobsx"). Longest matching prefix wins; exact GET handlers take
  // precedence. Safe while running.
  void handle_route(std::string prefix, RouteHandler fn);

  // Binds 127.0.0.1:`port` and starts the accept thread. Returns false and
  // fills `error` (if non-null) on bind/listen failure; the server is then
  // inert and start() may be retried.
  bool start(uint16_t port, std::string* error = nullptr);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (meaningful after a successful start()).
  uint16_t port() const { return port_; }
  // Requests answered so far (any status).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void serve_client(int fd);
  RouteHandler find_route(const std::string& path) const;

  mutable std::mutex mu_;  // guards handlers_ and routes_
  std::map<std::string, Handler> handlers_;
  std::map<std::string, RouteHandler> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace df::obs
