#include "obs/span.h"

#include <utility>

namespace df::obs {

namespace {

uint64_t to_ns(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

SpanTracer::SpanTracer(TraceSink& sink)
    : sink_(sink), epoch_(std::chrono::steady_clock::now()) {}

uint64_t SpanTracer::begin(std::string_view name, std::string_view track,
                           uint64_t exec) {
  if (!enabled_) return 0;
  Open o;
  o.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  o.name = std::string(name);
  o.track = std::string(track);
  o.exec = exec;
  o.start = std::chrono::steady_clock::now();
  const uint64_t id = o.id;
  std::lock_guard<std::mutex> lock(mu_);
  auto& stack = open_[std::this_thread::get_id()];
  o.parent = stack.empty() ? 0 : stack.back().id;
  stack.push_back(std::move(o));
  return id;
}

void SpanTracer::end(uint64_t id) {
  if (id == 0) return;
  // Pop under the lock, emit outside it (TraceSink has its own mutex).
  std::vector<Open> closed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = open_.find(std::this_thread::get_id());
    if (it == open_.end()) return;
    auto& stack = it->second;
    while (!stack.empty()) {
      Open o = std::move(stack.back());
      stack.pop_back();
      const bool done = o.id == id;
      closed.push_back(std::move(o));
      if (done) break;
    }
    if (stack.empty()) open_.erase(it);
  }
  const auto now = std::chrono::steady_clock::now();
  for (auto& o : closed) {
    TraceEvent ev;
    ev.kind = EventKind::kSpan;
    ev.device = std::move(o.track);
    ev.exec_index = o.exec;
    ev.with("span", std::move(o.name))
        .with("id", o.id)
        .with("parent", o.parent)
        .with("ts_ns", to_ns(o.start - epoch_))
        .with("dur_ns", to_ns(now - o.start));
    sink_.emit(std::move(ev));
  }
}

size_t SpanTracer::open_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = open_.find(std::this_thread::get_id());
  return it == open_.end() ? 0 : it->second.size();
}

}  // namespace df::obs
