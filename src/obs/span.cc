#include "obs/span.h"

namespace df::obs {

namespace {

uint64_t to_ns(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

SpanTracer::SpanTracer(TraceSink& sink)
    : sink_(sink), epoch_(std::chrono::steady_clock::now()) {}

uint64_t SpanTracer::begin(std::string_view name, std::string_view track,
                           uint64_t exec) {
  if (!enabled_) return 0;
  Open o;
  o.id = next_id_++;
  o.parent = open_.empty() ? 0 : open_.back().id;
  o.name = std::string(name);
  o.track = std::string(track);
  o.exec = exec;
  o.start = std::chrono::steady_clock::now();
  open_.push_back(std::move(o));
  return open_.back().id;
}

void SpanTracer::end(uint64_t id) {
  if (id == 0) return;
  while (!open_.empty()) {
    Open o = std::move(open_.back());
    open_.pop_back();
    const auto now = std::chrono::steady_clock::now();
    TraceEvent ev;
    ev.kind = EventKind::kSpan;
    ev.device = std::move(o.track);
    ev.exec_index = o.exec;
    ev.with("span", std::move(o.name))
        .with("id", o.id)
        .with("parent", o.parent)
        .with("ts_ns", to_ns(o.start - epoch_))
        .with("dur_ns", to_ns(now - o.start));
    sink_.emit(std::move(ev));
    if (o.id == id) return;
  }
}

}  // namespace df::obs
