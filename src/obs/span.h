// Hierarchical execution spans: campaign → engine iteration → phase →
// per-syscall → driver-handler. Spans nest strictly *per thread*: each
// fleet worker gets its own open-span stack (keyed by std::thread::id), so
// engines running on parallel workers trace independently. Completed spans
// are recorded into the bounded TraceSink as one kSpan event carrying id,
// parent id, track, and (timing-quarantined) ts_ns/dur_ns fields.
//
// Thread model (DESIGN.md §8): span ids come from one atomic counter —
// unique across threads, but *allocation order* between threads is
// scheduling-dependent in parallel mode, so span ids/interleaving are only
// deterministic at workers=1. A span opened on a worker thread has no
// parent on another thread (parent = 0 at stack bottom), which the chrome
// exporter treats as a root span on that track.
//
// Determinism contract (workers=1): span names, ids, parents, tracks and
// exec indices are pure functions of the executed work; only the `_ns`
// fields carry wall-clock and are stripped by determinism comparisons.
//
// Tracing is opt-in (`set_enabled(true)` before components attach): when
// disabled, begin() returns 0 and ScopedSpan is a null-check, preserving
// the <5% attached-instrumentation budget of the default configuration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace df::obs {

class SpanTracer {
 public:
  explicit SpanTracer(TraceSink& sink);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Opens a span nested under the calling thread's innermost open span.
  // `track` groups spans into one timeline row for the Chrome exporter
  // (device id, or "" for the root process track). Returns the span id,
  // 0 when disabled.
  uint64_t begin(std::string_view name, std::string_view track = {},
                 uint64_t exec = 0);
  // Closes span `id` — and, defensively, any deeper span left open on this
  // thread — and emits one kSpan event per closed span. end(0) is a no-op.
  void end(uint64_t id);

  uint64_t spans_started() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }
  // Open-span depth of the *calling* thread's stack.
  size_t open_depth() const;

 private:
  struct Open {
    uint64_t id = 0;
    uint64_t parent = 0;
    std::string name;
    std::string track;
    uint64_t exec = 0;
    std::chrono::steady_clock::time_point start;
  };

  TraceSink& sink_;
  bool enabled_ = false;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  // Per-thread open stacks; an entry is erased once its stack drains, so
  // the map stays bounded by the number of concurrently-tracing threads.
  std::map<std::thread::id, std::vector<Open>> open_;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII span guard. A null tracer (detached / disabled) costs one null-check
// per end of the scope.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, std::string_view name,
             std::string_view track = {}, uint64_t exec = 0)
      : tracer_(tracer),
        id_(tracer == nullptr ? 0 : tracer->begin(name, track, exec)) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
  SpanTracer* tracer_;
  uint64_t id_;
};

}  // namespace df::obs
