#include "obs/stats_reporter.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/obs.h"

namespace df::obs {

uint64_t DriverStateCoverage::states_visited() const {
  uint64_t n = 0;
  for (uint64_t v : visits) n += v > 0 ? 1 : 0;
  return n;
}

uint64_t DriverStateCoverage::transitions_observed() const {
  uint64_t n = 0;
  for (uint64_t v : matrix) n += v > 0 ? 1 : 0;
  return n;
}

void DriverStateCoverage::write_json(JsonWriter& w) const {
  const size_t n = states.size();
  w.begin_object();
  w.field("driver", driver);
  w.key("states").begin_array();
  for (const auto& s : states) w.value(s);
  w.end_array();
  w.field("current", current < n ? states[current] : std::to_string(current));
  w.key("visits").begin_array();
  for (uint64_t v : visits) w.value(v);
  w.end_array();
  // Row-major transition matrix as an array of rows, matrix[from][to].
  w.key("matrix").begin_array();
  for (size_t from = 0; from < n; ++from) {
    w.begin_array();
    for (size_t to = 0; to < n; ++to) w.value(matrix[from * n + to]);
    w.end_array();
  }
  w.end_array();
  w.field("states_visited", states_visited());
  w.field("transitions_observed", transitions_observed());
  w.end_object();
}

StatsReporter::StatsReporter(uint64_t sample_every_execs)
    : interval_(sample_every_execs == 0 ? 1 : sample_every_execs),
      start_(std::chrono::steady_clock::now()) {}

void StatsReporter::record(const std::string& device, const EngineSample& s) {
  auto it = series_.find(device);
  if (it == series_.end()) {
    order_.push_back(device);
    it = series_.emplace(device, std::vector<Point>()).first;
  }
  Point p;
  p.sample = s;
  p.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
               .count();
  it->second.push_back(p);
  if (stall_window_ != 0) run_watchdog(device, s);
}

void StatsReporter::restore_point(const std::string& device, const Point& p) {
  auto it = series_.find(device);
  if (it == series_.end()) {
    order_.push_back(device);
    it = series_.emplace(device, std::vector<Point>()).first;
  }
  it->second.push_back(p);
}

void StatsReporter::run_watchdog(const std::string& device,
                                 const EngineSample& s) {
  Watch& wd = watch_[device];
  if (s.total_coverage > wd.best_coverage || !wd.seeded) {
    wd.seeded = true;
    wd.best_coverage = s.total_coverage;
    wd.last_progress_exec = s.executions;
    if (wd.stalled) {
      wd.stalled = false;
      if (watch_obs_ != nullptr) {
        watch_obs_->registry.gauge("campaign.stalled", device).set(0);
      }
    }
    return;
  }
  if (wd.stalled || s.executions - wd.last_progress_exec < stall_window_) {
    return;
  }
  wd.stalled = true;
  if (watch_obs_ != nullptr) {
    watch_obs_->registry.gauge("campaign.stalled", device).set(1);
    TraceEvent ev;
    ev.kind = EventKind::kStall;
    ev.device = device;
    ev.exec_index = s.executions;
    ev.with("window", stall_window_)
        .with("execs_since_progress", s.executions - wd.last_progress_exec)
        .with("coverage", s.total_coverage);
    watch_obs_->trace.emit(std::move(ev));
  }
}

std::vector<StatsReporter::WatchState> StatsReporter::watch_states() const {
  std::vector<WatchState> out;
  out.reserve(watch_.size());
  for (const auto& [device, wd] : watch_) {
    out.push_back({device, wd.best_coverage, wd.last_progress_exec, wd.seeded,
                   wd.stalled});
  }
  return out;
}

void StatsReporter::restore_watch(const WatchState& w) {
  Watch& wd = watch_[w.device];
  wd.best_coverage = w.best_coverage;
  wd.last_progress_exec = w.last_progress_exec;
  wd.seeded = w.seeded;
  wd.stalled = w.stalled;
}

bool StatsReporter::stalled(std::string_view device) const {
  const auto it = watch_.find(device);
  return it != watch_.end() && it->second.stalled;
}

std::vector<std::string> StatsReporter::stalled_devices() const {
  std::vector<std::string> out;
  for (const auto& [device, wd] : watch_) {
    if (wd.stalled) out.push_back(device);
  }
  return out;
}

bool StatsReporter::any_stalled() const {
  for (const auto& [device, wd] : watch_) {
    if (wd.stalled) return true;
  }
  return false;
}

void StatsReporter::set_state_coverage(
    const std::string& device, std::vector<DriverStateCoverage> coverage) {
  state_cov_[device] = std::move(coverage);
}

const std::vector<DriverStateCoverage>& StatsReporter::state_coverage(
    std::string_view device) const {
  static const std::vector<DriverStateCoverage> kEmpty;
  const auto it = state_cov_.find(device);
  return it == state_cov_.end() ? kEmpty : it->second;
}

const std::vector<StatsReporter::Point>& StatsReporter::series(
    std::string_view device) const {
  static const std::vector<Point> kEmpty;
  const auto it = series_.find(device);
  return it == series_.end() ? kEmpty : it->second;
}

namespace {

template <typename Get>
void write_array(JsonWriter& w, std::string_view key,
                 const std::vector<StatsReporter::Point>& pts, Get get) {
  w.key(key).begin_array();
  for (const auto& p : pts) w.value(get(p));
  w.end_array();
}

}  // namespace

void StatsReporter::write_json(JsonWriter& w, bool include_timing) const {
  w.begin_object();
  w.field("sample_every", interval_);

  w.key("devices").begin_array();
  for (const auto& dev : order_) {
    const auto& pts = series_.at(dev);
    w.begin_object();
    w.field("device", dev);
    write_array(w, "executions", pts,
                [](const Point& p) { return p.sample.executions; });
    write_array(w, "kernel_coverage", pts,
                [](const Point& p) { return p.sample.kernel_coverage; });
    write_array(w, "total_coverage", pts,
                [](const Point& p) { return p.sample.total_coverage; });
    write_array(w, "corpus", pts,
                [](const Point& p) { return p.sample.corpus_size; });
    write_array(w, "bugs", pts,
                [](const Point& p) { return p.sample.unique_bugs; });
    write_array(w, "relation_edges", pts,
                [](const Point& p) { return p.sample.relation_edges; });
    write_array(w, "reboots", pts,
                [](const Point& p) { return p.sample.reboots; });
    const auto sc = state_cov_.find(dev);
    if (sc != state_cov_.end() && !sc->second.empty()) {
      w.key("state_coverage").begin_array();
      for (const auto& d : sc->second) {
        if (!d.states.empty()) d.write_json(w);
      }
      w.end_array();
    }
    if (include_timing) {
      w.key("timing").begin_object();
      w.key("secs").begin_array();
      for (const auto& p : pts) w.value(p.secs);
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  // Aggregate: index-wise sum over devices, truncated to the shortest
  // series so every aggregate point covers the whole fleet.
  size_t n = SIZE_MAX;
  for (const auto& dev : order_) n = std::min(n, series_.at(dev).size());
  if (order_.empty()) n = 0;

  w.key("aggregate").begin_object();
  auto sum_at = [&](size_t i, auto get) {
    uint64_t total = 0;
    for (const auto& dev : order_) total += get(series_.at(dev)[i]);
    return total;
  };
  auto write_sum = [&](std::string_view key, auto get) {
    w.key(key).begin_array();
    for (size_t i = 0; i < n; ++i) w.value(sum_at(i, get));
    w.end_array();
  };
  write_sum("executions", [](const Point& p) { return p.sample.executions; });
  write_sum("kernel_coverage",
            [](const Point& p) { return p.sample.kernel_coverage; });
  write_sum("total_coverage",
            [](const Point& p) { return p.sample.total_coverage; });
  write_sum("corpus", [](const Point& p) { return p.sample.corpus_size; });
  write_sum("bugs", [](const Point& p) { return p.sample.unique_bugs; });
  write_sum("reboots", [](const Point& p) { return p.sample.reboots; });
  if (include_timing) {
    w.key("timing").begin_object();
    w.key("secs").begin_array();
    for (size_t i = 0; i < n; ++i) {
      double last = 0;
      for (const auto& dev : order_) {
        last = std::max(last, series_.at(dev)[i].secs);
      }
      w.value(last);
    }
    w.end_array();
    w.key("execs_per_sec").begin_array();
    for (size_t i = 0; i < n; ++i) {
      double secs = 0;
      for (const auto& dev : order_) {
        secs = std::max(secs, series_.at(dev)[i].secs);
      }
      const uint64_t execs =
          sum_at(i, [](const Point& p) { return p.sample.executions; });
      w.value(secs > 0 ? static_cast<double>(execs) / secs : 0.0);
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

std::string StatsReporter::to_json(bool include_timing) const {
  JsonWriter w;
  write_json(w, include_timing);
  return w.take();
}

}  // namespace df::obs
