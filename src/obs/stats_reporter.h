// Campaign stats export: per-device + aggregate time-series sampled on an
// execution-count interval — the data the paper's Fig. 4 (coverage over
// time), Table 2 (bug counts), and Table 3 (ablations) plots are built
// from.
//
// The primary axis is *executions* (deterministic); each point also carries
// elapsed steady-clock seconds so throughput (execs/sec) can be derived.
// All timing lives under "timing" keys in the JSON and can be omitted
// (`include_timing = false`) for determinism comparisons.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace df::obs {

class JsonWriter;

// One engine observation. Produced by Engine::sample(); plain data so the
// obs layer stays below core in the dependency order.
struct EngineSample {
  uint64_t executions = 0;
  uint64_t kernel_coverage = 0;
  uint64_t total_coverage = 0;
  uint64_t corpus_size = 0;
  uint64_t unique_bugs = 0;
  uint64_t relation_edges = 0;
  uint64_t reboots = 0;
};

class StatsReporter {
 public:
  struct Point {
    EngineSample sample;
    double secs = 0;  // steady-clock seconds since reporter construction
  };

  explicit StatsReporter(uint64_t sample_every_execs = 1024);

  // Sampling cadence in per-engine executions; the owner (Daemon, bench
  // loop) decides when that many executions have elapsed and calls record().
  uint64_t interval() const { return interval_; }

  void record(const std::string& device, const EngineSample& s);

  bool empty() const { return series_.empty(); }
  // Devices in first-seen order.
  const std::vector<std::string>& devices() const { return order_; }
  const std::vector<Point>& series(std::string_view device) const;

  // {"sample_every":..,"devices":[{...per-device arrays...}],
  //  "aggregate":{...summed arrays + execs/sec...}}
  void write_json(JsonWriter& w, bool include_timing = true) const;
  std::string to_json(bool include_timing = true) const;

 private:
  uint64_t interval_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<Point>, std::less<>> series_;
};

}  // namespace df::obs
