// Campaign stats export: per-device + aggregate time-series sampled on an
// execution-count interval — the data the paper's Fig. 4 (coverage over
// time), Table 2 (bug counts), and Table 3 (ablations) plots are built
// from.
//
// The primary axis is *executions* (deterministic); each point also carries
// elapsed steady-clock seconds so throughput (execs/sec) can be derived.
// All timing lives under "timing" keys in the JSON and can be omitted
// (`include_timing = false`) for determinism comparisons.
//
// Besides the counter series, the reporter carries two provenance-era
// extensions:
//  - per-device driver-state coverage (DriverStateCoverage matrices pushed
//    by the sampling owner), written as a "state_coverage" section, and
//  - a stall watchdog: when a device records no total-coverage growth for
//    `stall_window()` executions, the gauge `campaign.stalled{device}` is
//    set and one kStall trace event fires (exec-indexed, deterministic).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace df::obs {

class JsonWriter;
struct Observability;

// One engine observation. Produced by Engine::sample(); plain data so the
// obs layer stays below core in the dependency order.
struct EngineSample {
  uint64_t executions = 0;
  uint64_t kernel_coverage = 0;
  uint64_t total_coverage = 0;
  uint64_t corpus_size = 0;
  uint64_t unique_bugs = 0;
  uint64_t relation_edges = 0;
  uint64_t reboots = 0;
  // Distinct driver state-machine states entered so far (summed across the
  // device's drivers). Feeds the velocity tracker's states/sec rate; not
  // part of the checkpointed Point serialization (the matrices themselves
  // are the durable record).
  uint64_t states_visited = 0;
};

// Campaign-cumulative state-machine coverage of one driver: which protocol
// states a campaign entered and which transitions it exercised — the
// observability counterpart of the paper's "deep block" claim. Plain data
// collected from kernel::Driver by the core layer.
struct DriverStateCoverage {
  std::string driver;
  std::vector<std::string> states;  // state names; index == state id
  uint64_t current = 0;             // state index at sample time
  std::vector<uint64_t> visits;     // per-state entry counts
  std::vector<uint64_t> matrix;     // row-major [from * n + to] transitions

  uint64_t states_visited() const;
  uint64_t transitions_observed() const;  // distinct (from, to) pairs seen
  void write_json(JsonWriter& w) const;
};

class StatsReporter {
 public:
  struct Point {
    EngineSample sample;
    double secs = 0;  // steady-clock seconds since reporter construction
  };

  explicit StatsReporter(uint64_t sample_every_execs = 1024);

  // Sampling cadence in per-engine executions; the owner (Daemon, bench
  // loop) decides when that many executions have elapsed and calls record().
  uint64_t interval() const { return interval_; }

  void record(const std::string& device, const EngineSample& s);

  // Checkpoint support: appends a previously recorded point verbatim —
  // no fresh timestamp, no stall-watchdog pass. The watchdog re-seeds from
  // live record() calls after the resume, which only delays (never fakes)
  // a stall verdict.
  void restore_point(const std::string& device, const Point& p);

  bool empty() const { return series_.empty(); }
  // Devices in first-seen order.
  const std::vector<std::string>& devices() const { return order_; }
  const std::vector<Point>& series(std::string_view device) const;

  // Latest driver-state coverage for `device`; replaces any prior snapshot
  // (matrices are campaign-cumulative, so last-wins is the full picture).
  void set_state_coverage(const std::string& device,
                          std::vector<DriverStateCoverage> coverage);
  const std::vector<DriverStateCoverage>& state_coverage(
      std::string_view device) const;

  // --- stall watchdog -------------------------------------------------------
  // Enables the coverage-plateau detector: a device with no total-coverage
  // growth across `execs` executions (measured at record() points) is
  // flagged. 0 (the default) disables.
  void set_stall_window(uint64_t execs) { stall_window_ = execs; }
  uint64_t stall_window() const { return stall_window_; }
  // Where the watchdog publishes: gauge campaign.stalled{device} and kStall
  // trace events. Null detaches (detection itself keeps running).
  void attach_observability(Observability* o) { watch_obs_ = o; }
  bool stalled(std::string_view device) const;
  // Currently stalled devices in name order, and the fleet-level verdict —
  // what /healthz serves (obs/serve.h) without parsing the event stream.
  std::vector<std::string> stalled_devices() const;
  bool any_stalled() const;

  // Checkpoint support: stall-watchdog state round-trip, so a resumed
  // campaign reaches (or clears) stall verdicts at the same executions the
  // uninterrupted run would. Devices come back in name order.
  struct WatchState {
    std::string device;
    uint64_t best_coverage = 0;
    uint64_t last_progress_exec = 0;
    bool seeded = false;
    bool stalled = false;
  };
  std::vector<WatchState> watch_states() const;
  void restore_watch(const WatchState& w);

  // {"sample_every":..,"devices":[{...per-device arrays...}],
  //  "aggregate":{...summed arrays + execs/sec...}}
  void write_json(JsonWriter& w, bool include_timing = true) const;
  std::string to_json(bool include_timing = true) const;

 private:
  struct Watch {
    uint64_t best_coverage = 0;
    uint64_t last_progress_exec = 0;
    bool seeded = false;  // first record() establishes the baseline
    bool stalled = false;
  };

  void run_watchdog(const std::string& device, const EngineSample& s);

  uint64_t interval_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<Point>, std::less<>> series_;
  std::map<std::string, std::vector<DriverStateCoverage>, std::less<>>
      state_cov_;
  uint64_t stall_window_ = 0;
  Observability* watch_obs_ = nullptr;
  std::map<std::string, Watch, std::less<>> watch_;
};

}  // namespace df::obs
