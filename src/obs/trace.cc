#include "obs/trace.h"

#include "obs/json.h"

namespace df::obs {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kExec: return "exec";
    case EventKind::kNewCoverage: return "new_coverage";
    case EventKind::kRelationLearn: return "relation_learn";
    case EventKind::kBug: return "bug";
    case EventKind::kCorpusAdd: return "corpus_add";
    case EventKind::kDecay: return "decay";
    case EventKind::kProbe: return "probe";
    case EventKind::kReboot: return "reboot";
    case EventKind::kSpan: return "span";
    case EventKind::kStall: return "stall";
    case EventKind::kFault: return "fault";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kDistill: return "distill";
  }
  return "?";
}

bool kind_from_name(std::string_view name, EventKind* out) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(EventKind::kDistill); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceSink::~TraceSink() { close_file(); }

void TraceSink::emit(TraceEvent ev) {
  // Callers on the hot path check record_execs() before even constructing
  // the event; this keeps the flag authoritative for direct emitters too.
  if (ev.kind == EventKind::kExec && !record_execs_) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++emitted_;
  if (file_ != nullptr) *file_ << to_json(ev) << '\n';
  Ring& ring = rings_[ev.device];
  if (ring.count < capacity_) {
    ring.events.push_back(std::move(ev));
    ++ring.count;
    ++retained_;
    return;
  }
  // Full: overwrite the device's oldest slot and advance its ring head.
  ring.events[ring.head] = std::move(ev);
  ring.head = (ring.head + 1) % capacity_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

uint64_t TraceSink::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_ - retained_;
}

void TraceSink::reset_retained(uint64_t emitted_base) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  retained_ = 0;
  emitted_ = emitted_base;
}

const TraceEvent& TraceSink::at(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [device, ring] : rings_) {
    if (i < ring.count) return ring.events[(ring.head + i) % ring.count];
    i -= ring.count;
  }
  // Out of range: keep the historical UB-free-ish contract of indexing the
  // first ring rather than throwing (callers iterate [0, size())).
  return rings_.begin()->second.events.front();
}

bool TraceSink::open_file(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!f->is_open()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  file_ = std::move(f);
  return true;
}

void TraceSink::close_file() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    file_->flush();
    file_.reset();
  }
}

std::string TraceSink::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [device, ring] : rings_) {
    for (size_t i = 0; i < ring.count; ++i) {
      out += to_json(ring.events[(ring.head + i) % ring.count]);
      out += '\n';
    }
  }
  return out;
}

std::string TraceSink::to_json(const TraceEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.field("event", kind_name(ev.kind));
  w.field("device", ev.device);
  w.field("exec", ev.exec_index);
  for (const auto& f : ev.fields) {
    if (f.is_num) {
      w.field(f.key, f.num);
    } else {
      w.field(f.key, f.str);
    }
  }
  w.end_object();
  return w.take();
}

}  // namespace df::obs
