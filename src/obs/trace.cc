#include "obs/trace.h"

#include "obs/json.h"

namespace df::obs {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kExec: return "exec";
    case EventKind::kNewCoverage: return "new_coverage";
    case EventKind::kRelationLearn: return "relation_learn";
    case EventKind::kBug: return "bug";
    case EventKind::kCorpusAdd: return "corpus_add";
    case EventKind::kDecay: return "decay";
    case EventKind::kProbe: return "probe";
    case EventKind::kReboot: return "reboot";
    case EventKind::kSpan: return "span";
    case EventKind::kStall: return "stall";
  }
  return "?";
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceSink::~TraceSink() { close_file(); }

void TraceSink::emit(TraceEvent ev) {
  // Callers on the hot path check record_execs() before even constructing
  // the event; this keeps the flag authoritative for direct emitters too.
  if (ev.kind == EventKind::kExec && !record_execs_) return;
  ++emitted_;
  if (file_ != nullptr) *file_ << to_json(ev) << '\n';
  if (count_ < capacity_) {
    ring_.push_back(std::move(ev));
    ++count_;
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
}

const TraceEvent& TraceSink::at(size_t i) const {
  return ring_[(head_ + i) % count_];
}

bool TraceSink::open_file(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!f->is_open()) return false;
  file_ = std::move(f);
  return true;
}

void TraceSink::close_file() {
  if (file_ != nullptr) {
    file_->flush();
    file_.reset();
  }
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (size_t i = 0; i < count_; ++i) {
    out += to_json(at(i));
    out += '\n';
  }
  return out;
}

std::string TraceSink::to_json(const TraceEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.field("event", kind_name(ev.kind));
  w.field("device", ev.device);
  w.field("exec", ev.exec_index);
  for (const auto& f : ev.fields) {
    if (f.is_num) {
      w.field(f.key, f.num);
    } else {
      w.field(f.key, f.str);
    }
  }
  w.end_object();
  return w.take();
}

}  // namespace df::obs
