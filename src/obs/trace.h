// Structured campaign event trace: exec results, new-coverage events,
// relation-learn events, crash/bug events, corpus adds, decay ticks, probe
// completions, and device reboots, each serializable as one JSONL record.
//
// Events are held in a bounded in-memory ring (oldest evicted first) and
// optionally mirrored line-by-line to a file. Determinism contract: event
// *content* carries no wall-clock — ordering and the `exec` field use
// execution counts, so two identically-seeded campaigns emit identical
// JSONL.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace df::obs {

enum class EventKind : uint8_t {
  kExec,           // one program execution finished
  kNewCoverage,    // execution produced previously-unseen features
  kRelationLearn,  // relation graph learned from a minimized seed
  kBug,            // first occurrence of a (deduped) kernel/HAL bug
  kCorpusAdd,      // seed admitted to the corpus
  kDecay,          // periodic relation-weight decay tick
  kProbe,          // HAL probing pass completed
  kReboot,         // device rebooted
  kSpan,           // completed hierarchical execution span (obs/span.h)
  kStall,          // coverage-plateau watchdog fired for a device
};

const char* kind_name(EventKind kind);

struct TraceEvent {
  EventKind kind = EventKind::kExec;
  std::string device;      // device id ("A1", ...)
  uint64_t exec_index = 0; // engine execution count when the event fired

  struct Field {
    std::string key;
    std::string str;   // used when !is_num
    uint64_t num = 0;  // used when is_num
    bool is_num = false;
  };
  std::vector<Field> fields;

  TraceEvent& with(std::string key, uint64_t v) {
    fields.push_back({std::move(key), {}, v, true});
    return *this;
  }
  TraceEvent& with(std::string key, std::string v) {
    fields.push_back({std::move(key), std::move(v), 0, false});
    return *this;
  }
};

class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 4096);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Per-execution kExec events are the only high-rate kind; campaigns that
  // want just the milestone events can switch them off.
  bool record_execs() const { return record_execs_; }
  void set_record_execs(bool on) { record_execs_ = on; }

  void emit(TraceEvent ev);

  size_t capacity() const { return capacity_; }
  size_t size() const { return count_; }
  uint64_t emitted() const { return emitted_; }
  uint64_t dropped() const { return emitted_ - count_; }
  // i = 0 is the oldest retained event.
  const TraceEvent& at(size_t i) const;

  // Mirrors every subsequent event to `path` as one JSON object per line.
  bool open_file(const std::string& path);
  void close_file();
  bool file_open() const { return file_ != nullptr; }

  // The retained ring as JSONL, oldest first.
  std::string to_jsonl() const;
  static std::string to_json(const TraceEvent& ev);

 private:
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;   // index of the oldest event
  size_t count_ = 0;  // events currently retained
  uint64_t emitted_ = 0;
  bool record_execs_ = true;
  std::unique_ptr<std::ofstream> file_;
};

}  // namespace df::obs
