// Structured campaign event trace: exec results, new-coverage events,
// relation-learn events, crash/bug events, corpus adds, decay ticks, probe
// completions, and device reboots, each serializable as one JSONL record.
//
// Events are held in bounded in-memory rings — one ring of `capacity`
// events *per device*, oldest evicted first — and optionally mirrored
// line-by-line to a file. Determinism contract: event *content* carries no
// wall-clock (ordering and the `exec` field use execution counts), and the
// per-device partition makes the retained set and the export order
// (devices in id order, chronological within a device) independent of
// thread scheduling — two identically-seeded campaigns emit identical
// JSONL at any worker count (DESIGN.md §8). The file mirror is the one
// arrival-ordered surface: it streams events as they happen, so its line
// order is scheduling-dependent under parallel workers.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace df::obs {

enum class EventKind : uint8_t {
  kExec,           // one program execution finished
  kNewCoverage,    // execution produced previously-unseen features
  kRelationLearn,  // relation graph learned from a minimized seed
  kBug,            // first occurrence of a (deduped) kernel/HAL bug
  kCorpusAdd,      // seed admitted to the corpus
  kDecay,          // periodic relation-weight decay tick
  kProbe,          // HAL probing pass completed
  kReboot,         // device rebooted
  kSpan,           // completed hierarchical execution span (obs/span.h)
  kStall,          // coverage-plateau watchdog fired for a device
  kFault,          // injected transport fault (hang/error/reboot)
  kRecovery,       // device re-established after a fault-induced reboot
  kDistill,        // corpus distillation pass completed (dry-run or real)
};

const char* kind_name(EventKind kind);
// Reverse lookup for checkpoint restore; returns false for unknown names.
bool kind_from_name(std::string_view name, EventKind* out);

struct TraceEvent {
  EventKind kind = EventKind::kExec;
  std::string device;      // device id ("A1", ...)
  uint64_t exec_index = 0; // engine execution count when the event fired

  struct Field {
    std::string key;
    std::string str;   // used when !is_num
    uint64_t num = 0;  // used when is_num
    bool is_num = false;
  };
  std::vector<Field> fields;

  TraceEvent& with(std::string key, uint64_t v) {
    fields.push_back({std::move(key), {}, v, true});
    return *this;
  }
  TraceEvent& with(std::string key, std::string v) {
    fields.push_back({std::move(key), std::move(v), 0, false});
    return *this;
  }
};

// Thread model: emit() (and the file mirror it feeds) is serialized by an
// internal mutex, so engines on different fleet workers can emit
// concurrently — ring slots never tear and mirrored JSONL lines never
// interleave. Readers (at()/to_jsonl()) take the same mutex but hand out
// references/copies that are only stable while no emit runs — read at
// slice barriers or after the campaign, as all callers in-tree do.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 4096);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Per-execution kExec events are the only high-rate kind; campaigns that
  // want just the milestone events can switch them off.
  bool record_execs() const { return record_execs_; }
  void set_record_execs(bool on) { record_execs_ = on; }

  void emit(TraceEvent ev);

  // Retained events per device.
  size_t capacity() const { return capacity_; }
  // Total retained events across all device rings.
  size_t size() const;
  uint64_t emitted() const;
  uint64_t dropped() const;
  // Retained events in export order: devices in id order, oldest first
  // within a device. i = 0 is the first device's oldest event.
  const TraceEvent& at(size_t i) const;

  // Checkpoint support: drops every retained event and pins the emitted
  // tally to `emitted_base` (the saved total minus the events about to be
  // replayed); the caller then re-emits the restored stream so the rings,
  // emitted() and dropped() all match the saved sink. The file mirror is
  // untouched — a resumed campaign streams only its own new events.
  void reset_retained(uint64_t emitted_base);

  // Mirrors every subsequent event to `path` as one JSON object per line.
  bool open_file(const std::string& path);
  void close_file();
  bool file_open() const { return file_ != nullptr; }

  // The retained events as JSONL in export order (devices in id order,
  // chronological within a device).
  std::string to_jsonl() const;
  static std::string to_json(const TraceEvent& ev);

 private:
  struct Ring {
    std::vector<TraceEvent> events;
    size_t head = 0;   // index of the oldest event
    size_t count = 0;  // events currently retained
  };

  mutable std::mutex mu_;
  size_t capacity_;  // per device
  std::map<std::string, Ring> rings_;  // device id -> ring, id-ordered
  size_t retained_ = 0;  // sum of ring counts
  uint64_t emitted_ = 0;
  bool record_execs_ = true;
  std::unique_ptr<std::ofstream> file_;
};

}  // namespace df::obs
