#include "obs/velocity.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace df::obs {

namespace {

// Milestone fractions of the campaign's final total coverage.
constexpr double kFractions[] = {0.25, 0.5, 0.75, 0.9, 1.0};

double rate(uint64_t cur, uint64_t prev, double dt) {
  return cur > prev ? static_cast<double>(cur - prev) / dt : 0.0;
}

void fold(double& ewma, double inst, double alpha, bool seeded) {
  ewma = seeded ? ewma + alpha * (inst - ewma) : inst;
}

void write_rates(JsonWriter& w, const VelocityRates& r) {
  w.key("timing").begin_object();
  w.field("execs_per_sec", r.execs_per_sec);
  w.field("features_per_sec", r.features_per_sec);
  w.field("kernel_features_per_sec", r.kernel_features_per_sec);
  w.field("states_per_sec", r.states_per_sec);
  w.field("crashes_per_sec", r.crashes_per_sec);
  w.end_object();
}

// One series point for milestone scanning: cumulative executions/coverage
// plus the wall timestamp.
struct MilestonePoint {
  uint64_t executions = 0;
  uint64_t total_coverage = 0;
  double secs = 0;
};

// The deterministic time-to-coverage ladder: for each fraction of the
// series' final coverage, the first point at or past that target. Content
// fields (fraction, target, executions) are determinism-comparable; the
// wall clock stays under "timing".
void write_milestones(JsonWriter& w,
                      const std::vector<MilestonePoint>& pts) {
  w.key("time_to_coverage").begin_array();
  if (!pts.empty() && pts.back().total_coverage > 0) {
    const auto final_cov = static_cast<double>(pts.back().total_coverage);
    for (double frac : kFractions) {
      const auto target = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::ceil(frac * final_cov)));
      const auto hit =
          std::find_if(pts.begin(), pts.end(), [&](const MilestonePoint& p) {
            return p.total_coverage >= target;
          });
      if (hit == pts.end()) continue;
      w.begin_object();
      w.field("fraction", frac);
      w.field("target_coverage", target);
      w.field("executions", hit->executions);
      w.key("timing").begin_object().field("secs", hit->secs).end_object();
      w.end_object();
    }
  }
  w.end_array();
}

std::vector<MilestonePoint> device_points(
    const std::vector<StatsReporter::Point>& series) {
  std::vector<MilestonePoint> out;
  out.reserve(series.size());
  for (const auto& p : series) {
    out.push_back({p.sample.executions, p.sample.total_coverage, p.secs});
  }
  return out;
}

}  // namespace

VelocityTracker::VelocityTracker(VelocityConfig cfg)
    : cfg_(cfg), start_(std::chrono::steady_clock::now()) {
  if (cfg_.half_life_secs <= 0) cfg_.half_life_secs = 1.0;
}

double VelocityTracker::now_secs() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void VelocityTracker::observe(const std::string& device,
                              const EngineSample& s) {
  observe_at(device, now_secs(), s);
}

void VelocityTracker::observe_at(const std::string& device, double secs,
                                 const EngineSample& s) {
  auto it = state_.find(device);
  if (it == state_.end()) {
    order_.push_back(device);
    it = state_.emplace(device, State()).first;
  }
  State& st = it->second;
  const double dt = secs - st.last_secs;
  if (st.seeded && dt <= 0) {
    st.last = s;
    return;
  }
  // First observation: rates seed from campaign-start deltas over `secs`.
  const double span = st.seeded ? dt : std::max(secs, 1e-9);
  const EngineSample prev = st.seeded ? st.last : EngineSample{};
  const double alpha =
      1.0 - std::exp2(-span / cfg_.half_life_secs);
  fold(st.rates.execs_per_sec, rate(s.executions, prev.executions, span),
       alpha, st.seeded);
  fold(st.rates.features_per_sec,
       rate(s.total_coverage, prev.total_coverage, span), alpha, st.seeded);
  fold(st.rates.kernel_features_per_sec,
       rate(s.kernel_coverage, prev.kernel_coverage, span), alpha, st.seeded);
  fold(st.rates.states_per_sec,
       rate(s.states_visited, prev.states_visited, span), alpha, st.seeded);
  fold(st.rates.crashes_per_sec, rate(s.unique_bugs, prev.unique_bugs, span),
       alpha, st.seeded);
  st.seeded = true;
  st.last = s;
  st.last_secs = secs;
}

VelocityRates VelocityTracker::rates(std::string_view device) const {
  const auto it = state_.find(device);
  return it == state_.end() ? VelocityRates{} : it->second.rates;
}

VelocityRates VelocityTracker::aggregate_rates() const {
  VelocityRates out;
  for (const auto& [device, st] : state_) {
    out.execs_per_sec += st.rates.execs_per_sec;
    out.features_per_sec += st.rates.features_per_sec;
    out.kernel_features_per_sec += st.rates.kernel_features_per_sec;
    out.states_per_sec += st.rates.states_per_sec;
    out.crashes_per_sec += st.rates.crashes_per_sec;
  }
  return out;
}

void VelocityTracker::write_json(JsonWriter& w,
                                 const StatsReporter* reporter) const {
  // Device universe: the reporter's (checkpoint-stable) order when
  // available, the tracker's first-observed order otherwise.
  const std::vector<std::string>& devs =
      reporter != nullptr && !reporter->devices().empty() ? reporter->devices()
                                                          : order_;
  w.begin_object();
  w.field("half_life_secs", cfg_.half_life_secs);
  w.key("devices").begin_array();
  for (const auto& dev : devs) {
    w.begin_object();
    w.field("device", dev);
    if (reporter != nullptr) {
      write_milestones(w, device_points(reporter->series(dev)));
    }
    write_rates(w, rates(dev));
    w.end_object();
  }
  w.end_array();
  w.key("aggregate").begin_object();
  if (reporter != nullptr && !devs.empty()) {
    // Index-wise fleet sums truncated to the shortest series, mirroring the
    // reporter's aggregate section; the timestamp of a fleet point is the
    // latest device timestamp at that index.
    size_t n = SIZE_MAX;
    for (const auto& dev : devs) n = std::min(n, reporter->series(dev).size());
    std::vector<MilestonePoint> pts(n == SIZE_MAX ? 0 : n);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (const auto& dev : devs) {
        const auto& p = reporter->series(dev)[i];
        pts[i].executions += p.sample.executions;
        pts[i].total_coverage += p.sample.total_coverage;
        pts[i].secs = std::max(pts[i].secs, p.secs);
      }
    }
    write_milestones(w, pts);
  }
  write_rates(w, aggregate_rates());
  w.end_object();
  w.end_object();
}

std::string VelocityTracker::to_json(const StatsReporter* reporter) const {
  JsonWriter w;
  write_json(w, reporter);
  return w.take();
}

}  // namespace df::obs
