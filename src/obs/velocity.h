// Coverage-velocity analytics (DESIGN.md §10): windowed rates of campaign
// progress — executions, new coverage features, new driver states, crashes
// per second — smoothed with an exponentially decaying moving average so a
// live operator (or a bench's time-to-coverage axis) sees "how fast right
// now", not a campaign-lifetime mean.
//
// The EWMA: each observation computes the instantaneous rate over the delta
// since the previous sample and folds it in with
//   alpha = 1 - 2^(-dt / half_life)
// so a rate change decays to half its weight after `half_life_secs` of wall
// time regardless of the sampling cadence. The first observation of a
// device seeds the rates with its instantaneous values.
//
// Determinism contract: every rate is wall-dependent, so write_json puts
// them all under "timing" keys. The deterministic part of the export — the
// time-to-coverage milestone ladder — is derived from the StatsReporter
// series (which checkpoint/resume restores verbatim), not from tracker
// history, so a resumed campaign exports the same milestone content as the
// uninterrupted run.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats_reporter.h"

namespace df::obs {

class JsonWriter;

struct VelocityConfig {
  double half_life_secs = 30.0;
};

struct VelocityRates {
  double execs_per_sec = 0;
  double features_per_sec = 0;         // total (kernel + HAL) coverage
  double kernel_features_per_sec = 0;  // the paper's coverage proxy
  double states_per_sec = 0;           // driver state-machine coverage
  double crashes_per_sec = 0;
};

class VelocityTracker {
 public:
  explicit VelocityTracker(VelocityConfig cfg = {});

  const VelocityConfig& config() const { return cfg_; }

  // Folds one observation in at the current steady-clock time. `sample`
  // carries cumulative counters; rates come from deltas between calls.
  void observe(const std::string& device, const EngineSample& s);
  // Same, at an explicit campaign-relative timestamp (testing and replay).
  // Out-of-order timestamps (dt <= 0) update the cumulative baselines but
  // leave the rates untouched.
  void observe_at(const std::string& device, double secs,
                  const EngineSample& s);

  // Devices in first-observed order.
  const std::vector<std::string>& devices() const { return order_; }
  // Current smoothed rates (zero-valued for unknown devices).
  VelocityRates rates(std::string_view device) const;
  // Fleet-wide rates: sum of the per-device EWMAs.
  VelocityRates aggregate_rates() const;

  // {"half_life_secs":..,"devices":[{"device":..,"time_to_coverage":[..],
  //  "timing":{rates}}],"aggregate":{..}}. With a reporter the export gains
  // the deterministic time-to-coverage ladder (executions to reach 25/50/
  // 75/90/100% of the series' final total coverage); rates always live
  // under "timing".
  void write_json(JsonWriter& w, const StatsReporter* reporter = nullptr) const;
  std::string to_json(const StatsReporter* reporter = nullptr) const;

 private:
  struct State {
    bool seeded = false;
    double last_secs = 0;
    EngineSample last;
    VelocityRates rates;
  };

  double now_secs() const;

  VelocityConfig cfg_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::string> order_;
  std::map<std::string, State, std::less<>> state_;
};

}  // namespace df::obs
