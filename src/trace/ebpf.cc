#include "trace/ebpf.h"

namespace df::trace {

uint64_t critical_arg_of(const kernel::SyscallReq& req) {
  using kernel::Sys;
  switch (req.nr) {
    case Sys::kIoctl:
      return req.arg;  // request code
    case Sys::kSetsockopt:
    case Sys::kGetsockopt:
      return (req.arg << 32) | (req.arg2 & 0xffffffffull);
    case Sys::kSocket:
      return (req.arg << 32) | (req.arg3 & 0xffffffffull);
    case Sys::kFcntl:
      return req.arg;  // cmd
    default:
      return 0;
  }
}

EbpfProbe::EbpfProbe(kernel::Kernel& kernel,
                     std::optional<kernel::TaskOrigin> origin_filter,
                     Handler handler)
    : kernel_(kernel) {
  tp_id_ = kernel_.attach_tracepoint(
      [this, origin_filter, handler = std::move(handler)](
          const kernel::Task& task, const kernel::SyscallReq& req,
          const kernel::SyscallRes& res) {
        if (origin_filter.has_value() && task.origin != *origin_filter) return;
        SyscallEvent ev;
        ev.origin = task.origin;
        ev.task_name = task.name;
        ev.nr = req.nr;
        ev.critical_arg = critical_arg_of(req);
        ev.ret = res.ret;
        ++delivered_;
        handler(ev);
      });
}

EbpfProbe::~EbpfProbe() { kernel_.detach_tracepoint(tp_id_); }

}  // namespace df::trace
