// eBPF-style syscall probing.
//
// The paper's probe utility and HAL executor insert eBPF programs into the
// kernel to observe (a) Binder traffic during interface probing and (b)
// syscalls originating from the HAL during fuzzing. This module is the
// simulated attach surface: an EbpfProbe is a kernel tracepoint with an
// origin filter, delivering structured syscall events to a host-side
// handler. Detach is automatic (RAII), as with real bpf links.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "kernel/kernel.h"

namespace df::trace {

struct SyscallEvent {
  kernel::TaskOrigin origin = kernel::TaskOrigin::kNative;
  std::string task_name;
  kernel::Sys nr = kernel::Sys::kOpenAt;
  // Critical position argument (e.g. `request` for ioctl, level/optname for
  // sockopts, family/proto for socket).
  uint64_t critical_arg = 0;
  int64_t ret = 0;
};

// Extracts the critical argument for a syscall the way the paper's lookup
// table does (ioctl -> request, setsockopt -> level<<32|opt, socket ->
// family<<32|proto, others -> 0).
uint64_t critical_arg_of(const kernel::SyscallReq& req);

class EbpfProbe {
 public:
  using Handler = std::function<void(const SyscallEvent&)>;

  // Attaches to the kernel's syscall tracepoint. If `origin_filter` is set,
  // only events from tasks with that origin are delivered.
  EbpfProbe(kernel::Kernel& kernel,
            std::optional<kernel::TaskOrigin> origin_filter, Handler handler);
  ~EbpfProbe();

  EbpfProbe(const EbpfProbe&) = delete;
  EbpfProbe& operator=(const EbpfProbe&) = delete;

  uint64_t events_delivered() const { return delivered_; }

 private:
  kernel::Kernel& kernel_;
  int tp_id_ = 0;
  uint64_t delivered_ = 0;
};

}  // namespace df::trace
