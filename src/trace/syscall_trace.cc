#include "trace/syscall_trace.h"

namespace df::trace {

uint32_t SpecTable::add(kernel::Sys nr, uint64_t critical_arg) {
  const auto key = std::make_pair(static_cast<uint32_t>(nr), critical_arg);
  auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  const uint32_t id = next_++;
  table_.emplace(key, id);
  return id;
}

uint32_t SpecTable::id_of(kernel::Sys nr, uint64_t critical_arg) const {
  const auto key = std::make_pair(static_cast<uint32_t>(nr), critical_arg);
  auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  // Try the plain form before overflowing.
  if (critical_arg != 0) {
    auto plain = table_.find({static_cast<uint32_t>(nr), 0});
    if (plain != table_.end()) return plain->second;
  }
  const uint64_t h = util::hash_combine(static_cast<uint32_t>(nr),
                                        util::mix64(critical_arg));
  return kOverflowBase + static_cast<uint32_t>(h & 0xfffff);
}

DirectionalTracer::DirectionalTracer(kernel::Kernel& kernel,
                                     const SpecTable& table)
    : table_(table),
      probe_(kernel, kernel::TaskOrigin::kHal, [this](const SyscallEvent& ev) {
        seq_.push_back(table_.id_of(ev.nr, ev.critical_arg));
      }) {}

void DirectionalTracer::begin_execution() { seq_.clear(); }

std::vector<uint64_t> DirectionalTracer::take_features() {
  std::vector<uint64_t> out;
  out.reserve(seq_.size());
  uint32_t prev = 0;
  for (uint32_t id : seq_) {
    // Chained pair hash: order-sensitive, as the paper's directional
    // coverage requires. Namespaced away from kcov driver features.
    const uint64_t h = util::hash_combine(prev, id);
    out.push_back(kernel::cov_feature(kHalCovDriverId, h & 0xffffffffffffull));
    prev = id;
  }
  seq_.clear();
  return out;
}

}  // namespace df::trace
