// Directional HAL syscall coverage (paper §IV-D).
//
// Kernel code coverage records *which* blocks ran but not their order; the
// HAL's behaviour is expressed in the *order and arguments* of the syscalls
// it issues. DroidFuzz therefore compiles a lookup table of specialized
// syscall IDs (ioctl split by request code, sockopts by level/optname, ...)
// and, per execution, records the ordered ID sequence of HAL-originated
// syscalls. The sequence is folded into the same 64-bit feature space as
// kcov edges (reserved pseudo-driver 0xffff), so downstream corpus logic is
// identical for both kinds of coverage — the paper's "analysis logic ...
// remains the same".
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "kernel/kcov.h"
#include "trace/ebpf.h"
#include "util/hash.h"

namespace df::trace {

// Pseudo driver-id namespace for HAL directional coverage features.
inline constexpr uint16_t kHalCovDriverId = 0xffff;

inline bool is_hal_feature(uint64_t feature) {
  return kernel::cov_driver(feature) == kHalCovDriverId;
}

// Specialized syscall ID table: (syscall nr, critical arg) -> dense ID.
// Entries are registered at initialization (from the fuzzer's call
// descriptions); unknown (nr, arg) pairs map deterministically into a
// hashed overflow bucket so novel requests still produce stable IDs.
class SpecTable {
 public:
  // Registers a specialization; returns its ID. Idempotent.
  uint32_t add(kernel::Sys nr, uint64_t critical_arg);
  // Registers the "plain" form of a syscall (critical arg ignored).
  uint32_t add_plain(kernel::Sys nr) { return add(nr, 0); }

  // Lookup with overflow hashing for unknown pairs.
  uint32_t id_of(kernel::Sys nr, uint64_t critical_arg) const;

  size_t size() const { return table_.size(); }

 private:
  static constexpr uint32_t kOverflowBase = 1u << 20;
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> table_;
  uint32_t next_ = 1;
};

// Records the directional syscall-ID sequence of one execution and renders
// it as coverage features (chained ID pairs, order-sensitive).
class DirectionalTracer {
 public:
  DirectionalTracer(kernel::Kernel& kernel, const SpecTable& table);

  // Clears the per-execution sequence.
  void begin_execution();
  // The raw ordered ID sequence observed since begin_execution().
  const std::vector<uint32_t>& sequence() const { return seq_; }
  // Folds the sequence into kcov-compatible features and clears it.
  std::vector<uint64_t> take_features();

  uint64_t total_events() const { return probe_.events_delivered(); }

 private:
  const SpecTable& table_;
  std::vector<uint32_t> seq_;
  EbpfProbe probe_;  // must outlive nothing: keep last for init order
};

}  // namespace df::trace
