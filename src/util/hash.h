// Small non-cryptographic hashing helpers shared across the codebase.
// Feedback features (kcov edges and HAL directional coverage) live in one
// uniform 64-bit feature space produced by these mixers.
#pragma once

#include <cstdint>
#include <string_view>

namespace df::util {

// 64-bit FNV-1a over a byte string.
constexpr uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Strong 64-bit integer mixer (splitmix64 finalizer).
constexpr uint64_t mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-dependent combiner: combine(a, b) != combine(b, a).
constexpr uint64_t hash_combine(uint64_t seed, uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

}  // namespace df::util
