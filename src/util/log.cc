#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace df::util {

namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;  // empty => default stderr sink
// Atomic: fleet worker threads log concurrently (the sink itself is stderr,
// which the C library serializes per call). Level/sink/override state is
// configured before workers start and only read during the run.
std::atomic<uint64_t> g_emitted[4] = {};
std::vector<std::pair<std::string, LogLevel>> g_overrides;

bool parse_level(std::string_view s, LogLevel& out) {
  if (s == "debug") {
    out = LogLevel::kDebug;
  } else if (s == "info") {
    out = LogLevel::kInfo;
  } else if (s == "warn") {
    out = LogLevel::kWarn;
  } else if (s == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

bool configure_log(std::string_view spec) {
  LogLevel global = g_level;
  std::vector<std::pair<std::string, LogLevel>> overrides;
  bool any = false;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view tok = spec.substr(begin, end - begin);
    if (!tok.empty()) {
      const size_t eq = tok.find('=');
      if (eq == std::string_view::npos) {
        if (!parse_level(tok, global)) return false;
      } else {
        const std::string_view name = tok.substr(0, eq);
        LogLevel lv = LogLevel::kWarn;
        if (name.empty() || !parse_level(tok.substr(eq + 1), lv)) return false;
        overrides.emplace_back(std::string(name), lv);
      }
      any = true;
    }
    if (end == spec.size()) break;
    begin = end + 1;
  }
  if (!any) return false;
  g_level = global;
  g_overrides = std::move(overrides);
  return true;
}

void clear_log_overrides() { g_overrides.clear(); }

LogLevel component_level(std::string_view component) {
  for (const auto& [name, lv] : g_overrides) {
    if (name == component) return lv;
  }
  return g_level;
}

void init_log_from_env() {
  const char* spec = std::getenv("DF_LOG");
  if (spec != nullptr && *spec != '\0') configure_log(spec);
}

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

LogCounters log_counters() {
  LogCounters c;
  for (size_t i = 0; i < 4; ++i) {
    c.emitted[i] = g_emitted[i].load(std::memory_order_relaxed);
  }
  return c;
}

void reset_log_counters() {
  for (auto& e : g_emitted) e.store(0, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  g_emitted[static_cast<size_t>(level)].fetch_add(1,
                                                  std::memory_order_relaxed);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[df:%s] %s\n", level_name(level), msg.c_str());
}

void log_message_for(std::string_view component, LogLevel level,
                     const std::string& msg) {
  if (level < component_level(component)) return;
  g_emitted[static_cast<size_t>(level)].fetch_add(1,
                                                  std::memory_order_relaxed);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[df:%s] %.*s: %s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               msg.c_str());
}

}  // namespace df::util
