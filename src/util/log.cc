#include "util/log.h"

#include <cstdio>

namespace df::util {

namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;  // empty => default stderr sink
LogCounters g_counters;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

const LogCounters& log_counters() { return g_counters; }
void reset_log_counters() { g_counters = LogCounters(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  ++g_counters.emitted[static_cast<size_t>(level)];
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[df:%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace df::util
