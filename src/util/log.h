// Minimal leveled logger. Components log through a process-global sink so
// examples and benches can silence the simulator while tests can capture it.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace df::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped before formatting
// reaches the sink (they are still formatted — keep hot paths log-free).
void set_log_level(LogLevel level);
LogLevel log_level();

// Replace the sink (default writes to stderr). Passing nullptr restores
// the default sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace df::util

#define DF_LOG(level) ::df::util::detail::LogLine(::df::util::LogLevel::level)
