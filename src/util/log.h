// Minimal leveled logger. Components log through a process-global sink so
// examples and benches can silence the simulator while tests can capture it.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace df::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; DF_LOG statements below it are dropped before any
// formatting happens (the ostringstream is never constructed), so disabled
// log statements cost one level comparison.
void set_log_level(LogLevel level);
LogLevel log_level();

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

// Replace the sink (default writes to stderr). Passing nullptr restores
// the default sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

// Per-level count of messages that passed the level filter, so log volume
// is itself observable (mirrored into the obs registry by
// obs::capture_log_metrics).
struct LogCounters {
  uint64_t emitted[4] = {0, 0, 0, 0};  // indexed by LogLevel
  uint64_t total() const {
    return emitted[0] + emitted[1] + emitted[2] + emitted[3];
  }
};
const LogCounters& log_counters();
void reset_log_counters();

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace df::util

// Short-circuits on the level check before constructing the LogLine (and
// its ostringstream). The `if/else` form keeps the trailing `<< ...;` as a
// single statement and stays dangling-else-safe in unbraced contexts.
#define DF_LOG(level)                                                    \
  if (!::df::util::log_enabled(::df::util::LogLevel::level)) {           \
  } else                                                                 \
    ::df::util::detail::LogLine(::df::util::LogLevel::level)
