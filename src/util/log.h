// Minimal leveled logger. Components log through a process-global sink so
// examples and benches can silence the simulator while tests can capture it.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace df::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; DF_LOG statements below it are dropped before any
// formatting happens (the ostringstream is never constructed), so disabled
// log statements cost one level comparison.
void set_log_level(LogLevel level);
LogLevel log_level();

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

// --- per-component level overrides ----------------------------------------
// Spec grammar: "<level>[,<component>=<level>]...", e.g. "info,engine=debug"
// (the DF_LOG environment variable format). A bare level token sets the
// global minimum; name=level pairs override it for DF_CLOG statements tagged
// with that component. Returns false — applying nothing — when any token
// fails to parse. Overrides are replaced wholesale on every successful call.
bool configure_log(std::string_view spec);
void clear_log_overrides();
// Effective minimum level for `component`: its override, else the global.
LogLevel component_level(std::string_view component);
inline bool log_enabled_for(std::string_view component, LogLevel level) {
  return level >= component_level(component);
}
// Applies the DF_LOG environment variable (no-op when unset or malformed).
void init_log_from_env();

// Replace the sink (default writes to stderr). Passing nullptr restores
// the default sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);
// Component-aware emission: filters against component_level(component)
// instead of the global minimum, so overrides can both raise and lower the
// threshold for one component.
void log_message_for(std::string_view component, LogLevel level,
                     const std::string& msg);

// Per-level count of messages that passed the level filter, so log volume
// is itself observable (mirrored into the obs registry by
// obs::capture_log_metrics). Returned by value: the live counters are
// atomics (fleet workers log concurrently), and this is a coherent-enough
// copy of them.
struct LogCounters {
  uint64_t emitted[4] = {0, 0, 0, 0};  // indexed by LogLevel
  uint64_t total() const {
    return emitted[0] + emitted[1] + emitted[2] + emitted[3];
  }
};
LogCounters log_counters();
void reset_log_counters();

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() {
    if (component_.empty()) {
      log_message(level_, out_.str());
    } else {
      log_message_for(component_, level_, out_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace df::util

// Short-circuits on the level check before constructing the LogLine (and
// its ostringstream). The `if/else` form keeps the trailing `<< ...;` as a
// single statement and stays dangling-else-safe in unbraced contexts.
#define DF_LOG(level)                                                    \
  if (!::df::util::log_enabled(::df::util::LogLevel::level)) {           \
  } else                                                                 \
    ::df::util::detail::LogLine(::df::util::LogLevel::level)

// Component-tagged variant filtered through the DF_LOG override table:
// DF_CLOG("engine", kDebug) << ... emits when "engine=debug" (or a global
// debug level) is configured, regardless of the global minimum.
#define DF_CLOG(component, level)                                        \
  if (!::df::util::log_enabled_for(component,                            \
                                   ::df::util::LogLevel::level)) {       \
  } else                                                                 \
    ::df::util::detail::LogLine(::df::util::LogLevel::level, component)
