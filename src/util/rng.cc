#include "util/rng.h"

#include <numeric>

namespace df::util {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur from splitmix64, but be explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to kill modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::range(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? next() : below(span));
}

bool Rng::chance(uint64_t num, uint64_t den) { return below(den) < num; }

bool Rng::prob(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

size_t Rng::weighted(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = 0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0) return below(weights.size());
  double pick = uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::permutation(size_t n) {
  std::vector<size_t> p(n);
  std::iota(p.begin(), p.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[below(i)]);
  }
  return p;
}

Rng Rng::fork() { return Rng(next() ^ 0xa0761d6478bd642full); }

RngState Rng::state() const {
  RngState st;
  for (size_t i = 0; i < 4; ++i) st.s[i] = s_[i];
  return st;
}

void Rng::set_state(const RngState& st) {
  for (size_t i = 0; i < 4; ++i) s_[i] = st.s[i];
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

}  // namespace df::util
