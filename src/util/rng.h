// Deterministic random number generation for DroidFuzz.
//
// Every stochastic component (generators, mutators, schedulers, simulated
// devices) draws from an explicitly seeded Rng so that entire fuzzing
// campaigns replay bit-for-bit from a single 64-bit seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace df::util {

// Raw xoshiro256** state, exposed so campaign checkpoints can persist and
// restore a stream mid-sequence (core/fuzz/checkpoint.h).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
};

// xoshiro256** seeded via splitmix64. Small, fast, and good enough
// statistical quality for fuzzing workloads; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  uint64_t next();

  // Uniform integer in [0, bound). bound == 0 returns 0.
  uint64_t below(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t range(int64_t lo, int64_t hi);

  // True with probability num/den. Requires den > 0.
  bool chance(uint64_t num, uint64_t den);

  // True with probability p (clamped to [0,1]).
  bool prob(double p);

  // Uniform double in [0, 1).
  double uniform();

  // Index into a discrete distribution proportional to `weights`.
  // All-zero or empty weights fall back to uniform choice (or 0 if empty).
  size_t weighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<size_t> permutation(size_t n);

  // Derive an independent child stream (e.g. one per device/engine).
  Rng fork();

  // Checkpoint support: capture / restore the generator state verbatim.
  // A restored Rng continues the original stream exactly.
  RngState state() const;
  void set_state(const RngState& st);

 private:
  uint64_t s_[4];
};

}  // namespace df::util
