#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace df::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

namespace {

// Standard normal survival function via erfc.
double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

MannWhitneyResult mann_whitney_u(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  MannWhitneyResult r;
  const size_t n1 = a.size(), n2 = b.size();
  if (n1 == 0 || n2 == 0) return r;

  // Pool, rank with midranks for ties.
  struct Obs {
    double v;
    int group;  // 0 = a, 1 = b
  };
  std::vector<Obs> pool;
  pool.reserve(n1 + n2);
  for (double v : a) pool.push_back({v, 0});
  for (double v : b) pool.push_back({v, 1});
  std::sort(pool.begin(), pool.end(),
            [](const Obs& x, const Obs& y) { return x.v < y.v; });

  double rank_sum_a = 0;
  double tie_term = 0;  // sum over tie groups of t^3 - t
  size_t i = 0;
  while (i < pool.size()) {
    size_t j = i;
    while (j < pool.size() && pool[j].v == pool[i].v) ++j;
    const double t = static_cast<double>(j - i);
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // avg rank
    for (size_t k = i; k < j; ++k) {
      if (pool[k].group == 0) rank_sum_a += midrank;
    }
    tie_term += t * t * t - t;
    i = j;
  }

  const double dn1 = static_cast<double>(n1), dn2 = static_cast<double>(n2);
  const double u1 = rank_sum_a - dn1 * (dn1 + 1) / 2.0;
  r.u = u1;

  const double n = dn1 + dn2;
  const double mu = dn1 * dn2 / 2.0;
  const double var =
      dn1 * dn2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)));
  if (var <= 0) return r;  // all tied

  // Continuity correction.
  const double diff = u1 - mu;
  const double cc = diff > 0 ? -0.5 : (diff < 0 ? 0.5 : 0.0);
  r.z = (diff + cc) / std::sqrt(var);
  r.p_two_sided = 2.0 * normal_sf(std::fabs(r.z));
  if (r.p_two_sided > 1.0) r.p_two_sided = 1.0;
  r.significant_at_05 = r.p_two_sided < 0.05;
  return r;
}

}  // namespace df::util
