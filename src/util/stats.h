// Statistics helpers used by the evaluation harness: summary statistics and
// the Mann-Whitney U test the paper applies to assess significance (§V-A).
#pragma once

#include <cstddef>
#include <vector>

namespace df::util {

double mean(const std::vector<double>& xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double stddev(const std::vector<double>& xs);

struct MannWhitneyResult {
  double u = 0;        // U statistic for sample a
  double z = 0;        // normal approximation z-score (tie-corrected)
  double p_two_sided = 1.0;
  bool significant_at_05 = false;
};

// Two-sided Mann-Whitney U test with normal approximation and tie
// correction. Suitable for the paper's 10-repetition comparisons.
// Degenerate inputs (either sample empty, or all values tied) return
// p = 1.0 / not significant.
MannWhitneyResult mann_whitney_u(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace df::util
