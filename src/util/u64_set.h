// Open-addressing hash set specialized for 64-bit keys — the feedback hot
// path's replacement for std::unordered_set<uint64_t>.
//
// Why not unordered_set: per-node allocation, pointer chasing on every
// probe, and a clear() that frees the nodes (so a per-execution set pays
// the allocator again next execution). U64Set keeps one flat power-of-two
// slot array, probes linearly (cache-friendly), and clear() memsets the
// array in place so capacity — and the allocation — survives resets. See
// BM_KcovRecord / BM_FeatureSetAddNew in bench_micro.cc for the measured
// win.
//
// Key 0 is stored out-of-band (slot value 0 is the empty sentinel), so the
// full 64-bit key space is supported.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace df::util {

class U64Set {
 public:
  U64Set() = default;
  explicit U64Set(size_t capacity_hint) { reserve(capacity_hint); }

  // Returns true when the key was newly inserted.
  bool insert(uint64_t key) {
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      if (fresh) ++size_;
      return fresh;
    }
    // Grow at 3/4 occupancy of non-zero slots so probe chains stay short.
    const size_t stored = size_ - (has_zero_ ? 1 : 0);
    if (slots_.empty() || (stored + 1) * 4 > slots_.size() * 3) grow();
    size_t i = mix(key) & mask_;
    while (true) {
      const uint64_t s = slots_[i];
      if (s == key) return false;
      if (s == 0) {
        slots_[i] = key;
        ++size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  bool contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    size_t i = mix(key) & mask_;
    while (true) {
      const uint64_t s = slots_[i];
      if (s == key) return true;
      if (s == 0) return false;
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Allocated slot count (0 before the first insert/reserve).
  size_t capacity() const { return slots_.size(); }

  // Removes every key but keeps the slot array allocated — the per-
  // execution reset path must not touch the allocator.
  void clear() {
    std::fill(slots_.begin(), slots_.end(), uint64_t{0});
    size_ = 0;
    has_zero_ = false;
  }

  // The stored keys in ascending order. Checkpoint-path only: allocates and
  // sorts, so never call from a per-execution loop.
  std::vector<uint64_t> values() const {
    std::vector<uint64_t> out;
    out.reserve(size_);
    if (has_zero_) out.push_back(0);
    for (const uint64_t s : slots_) {
      if (s != 0) out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Ensures at least `n` keys fit without growing.
  void reserve(size_t n) {
    size_t cap = 16;
    while (cap * 3 < n * 4) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

 private:
  // splitmix64 finalizer: full-avalanche mix so clustered keys (coverage
  // features share their driver-id high bits) spread across the table.
  static uint64_t mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void rehash(size_t cap) {
    std::vector<uint64_t> old;
    old.swap(slots_);
    slots_.assign(cap, 0);
    mask_ = cap - 1;
    for (const uint64_t key : old) {
      if (key == 0) continue;
      size_t i = mix(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<uint64_t> slots_;  // power-of-two sized; 0 = empty
  size_t mask_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
};

}  // namespace df::util
