// Unit tests for the forward dataflow engine: def-use chains, the
// handle-lifetime lattice, scalar-argument facts, and the declared-guard
// index that drives dataflow-targeted mutation.
#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include "core/descriptions.h"
#include "device/catalog.h"

namespace df::analysis {
namespace {

class DataflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dsl::CallDesc open;
    open.name = "open";
    open.produces = "fd";
    open_ = table_.add(std::move(open));

    dsl::CallDesc close;
    close.name = "close";
    close.destroys = "fd";
    close.params = {handle("fd")};
    close_ = table_.add(std::move(close));

    dsl::CallDesc use;
    use.name = "use";
    use.params = {handle("fd"), scalar(dsl::ArgKind::kU8, 0, 200)};
    use_ = table_.add(std::move(use));

    dsl::CallDesc dup;
    dup.name = "dup";
    dup.produces = "fd";
    dup.params = {handle("fd")};
    dup_ = table_.add(std::move(dup));

    dsl::CallDesc fixed;
    fixed.name = "fixed";
    fixed.params = {scalar(dsl::ArgKind::kU32, 7, 7)};
    dsl::ParamDesc one_choice;
    one_choice.kind = dsl::ArgKind::kEnum;
    one_choice.name = "only";
    one_choice.choices = {3};
    fixed.params.push_back(one_choice);
    fixed_ = table_.add(std::move(fixed));
  }

  static dsl::ParamDesc handle(std::string type) {
    dsl::ParamDesc p;
    p.kind = dsl::ArgKind::kHandle;
    p.name = "fd";
    p.handle_type = std::move(type);
    return p;
  }

  static dsl::ParamDesc scalar(dsl::ArgKind kind, uint64_t min,
                               uint64_t max) {
    dsl::ParamDesc p;
    p.kind = kind;
    p.name = "val";
    p.min = min;
    p.max = max;
    return p;
  }

  static dsl::Call call(const dsl::CallDesc* d,
                        std::vector<dsl::Value> args = {}) {
    dsl::Call c;
    c.desc = d;
    c.args = std::move(args);
    return c;
  }

  static dsl::Value ref(int32_t idx) {
    dsl::Value v;
    v.ref = idx;
    return v;
  }

  static dsl::Value num(uint64_t s) {
    dsl::Value v;
    v.scalar = s;
    return v;
  }

  dsl::CallTable table_;
  const dsl::CallDesc* open_ = nullptr;
  const dsl::CallDesc* close_ = nullptr;
  const dsl::CallDesc* use_ = nullptr;
  const dsl::CallDesc* dup_ = nullptr;
  const dsl::CallDesc* fixed_ = nullptr;
};

TEST_F(DataflowTest, DefUseChainEndsClosed) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  p.calls.push_back(call(close_, {ref(0)}));
  const ProgramDataflow flow(p);
  const DefInfo* def = flow.def(0);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->type, "fd");
  EXPECT_EQ(def->uses, (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(def->stale_uses.empty());
  EXPECT_EQ(def->destroyed_at, 2u);
  EXPECT_EQ(def->end_state, Lifetime::kClosed);
  EXPECT_EQ(flow.stale_use_count(), 0u);
}

TEST_F(DataflowTest, LiveAndLeakedLifetimes) {
  dsl::Program p;
  p.calls.push_back(call(open_));  // consumed below: live
  p.calls.push_back(call(open_));  // never consumed: leaked
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  const ProgramDataflow flow(p);
  EXPECT_EQ(flow.def(0)->end_state, Lifetime::kLive);
  EXPECT_EQ(flow.def(1)->end_state, Lifetime::kLeaked);
  EXPECT_EQ(flow.def(2), nullptr);  // use produces nothing
}

TEST_F(DataflowTest, StaleUseRecordsCloseSite) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  const ProgramDataflow flow(p);
  const UseFact& u = flow.use(2, 0);
  EXPECT_TRUE(u.is_handle);
  EXPECT_TRUE(u.structural_ok);
  EXPECT_TRUE(u.after_close);
  EXPECT_EQ(u.def, 0u);
  EXPECT_EQ(u.close_site, 1u);
  EXPECT_FALSE(u.second_destroy);
  EXPECT_EQ(flow.stale_use_count(), 1u);
  EXPECT_EQ(flow.def(0)->stale_uses, (std::vector<size_t>{2}));
  // A stale-but-consumed handle still ended the program closed.
  EXPECT_EQ(flow.def(0)->end_state, Lifetime::kClosed);
}

TEST_F(DataflowTest, DoubleDestroyIsASecondDestroy) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(close_, {ref(0)}));
  const ProgramDataflow flow(p);
  EXPECT_TRUE(flow.use(2, 0).after_close);
  EXPECT_TRUE(flow.use(2, 0).second_destroy);
  // First destroy wins: the recorded close site stays the first close.
  EXPECT_EQ(flow.def(0)->destroyed_at, 1u);
}

TEST_F(DataflowTest, UnresolvedAndRottenRefs) {
  dsl::Program p;
  p.calls.push_back(call(use_, {ref(dsl::Value::kNoRef), num(7)}));
  p.calls.push_back(call(use_, {ref(0), num(7)}));  // r0 produces nothing
  const ProgramDataflow flow(p);
  EXPECT_TRUE(flow.use(0, 0).unresolved);
  EXPECT_FALSE(flow.use(0, 0).structural_ok);
  EXPECT_FALSE(flow.use(1, 0).unresolved);
  EXPECT_FALSE(flow.use(1, 0).structural_ok);
  // Non-handle args and out-of-range lookups are zero-valued facts.
  EXPECT_FALSE(flow.use(0, 1).is_handle);
  EXPECT_FALSE(flow.use(9, 9).is_handle);
}

TEST_F(DataflowTest, ScalarFacts) {
  EXPECT_EQ(ProgramDataflow::scalar_fact(*use_, 0),
            ScalarFact::kResultDerived);
  EXPECT_EQ(ProgramDataflow::scalar_fact(*use_, 1), ScalarFact::kFree);
  EXPECT_EQ(ProgramDataflow::scalar_fact(*fixed_, 0),
            ScalarFact::kConstant);  // min == max
  EXPECT_EQ(ProgramDataflow::scalar_fact(*fixed_, 1),
            ScalarFact::kConstant);  // single enum choice
}

TEST_F(DataflowTest, DestroyedArgHelper) {
  EXPECT_EQ(destroyed_arg(*close_), 0u);
  EXPECT_EQ(destroyed_arg(*use_), kNoIndex);
  EXPECT_EQ(destroyed_arg(*open_), kNoIndex);
}

TEST_F(DataflowTest, GuardIndexFromDeviceDrivers) {
  auto dev = device::make_device("A1", 1);
  ASSERT_NE(dev, nullptr);
  GuardIndex guards;
  for (const auto& d : dev->kernel().drivers()) guards.add_driver(*d);
  ASSERT_FALSE(guards.empty());
  // rt1711 declares {0 -> 1 via ioctl$RT1711_ATTACH(mode=1)}.
  EXPECT_TRUE(guards.guard_relevant("ioctl$RT1711_ATTACH", "mode"));
  const auto& hints = guards.hint_values("ioctl$RT1711_ATTACH", "mode");
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(std::find(hints.begin(), hints.end(), 1u), hints.end());
  EXPECT_FALSE(guards.guard_relevant("ioctl$RT1711_ATTACH", "no_such"));
  EXPECT_TRUE(guards.hint_values("nope", "mode").empty());
}

TEST_F(DataflowTest, ClassifyArgAgainstRealDescriptions) {
  auto dev = device::make_device("A1", 1);
  ASSERT_NE(dev, nullptr);
  GuardIndex guards;
  for (const auto& d : dev->kernel().drivers()) guards.add_driver(*d);
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);
  const dsl::CallDesc* attach = table.find("ioctl$RT1711_ATTACH");
  ASSERT_NE(attach, nullptr);
  // arg0 is the fd handle (shape), arg1 the guarded "mode" enum.
  EXPECT_EQ(guards.classify_arg(*attach, 0), ArgClass::kShapeRelevant);
  EXPECT_EQ(guards.classify_arg(*attach, 1), ArgClass::kGuardRelevant);
  EXPECT_EQ(guards.classify_arg(*attach, 99), ArgClass::kDead);
}

TEST_F(DataflowTest, ClassifyArgWithoutGuardsFallsBackToShape) {
  const GuardIndex empty;
  EXPECT_EQ(empty.classify_arg(*use_, 0), ArgClass::kShapeRelevant);
  EXPECT_EQ(empty.classify_arg(*use_, 1), ArgClass::kDead);
  EXPECT_EQ(empty.classify_arg(*fixed_, 0), ArgClass::kDead);
}

}  // namespace
}  // namespace df::analysis
