// Tests for canonicalization, static subsumption (checked against a
// brute-force multiset oracle), Corpus::distill in both static-only and
// replay-oracle modes, and the Engine's scratch-replay distillation
// including the bit-identical-coverage-on-replay contract.
#include "analysis/distill.h"

#include <gtest/gtest.h>

#include <map>

#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "util/hash.h"
#include "util/rng.h"

namespace df::analysis {
namespace {

class DistillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dsl::CallDesc open;
    open.name = "open";
    open.produces = "fd";
    open_ = table_.add(std::move(open));

    dsl::CallDesc close;
    close.name = "close";
    close.destroys = "fd";
    close.params = {handle()};
    close_ = table_.add(std::move(close));

    dsl::CallDesc use;
    use.name = "use";
    use.params = {handle()};
    use_ = table_.add(std::move(use));

    dsl::CallDesc dup;
    dup.name = "dup";
    dup.produces = "fd";
    dup.params = {handle()};
    dup_ = table_.add(std::move(dup));
  }

  static dsl::ParamDesc handle() {
    dsl::ParamDesc p;
    p.kind = dsl::ArgKind::kHandle;
    p.name = "fd";
    p.handle_type = "fd";
    return p;
  }

  static dsl::Call call(const dsl::CallDesc* d,
                        std::vector<dsl::Value> args = {}) {
    dsl::Call c;
    c.desc = d;
    c.args = std::move(args);
    return c;
  }

  static dsl::Value ref(int32_t idx) {
    dsl::Value v;
    v.ref = idx;
    return v;
  }

  // open; use(r0); close(r0) — nothing dead.
  dsl::Program clean() const {
    dsl::Program p;
    p.calls.push_back(call(open_));
    p.calls.push_back(call(use_, {ref(0)}));
    p.calls.push_back(call(close_, {ref(0)}));
    return p;
  }

  dsl::CallTable table_;
  const dsl::CallDesc* open_ = nullptr;
  const dsl::CallDesc* close_ = nullptr;
  const dsl::CallDesc* use_ = nullptr;
  const dsl::CallDesc* dup_ = nullptr;
};

TEST_F(DistillTest, CanonicalizeIsIdentityOnCleanPrograms) {
  dsl::Program p = clean();
  const uint64_t before = dsl::program_hash(p);
  EXPECT_EQ(canonicalize(p), 0u);
  EXPECT_EQ(dsl::program_hash(p), before);
}

TEST_F(DistillTest, CanonicalizeDropsDeadProducerAndRemapsRefs) {
  dsl::Program p;
  p.calls.push_back(call(open_));            // dead: never referenced
  p.calls.push_back(call(open_));            // live: used below
  p.calls.push_back(call(use_, {ref(1)}));
  p.calls.push_back(call(close_, {ref(1)}));
  EXPECT_EQ(canonicalize(p), 1u);
  ASSERT_EQ(p.calls.size(), 3u);
  // The surviving refs now point at the shifted producer.
  EXPECT_EQ(p.calls[1].args[0].ref, 0);
  EXPECT_EQ(p.calls[2].args[0].ref, 0);
  EXPECT_EQ(dsl::program_hash(p), dsl::program_hash(clean()));
}

TEST_F(DistillTest, CanonicalizeRunsToFixpoint) {
  // dup(r0) is dead, and dropping it orphans the open it consumed.
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(dup_, {ref(0)}));
  EXPECT_EQ(canonicalize(p), 2u);
  EXPECT_TRUE(p.calls.empty());
}

TEST_F(DistillTest, CanonicalizeKeepsEffectfulCalls) {
  // Calls that produce nothing (use) or destroy something (close) are never
  // dead, even when structurally dangling.
  dsl::Program p;
  p.calls.push_back(call(use_, {ref(dsl::Value::kNoRef)}));
  p.calls.push_back(call(close_, {ref(dsl::Value::kNoRef)}));
  EXPECT_EQ(canonicalize(p), 0u);
  EXPECT_EQ(p.calls.size(), 2u);
}

TEST_F(DistillTest, StaticFootprintIgnoresDeadCalls) {
  dsl::Program padded;
  padded.calls.push_back(call(open_));  // dead
  padded.calls.push_back(call(open_));
  padded.calls.push_back(call(use_, {ref(1)}));
  padded.calls.push_back(call(close_, {ref(1)}));
  EXPECT_EQ(static_footprint(padded), static_footprint(clean()));
}

TEST_F(DistillTest, SubsumesRespectsCallOrder) {
  dsl::Program ab, ba;
  ab.calls.push_back(call(use_, {ref(dsl::Value::kNoRef)}));
  ab.calls.push_back(call(close_, {ref(dsl::Value::kNoRef)}));
  ba.calls.push_back(call(close_, {ref(dsl::Value::kNoRef)}));
  ba.calls.push_back(call(use_, {ref(dsl::Value::kNoRef)}));
  const auto fa = static_footprint(ab);
  const auto fb = static_footprint(ba);
  // Same call multiset, different adjacency tokens: no subsumption either
  // way, but both subsume their shared single-call prefix and themselves.
  EXPECT_FALSE(subsumes(fa, fb));
  EXPECT_FALSE(subsumes(fb, fa));
  EXPECT_TRUE(subsumes(fa, fa));
  dsl::Program just_use;
  just_use.calls.push_back(call(use_, {ref(dsl::Value::kNoRef)}));
  EXPECT_TRUE(subsumes(static_footprint(just_use), fa));
  EXPECT_TRUE(subsumes(static_footprint(dsl::Program{}), fb));
}

// Brute-force multiset-inclusion oracle.
bool oracle_subsumes(const std::vector<uint64_t>& small,
                     const std::vector<uint64_t>& big) {
  std::map<uint64_t, int> counts;
  for (const uint64_t t : big) ++counts[t];
  for (const uint64_t t : small) {
    if (--counts[t] < 0) return false;
  }
  return true;
}

TEST_F(DistillTest, SubsumesMatchesBruteForceOracleOnRandomPrograms) {
  const dsl::CallDesc* descs[] = {open_, close_, use_, dup_};
  util::Rng rng(42);
  const auto random_program = [&] {
    dsl::Program p;
    const size_t len = rng.below(6);
    for (size_t i = 0; i < len; ++i) {
      const dsl::CallDesc* d = descs[rng.below(4)];
      std::vector<dsl::Value> args;
      for (size_t a = 0; a < d->params.size(); ++a) {
        // Reference the previous call half the time (usually rotten — fine,
        // footprints only read names), else leave unresolved.
        args.push_back(ref(i > 0 && rng.prob(0.5)
                               ? static_cast<int32_t>(i - 1)
                               : dsl::Value::kNoRef));
      }
      p.calls.push_back(call(d, std::move(args)));
    }
    return p;
  };
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_footprint(random_program());
    const auto b = static_footprint(random_program());
    EXPECT_EQ(subsumes(a, b), oracle_subsumes(a, b));
    EXPECT_EQ(subsumes(b, a), oracle_subsumes(b, a));
    EXPECT_TRUE(subsumes(a, a));
  }
}

core::Seed make_seed(dsl::Program p) {
  core::Seed s;
  s.prog = std::move(p);
  return s;
}

TEST_F(DistillTest, StaticOnlyDistillDropsSubsumedSeeds) {
  core::Corpus corpus;
  dsl::Program padded = clean();
  padded.calls.insert(padded.calls.begin(), call(open_));
  for (auto& c : padded.calls) {  // fix refs after the prepend
    for (auto& v : c.args) {
      if (v.ref >= 0) v.ref += 1;
    }
  }
  ASSERT_TRUE(corpus.add(make_seed(clean())));
  ASSERT_TRUE(corpus.add(make_seed(std::move(padded))));
  const core::DistillStats stats =
      corpus.distill(core::Corpus::FootprintFn{});
  EXPECT_EQ(stats.before, 2u);
  EXPECT_EQ(stats.after, 1u);
  EXPECT_EQ(stats.dropped_static, 1u);
  EXPECT_EQ(stats.dropped_covered, 0u);
  EXPECT_EQ(stats.footprint_union, 0u);  // static-only: no replay oracle
  EXPECT_FALSE(stats.verified);
  EXPECT_FALSE(stats.dry_run);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.at(0).hash, dsl::program_hash(clean()));
}

TEST_F(DistillTest, OracleDistillDropsCoveredSeedsAndVerifies) {
  // Fake replay oracle: one token per call name. Order-insensitive, so the
  // reordered program is dynamically redundant even though its adjacency
  // tokens keep it out of static subsumption's reach.
  const core::Corpus::FootprintFn by_name =
      [](const dsl::Program& p) {
        std::vector<uint64_t> fp;
        for (const auto& c : p.calls) {
          if (c.desc != nullptr) fp.push_back(util::fnv1a(c.desc->name));
        }
        return fp;
      };
  // `full` = open;use;close. `reordered` = close;use — its close→use
  // adjacency hash is not among full's pairs (open→use, use→close), and
  // neither call is a dead producer, so canonicalization keeps both and
  // static subsumption cannot claim it; only the replay oracle can.
  // `just_open` canonicalizes to the empty program (its open is dead), so
  // static subsumption drops it.
  dsl::Program full, reordered, just_open;
  full.calls.push_back(call(open_));
  full.calls.push_back(call(use_, {ref(0)}));
  full.calls.push_back(call(close_, {ref(0)}));
  reordered.calls.push_back(call(close_, {ref(dsl::Value::kNoRef)}));
  reordered.calls.push_back(call(use_, {ref(dsl::Value::kNoRef)}));
  just_open.calls.push_back(call(open_));

  core::Corpus corpus;
  ASSERT_TRUE(corpus.add(make_seed(full)));
  ASSERT_TRUE(corpus.add(make_seed(reordered)));
  ASSERT_TRUE(corpus.add(make_seed(just_open)));

  // Dry run first: stats computed, corpus untouched.
  const core::DistillStats dry = corpus.distill(by_name, /*dry_run=*/true);
  EXPECT_TRUE(dry.dry_run);
  EXPECT_EQ(dry.before, 3u);
  EXPECT_EQ(dry.after, 1u);
  EXPECT_EQ(corpus.size(), 3u);

  const core::DistillStats stats = corpus.distill(by_name);
  EXPECT_EQ(stats.before, 3u);
  EXPECT_EQ(stats.after, 1u);
  EXPECT_EQ(stats.dropped_covered, 1u);  // reordered: covered by full
  EXPECT_EQ(stats.dropped_static, 1u);   // just_open: subsumed by full
  EXPECT_EQ(stats.footprint_union, 3u);  // {open, use, close}
  EXPECT_TRUE(stats.verified);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.at(0).hash, dsl::program_hash(full));

  // Hashes of distilled-away seeds stay registered: a dropped program never
  // re-enters the corpus.
  EXPECT_FALSE(corpus.add(make_seed(reordered)));
  EXPECT_FALSE(corpus.add(make_seed(just_open)));
}

TEST_F(DistillTest, DistillEmptyCorpus) {
  core::Corpus corpus;
  const core::DistillStats stats =
      corpus.distill(core::Corpus::FootprintFn{});
  EXPECT_EQ(stats.before, 0u);
  EXPECT_EQ(stats.after, 0u);
}

TEST(EngineDistillTest, ScratchReplayDistillsAndVerifies) {
  auto dev = device::make_device("A1", 7);
  ASSERT_NE(dev, nullptr);
  core::EngineConfig cfg;
  cfg.seed = 7;
  core::Engine eng(*dev, cfg);
  eng.run(600);
  ASSERT_GT(eng.corpus().size(), 1u);
  const size_t before = eng.corpus().size();

  // Dry run: stats exposed, campaign corpus untouched.
  const core::DistillStats dry = eng.distill_corpus(/*dry_run=*/true);
  EXPECT_TRUE(dry.dry_run);
  EXPECT_EQ(dry.before, before);
  EXPECT_EQ(eng.corpus().size(), before);
  EXPECT_TRUE(eng.has_distill_stats());
  EXPECT_EQ(eng.distill_stats().before, before);
  // The scratch-replay oracle is deterministic, so the kept set must replay
  // to the exact footprint union (the distillation contract).
  EXPECT_TRUE(dry.verified);
  EXPECT_GT(dry.footprint_union, 0u);

  // Destructive distill shrinks (or keeps) the corpus and stays verified.
  const core::DistillStats real = eng.distill_corpus(/*dry_run=*/false);
  EXPECT_FALSE(real.dry_run);
  EXPECT_EQ(real.before, before);
  EXPECT_EQ(real.after, eng.corpus().size());
  EXPECT_LE(real.after, before);
  EXPECT_TRUE(real.verified);
  EXPECT_EQ(real.after, dry.after);  // same oracle, same greedy outcome
}

TEST(EngineDistillTest, ReplayFootprintIsDeterministicPerProgram) {
  auto dev = device::make_device("A1", 9);
  core::EngineConfig cfg;
  cfg.seed = 9;
  core::Engine eng(*dev, cfg);
  eng.run(200);
  ASSERT_FALSE(eng.corpus().empty());
  const dsl::Program& prog = eng.corpus().at(0).prog;
  const auto fp1 = eng.replay_footprint(prog);
  const auto fp2 = eng.replay_footprint(prog);
  EXPECT_FALSE(fp1.empty());
  EXPECT_EQ(fp1, fp2);
}

TEST(EngineDistillTest, DryRunDistillDoesNotPerturbTheCampaign) {
  // Interleaving a dry-run distill (what the daemon does at checkpoint
  // boundaries) must leave the campaign bit-identical to an uninterrupted
  // run: the oracle replays on a scratch device, never the campaign one.
  core::EngineConfig cfg;
  cfg.seed = 11;
  auto straight_dev = device::make_device("A1", 11);
  core::Engine straight(*straight_dev, cfg);
  straight.run(400);

  auto interleaved_dev = device::make_device("A1", 11);
  core::Engine interleaved(*interleaved_dev, cfg);
  interleaved.run(150);
  interleaved.distill_corpus(/*dry_run=*/true);
  interleaved.run(250);

  EXPECT_EQ(straight.executions(), interleaved.executions());
  EXPECT_EQ(straight.kernel_coverage(), interleaved.kernel_coverage());
  EXPECT_EQ(straight.total_coverage(), interleaved.total_coverage());
  EXPECT_EQ(straight.corpus().size(), interleaved.corpus().size());
  for (size_t i = 0; i < straight.corpus().size(); ++i) {
    EXPECT_EQ(straight.corpus().at(i).hash, interleaved.corpus().at(i).hash);
  }
}

}  // namespace
}  // namespace df::analysis
