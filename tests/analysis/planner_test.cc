// Reachability planner tests: shortest plans over real drivers' declared
// state graphs, plan materialization into executable programs, and the
// engine integration (zero-visit diagnostics + plan injection).
#include "analysis/reachability.h"

#include <gtest/gtest.h>

#include "core/descriptions.h"
#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "kernel/drivers/gpu_mali.h"
#include "kernel/drivers/l2cap.h"
#include "kernel/drivers/tcpc_core.h"
#include "obs/obs.h"

namespace df::analysis {
namespace {

TEST(ReachabilityPlanner, TcpcShortestPathsFollowTheProtocol) {
  const kernel::drivers::TcpcDriver drv;
  const StateGraph g = graph_of(drv);
  ASSERT_FALSE(g.empty());
  EXPECT_EQ(g.driver, drv.name());
  ASSERT_EQ(g.states.size(), 4u);

  const ReachabilityPlanner planner(g);
  const auto& plans = planner.plans();
  ASSERT_EQ(plans.size(), 4u);

  // uninit: trivially reachable, empty plan.
  EXPECT_TRUE(plans[0].reachable);
  EXPECT_TRUE(plans[0].steps.empty());
  // idle: one init call.
  ASSERT_TRUE(plans[1].reachable);
  ASSERT_EQ(plans[1].steps.size(), 1u);
  EXPECT_EQ(plans[1].steps[0].call, "ioctl$TCPC_INIT");
  // connected: init, connect.
  ASSERT_TRUE(plans[2].reachable);
  ASSERT_EQ(plans[2].steps.size(), 2u);
  EXPECT_EQ(plans[2].steps[1].call, "ioctl$TCPC_CONNECT");
  // contract: init, connect, negotiate — the deepest protocol state.
  ASSERT_TRUE(plans[3].reachable);
  ASSERT_EQ(plans[3].steps.size(), 3u);
  EXPECT_EQ(plans[3].steps[2].call, "ioctl$TCPC_PD_NEGOTIATE");
}

TEST(ReachabilityPlanner, MaliDeepStateNeedsThreeCalls) {
  const kernel::drivers::MaliDriver drv;
  const ReachabilityPlanner planner(graph_of(drv));
  const auto& plans = planner.plans();
  ASSERT_EQ(plans.size(), 4u);
  ASSERT_TRUE(plans[3].reachable);
  EXPECT_EQ(plans[3].state_name, "jobs_running");
  ASSERT_EQ(plans[3].steps.size(), 3u);
  EXPECT_EQ(plans[3].steps[0].call, "ioctl$MALI_CTX_CREATE");
  EXPECT_EQ(plans[3].steps[1].call, "ioctl$MALI_MEM_POOL");
  EXPECT_EQ(plans[3].steps[2].call, "ioctl$MALI_JOB_SUBMIT");
}

TEST(ReachabilityPlanner, StateWithNoDeclaredRouteIsUnreachable) {
  StateGraph g;
  g.driver = "synthetic";
  g.states = {"a", "b", "c"};
  g.transitions.emplace_back(0, 1,
                             std::vector<kernel::PlanCall>{{"step_ab"}});
  // c has no inbound edge.
  const ReachabilityPlanner planner(std::move(g));
  EXPECT_TRUE(planner.plans()[1].reachable);
  EXPECT_FALSE(planner.plans()[2].reachable);
  EXPECT_TRUE(planner.plans()[2].steps.empty());
}

TEST(ReachabilityPlanner, PrefersFewerTotalCallsNotFewerEdges) {
  // 0 -> 2 directly costs a 3-call combo edge; 0 -> 1 -> 2 costs 2 calls.
  StateGraph g;
  g.driver = "synthetic";
  g.states = {"a", "b", "c"};
  g.transitions.emplace_back(
      0, 2, std::vector<kernel::PlanCall>{{"x"}, {"y"}, {"z"}});
  g.transitions.emplace_back(0, 1, std::vector<kernel::PlanCall>{{"p"}});
  g.transitions.emplace_back(1, 2, std::vector<kernel::PlanCall>{{"q"}});
  const ReachabilityPlanner planner(std::move(g));
  const auto& plan = planner.plans()[2];
  ASSERT_TRUE(plan.reachable);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].call, "p");
  EXPECT_EQ(plan.steps[1].call, "q");
}

TEST(ReachabilityPlanner, UnvisitedFiltersByVisitCounts) {
  const kernel::drivers::TcpcDriver drv;
  const ReachabilityPlanner planner(graph_of(drv));
  // Campaign saw uninit and idle only.
  const auto missing = planner.unvisited({5, 2, 0, 0});
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].state_name, "connected");
  EXPECT_EQ(missing[1].state_name, "contract");
  // Shorter visit vectors count as zero everywhere.
  EXPECT_EQ(planner.unvisited({}).size(), 4u);
  EXPECT_TRUE(planner.unvisited({1, 1, 1, 1}).empty());
}

TEST(ReachabilityPlanner, MaterializedPlanParsesAgainstTheDeviceTable) {
  auto dev = device::make_device("A1", 1);
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);

  const kernel::drivers::TcpcDriver drv;
  const ReachabilityPlanner planner(graph_of(drv));
  auto prog = materialize_plan(planner.plans()[3], table);
  ASSERT_TRUE(prog.has_value());
  // A producer for the tcpc fd is inserted ahead of the three plan steps.
  ASSERT_EQ(prog->calls.size(), 4u);
  EXPECT_EQ(prog->calls[0].desc->name, "openat$tcpc");
  EXPECT_EQ(prog->calls[3].desc->name, "ioctl$TCPC_PD_NEGOTIATE");
  // Hints pinned the PD request to a valid contract.
  ASSERT_GE(prog->calls[3].args.size(), 3u);
  EXPECT_EQ(prog->calls[3].args[1].scalar, 5000u);
  EXPECT_EQ(prog->calls[3].args[2].scalar, 1000u);
  // Every protocol call shares the single instance-0 producer.
  EXPECT_EQ(prog->calls[1].args[0].ref, 0);
  EXPECT_EQ(prog->calls[2].args[0].ref, 0);
  EXPECT_EQ(prog->calls[3].args[0].ref, 0);
}

TEST(ReachabilityPlanner, MultiInstancePlansGetDistinctProducers) {
  auto dev = device::make_device("D", 1);
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);

  const kernel::drivers::L2capDriver drv;
  const ReachabilityPlanner planner(graph_of(drv));
  // connected: bind+listen on the listener socket, then connect+config on
  // a *second* socket (declared instance 1) — connecting on the listener
  // itself would EBUSY.
  const StatePlan& plan = planner.plans()[5];
  ASSERT_TRUE(plan.reachable);
  auto prog = materialize_plan(plan, table);
  ASSERT_TRUE(prog.has_value());
  // socket, bind, listen, socket, connect, config.
  ASSERT_EQ(prog->calls.size(), 6u);
  EXPECT_EQ(prog->calls[0].desc->name, "socket$l2cap");
  EXPECT_EQ(prog->calls[3].desc->name, "socket$l2cap");
  EXPECT_EQ(prog->calls[1].desc->name, "bind$l2cap");
  EXPECT_EQ(prog->calls[2].desc->name, "listen$l2cap");
  EXPECT_EQ(prog->calls[1].args[0].ref, 0);
  EXPECT_EQ(prog->calls[2].args[0].ref, 0);
  EXPECT_EQ(prog->calls[4].desc->name, "connect$l2cap");
  EXPECT_EQ(prog->calls[5].desc->name, "sendmsg$l2cap_config");
  EXPECT_EQ(prog->calls[4].args[0].ref, 3);
  EXPECT_EQ(prog->calls[5].args[0].ref, 3);
}

TEST(ReachabilityPlanner, MaterializeFailsOnUnknownCallName) {
  StatePlan plan;
  plan.state = 1;
  plan.reachable = true;
  plan.steps.emplace_back("ioctl$NO_SUCH_CALL");
  const dsl::CallTable empty;
  std::string err;
  EXPECT_FALSE(materialize_plan(plan, empty, &err).has_value());
  EXPECT_NE(err.find("NO_SUCH_CALL"), std::string::npos);
}

TEST(EngineAnalysis, FreshEngineReportsUnvisitedStatePlans) {
  auto dev = device::make_device("A1", 1);
  core::EngineConfig cfg;
  cfg.use_reachability_plans = false;
  core::Engine eng(*dev, cfg);
  eng.setup();
  // No fuzzing has happened (only the setup-time HAL probe): the deep
  // protocol states are still unvisited and each reachable one ships with
  // a candidate plan from its declared graph.
  const auto missing = eng.unvisited_state_plans();
  EXPECT_GT(missing.size(), 0u);
  size_t planned = 0;
  for (const auto& m : missing) {
    EXPECT_FALSE(m.driver.empty());
    if (m.plan.reachable) {
      EXPECT_FALSE(m.plan.steps.empty());
      ++planned;
    }
  }
  EXPECT_GT(planned, 0u);
}

TEST(EngineAnalysis, PlanInjectionReachesStatesAndCounts) {
  auto dev = device::make_device("A1", 1);
  core::EngineConfig cfg;
  cfg.seed = 1;
  cfg.plan_every = 16;
  core::Engine eng(*dev, cfg);
  obs::Observability obs;
  eng.attach_observability(&obs);
  eng.setup();

  const size_t before = eng.unvisited_state_plans().size();
  EXPECT_GT(before, 0u);
  eng.run(600);
  // The planner queue fired and materialized at least one program.
  EXPECT_GT(obs.registry.counter("analysis.plans_injected", "A1").value(),
            0u);
  // Injection strictly helps: reachable-but-unvisited states shrink.
  EXPECT_LT(eng.unvisited_state_plans().size(), before);
}

TEST(EngineAnalysis, LintGateKeepsCountersConsistent) {
  auto dev = device::make_device("A1", 3);
  core::EngineConfig cfg;
  cfg.seed = 3;
  core::Engine eng(*dev, cfg);
  obs::Observability obs;
  eng.attach_observability(&obs);
  eng.run(300);
  // The gate is active: counters exist (possibly zero) and every executed
  // input still produced normal engine accounting.
  EXPECT_EQ(eng.executions(), 300u);
  const uint64_t rejected =
      obs.registry.counter("analysis.rejected", "A1").value();
  const uint64_t repaired =
      obs.registry.counter("analysis.repaired", "A1").value();
  EXPECT_LE(rejected, 4u * 300u);
  EXPECT_LE(repaired, 300u);
}

}  // namespace
}  // namespace df::analysis
