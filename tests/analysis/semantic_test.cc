// Unit tests for the DSL semantic analyzer: one suite per pass
// (use-after-close, dangling-ref, type-width, dead-statement) plus the
// deterministic repair behaviors the generator and minimizer rely on.
#include "analysis/semantic.h"

#include <gtest/gtest.h>

namespace df::analysis {
namespace {

class SemanticLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dsl::CallDesc open;
    open.name = "open";
    open.produces = "fd";
    open_ = table_.add(std::move(open));

    dsl::CallDesc close;
    close.name = "close";
    close.destroys = "fd";
    close.params = {handle("fd")};
    close_ = table_.add(std::move(close));

    dsl::CallDesc use;
    use.name = "use";
    use.params = {handle("fd"), scalar(dsl::ArgKind::kU8, 0, 200)};
    use_ = table_.add(std::move(use));

    dsl::CallDesc cfg;
    cfg.name = "cfg";
    dsl::ParamDesc mode;
    mode.kind = dsl::ArgKind::kEnum;
    mode.name = "mode";
    mode.choices = {1, 4, 9};
    dsl::ParamDesc mask;
    mask.kind = dsl::ArgKind::kFlags;
    mask.name = "mask";
    mask.choices = {1, 2, 8};
    dsl::ParamDesc on;
    on.kind = dsl::ArgKind::kBool;
    on.name = "on";
    dsl::ParamDesc buf;
    buf.kind = dsl::ArgKind::kBlob;
    buf.name = "buf";
    buf.max_len = 4;
    cfg.params = {mode, mask, on, buf};
    cfg_ = table_.add(std::move(cfg));
  }

  static dsl::ParamDesc handle(std::string type) {
    dsl::ParamDesc p;
    p.kind = dsl::ArgKind::kHandle;
    p.name = "fd";
    p.handle_type = std::move(type);
    return p;
  }

  static dsl::ParamDesc scalar(dsl::ArgKind kind, uint64_t min,
                               uint64_t max) {
    dsl::ParamDesc p;
    p.kind = kind;
    p.name = "val";
    p.min = min;
    p.max = max;
    return p;
  }

  static dsl::Call call(const dsl::CallDesc* d,
                        std::vector<dsl::Value> args = {}) {
    dsl::Call c;
    c.desc = d;
    c.args = std::move(args);
    return c;
  }

  static dsl::Value ref(int32_t idx) {
    dsl::Value v;
    v.ref = idx;
    return v;
  }

  static dsl::Value num(uint64_t s) {
    dsl::Value v;
    v.scalar = s;
    return v;
  }

  dsl::CallTable table_;
  ProgramLint lint_;
  const dsl::CallDesc* open_ = nullptr;
  const dsl::CallDesc* close_ = nullptr;
  const dsl::CallDesc* use_ = nullptr;
  const dsl::CallDesc* cfg_ = nullptr;
};

TEST_F(SemanticLintTest, CleanProgramHasNoFindings) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  p.calls.push_back(call(close_, {ref(0)}));
  const LintReport rep = lint_.analyze(p);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.findings.empty());
}

TEST_F(SemanticLintTest, UseAfterCloseIsAnError) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  const LintReport rep = lint_.analyze(p);
  EXPECT_FALSE(rep.clean());
  ASSERT_TRUE(rep.has(Pass::kUseAfterClose));
  EXPECT_EQ(rep.findings[0].call, 2u);
  EXPECT_EQ(rep.findings[0].arg, 0u);
}

TEST_F(SemanticLintTest, DoubleCloseIsFlaggedDistinctly) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(close_, {ref(0)}));
  const LintReport rep = lint_.analyze(p);
  ASSERT_TRUE(rep.has(Pass::kUseAfterClose));
  EXPECT_NE(rep.findings[0].message.find("double close"), std::string::npos);
}

TEST_F(SemanticLintTest, CloseOfLiveResourceIsLegal) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  EXPECT_TRUE(lint_.analyze(p).clean());
}

TEST_F(SemanticLintTest, ReopenedResourceIsIndependentlyTracked) {
  dsl::Program p;
  p.calls.push_back(call(open_));            // r0
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(open_));            // r2: a fresh fd
  p.calls.push_back(call(use_, {ref(2), num(7)}));
  p.calls.push_back(call(close_, {ref(2)}));
  EXPECT_TRUE(lint_.analyze(p).clean());
}

TEST_F(SemanticLintTest, DanglingForwardRefIsAnError) {
  dsl::Program p;
  p.calls.push_back(call(use_, {ref(1), num(7)}));
  p.calls.push_back(call(open_));
  const LintReport rep = lint_.analyze(p);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.has(Pass::kDanglingRef));
}

TEST_F(SemanticLintTest, WrongProducerTypeIsAnError) {
  dsl::Program p;
  p.calls.push_back(call(use_, {ref(-1), num(7)}));  // placeholder
  p.calls.push_back(call(use_, {ref(0), num(7)}));   // r0 produces nothing
  const LintReport rep = lint_.analyze(p);
  EXPECT_TRUE(rep.has(Pass::kDanglingRef));
  EXPECT_FALSE(rep.clean());
}

TEST_F(SemanticLintTest, UnresolvedHandleIsOnlyAWarning) {
  dsl::Program p;
  p.calls.push_back(call(use_, {ref(dsl::Value::kNoRef), num(7)}));
  const LintReport rep = lint_.analyze(p);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_TRUE(rep.has(Pass::kDanglingRef));
}

TEST_F(SemanticLintTest, ScalarWiderThanDeclaredKindIsAnError) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0), num(0x1ff)}));  // u8 param
  const LintReport rep = lint_.analyze(p);
  ASSERT_TRUE(rep.has(Pass::kTypeWidth));
  EXPECT_NE(rep.findings[0].message.find("exceeds u8 width"),
            std::string::npos);
}

TEST_F(SemanticLintTest, ScalarOutsideDeclaredRangeIsAnError) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0), num(0xff)}));  // fits u8, max is 200
  const LintReport rep = lint_.analyze(p);
  ASSERT_TRUE(rep.has(Pass::kTypeWidth));
  EXPECT_NE(rep.findings[0].message.find("range"), std::string::npos);
}

TEST_F(SemanticLintTest, EnumFlagsBoolAndBlobViolationsAreFlagged) {
  dsl::Program p;
  dsl::Value blob;
  blob.bytes = {1, 2, 3, 4, 5, 6};  // max_len 4
  p.calls.push_back(call(cfg_, {num(3), num(0x30), num(2), blob}));
  const LintReport rep = lint_.analyze(p);
  EXPECT_EQ(rep.errors(), 4u);
  EXPECT_TRUE(rep.has(Pass::kTypeWidth));
}

TEST_F(SemanticLintTest, DeadProducerIsAWarning) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  const LintReport rep = lint_.analyze(p);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.has(Pass::kDeadStatement));
}

TEST_F(SemanticLintTest, ArityMismatchIsAnError) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0)}));  // missing the scalar arg
  const LintReport rep = lint_.analyze(p);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.has(Pass::kDanglingRef));
}

TEST_F(SemanticLintTest, OptionsDisableIndividualPasses) {
  LintOptions opts;
  opts.use_after_close = false;
  opts.dead_statements = false;
  const ProgramLint relaxed(opts);
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  EXPECT_TRUE(relaxed.analyze(p).clean());
}

TEST_F(SemanticLintTest, RepairRebindsClosedRefToLiveProducer) {
  dsl::Program p;
  p.calls.push_back(call(open_));            // r0
  p.calls.push_back(call(open_));            // r1
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  EXPECT_FALSE(lint_.analyze(p).clean());
  EXPECT_GT(lint_.repair(p), 0u);
  EXPECT_EQ(p.calls[3].args[0].ref, 1);
  EXPECT_TRUE(lint_.analyze(p).clean());
}

TEST_F(SemanticLintTest, RepairFallsBackToUnresolvedWithoutLiveProducer) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(close_, {ref(0)}));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  lint_.repair(p);
  EXPECT_EQ(p.calls[2].args[0].ref, dsl::Value::kNoRef);
  EXPECT_TRUE(lint_.analyze(p).clean());  // downgraded to a warning
}

TEST_F(SemanticLintTest, RepairClampsScalarsIntoWidthAndRange) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0), num(0x5ff)}));
  lint_.repair(p);
  EXPECT_LE(p.calls[1].args[1].scalar, 200u);
  EXPECT_TRUE(lint_.analyze(p).clean());
}

TEST_F(SemanticLintTest, RepairFixesEnumFlagsBoolAndBlob) {
  dsl::Program p;
  dsl::Value blob;
  blob.bytes = {1, 2, 3, 4, 5, 6};
  p.calls.push_back(call(cfg_, {num(3), num(0x30), num(2), blob}));
  EXPECT_EQ(lint_.repair(p), 4u);
  EXPECT_EQ(p.calls[0].args[0].scalar, 1u);       // first enum choice
  EXPECT_EQ(p.calls[0].args[1].scalar, 0x30u & 0xbu);
  EXPECT_EQ(p.calls[0].args[2].scalar, 1u);
  EXPECT_EQ(p.calls[0].args[3].bytes.size(), 4u);
  EXPECT_TRUE(lint_.analyze(p).clean());
}

TEST_F(SemanticLintTest, RepairIsIdempotentOnCleanPrograms) {
  dsl::Program p;
  p.calls.push_back(call(open_));
  p.calls.push_back(call(use_, {ref(0), num(7)}));
  p.calls.push_back(call(close_, {ref(0)}));
  EXPECT_EQ(lint_.repair(p), 0u);
}

}  // namespace
}  // namespace df::analysis
