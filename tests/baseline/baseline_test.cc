// Tests for the Syzkaller and Difuze baselines.
#include <gtest/gtest.h>

#include "baseline/difuze.h"
#include "baseline/syzkaller.h"
#include "device/catalog.h"

namespace df::baseline {
namespace {

TEST(Syzkaller, ConfigIsSyscallOnlyNoRelations) {
  const auto cfg = SyzkallerFuzzer::config(1);
  EXPECT_FALSE(cfg.probe_hal);
  EXPECT_FALSE(cfg.hal_feedback);
  EXPECT_FALSE(cfg.learn_relations);
  EXPECT_FALSE(cfg.gen.use_relations);
  EXPECT_FALSE(cfg.gen.use_hal);
}

TEST(Syzkaller, NeverTouchesHalProcesses) {
  auto dev = device::make_device("A1", 1);
  uint64_t hal_syscalls = 0;
  dev->kernel().attach_tracepoint(
      [&](const kernel::Task& t, const kernel::SyscallReq&,
          const kernel::SyscallRes&) {
        if (t.origin == kernel::TaskOrigin::kHal) ++hal_syscalls;
      });
  SyzkallerFuzzer syz(*dev, 1);
  syz.setup();
  syz.run(500);
  EXPECT_EQ(hal_syscalls, 0u);
  EXPECT_GT(syz.kernel_coverage(), 30u);
}

TEST(Syzkaller, NeverFindsHalOnlyBugs) {
  // Device C1's only planted bug is a HAL native crash: structurally out
  // of a syscall fuzzer's reach.
  auto dev = device::make_device("C1", 2);
  SyzkallerFuzzer syz(*dev, 2);
  syz.run(4000);
  EXPECT_EQ(syz.crashes().unique_bugs(), 0u);
}

TEST(Syzkaller, FindsShallowKernelBug) {
  auto dev = device::make_device("B", 1);
  SyzkallerFuzzer syz(*dev, 1);
  syz.run(8000);
  EXPECT_NE(syz.crashes().find("WARNING in l2cap_send_disconn_req"), nullptr);
}

TEST(Syzkaller, CoverageBelowDroidFuzzAtSameBudget) {
  const uint64_t budget = 3000;
  auto d1 = device::make_device("A2", 4);
  core::Engine df(*d1, [] {
    core::EngineConfig c;
    c.seed = 4;
    return c;
  }());
  df.run(budget);
  auto d2 = device::make_device("A2", 4);
  SyzkallerFuzzer syz(*d2, 4);
  syz.run(budget);
  EXPECT_GT(df.kernel_coverage(), syz.kernel_coverage());
}

TEST(Difuze, ExtractsIoctlInterfaces) {
  auto dev = device::make_device("A1", 1);
  DifuzeFuzzer difuze(*dev, 1);
  const size_t n = difuze.setup();
  EXPECT_GT(n, 30u);  // A1 carries nine drivers' worth of ioctls
  EXPECT_EQ(difuze.extracted_interfaces(), n);
  // Idempotent.
  EXPECT_EQ(difuze.setup(), n);
}

TEST(Difuze, ExtractionScalesWithDriverCount) {
  auto a1 = device::make_device("A1", 1);
  auto e = device::make_device("E", 1);
  DifuzeFuzzer d1(*a1, 1), d2(*e, 1);
  EXPECT_GT(d1.setup(), d2.setup());  // A1 has more drivers than E
}

TEST(Difuze, GeneratesIoctlOnlyPrograms) {
  auto dev = device::make_device("A1", 1);
  uint64_t non_ioctl_non_open = 0;
  dev->kernel().attach_tracepoint(
      [&](const kernel::Task&, const kernel::SyscallReq& req,
          const kernel::SyscallRes&) {
        if (req.nr != kernel::Sys::kIoctl && req.nr != kernel::Sys::kOpenAt &&
            req.nr != kernel::Sys::kClose) {
          ++non_ioctl_non_open;
        }
      });
  DifuzeFuzzer difuze(*dev, 1);
  difuze.run(300);
  EXPECT_EQ(non_ioctl_non_open, 0u);
  EXPECT_GT(difuze.executions(), 0u);
  EXPECT_GT(difuze.kernel_coverage(), 20u);
}

TEST(Difuze, CoverageLagsBehindSyzkaller) {
  // Generation-based without feedback: strictly weaker than coverage-guided
  // syscall fuzzing at equal budget.
  const uint64_t budget = 4000;
  auto d1 = device::make_device("A1", 9);
  SyzkallerFuzzer syz(*d1, 9);
  syz.run(budget);
  auto d2 = device::make_device("A1", 9);
  DifuzeFuzzer difuze(*d2, 9);
  difuze.run(budget);
  EXPECT_GT(syz.kernel_coverage(), difuze.kernel_coverage());
}

TEST(Difuze, FindsNoHalBugs) {
  auto dev = device::make_device("C1", 3);
  DifuzeFuzzer difuze(*dev, 3);
  difuze.run(2000);
  for (const auto& bug : difuze.crashes().bugs()) {
    EXPECT_EQ(bug.component, "Kernel");
  }
}

}  // namespace
}  // namespace df::baseline
