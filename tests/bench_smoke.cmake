# Fleet bench smoke test (run via cmake -P from ctest): run
# bench_fleet_parallel at a tiny per-device budget, then validate the
# emitted BENCH_fleet_parallel.json (including the fleet_parallel scaling
# section and its determinism flag) with scripts/check_bench_json.py.
# Inputs: BENCH, PYTHON, CHECKER, OUTDIR.

file(MAKE_DIRECTORY ${OUTDIR})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          DF_FLEET_EXECS=256 DF_REPS=1 DF_BENCH_JSON_DIR=${OUTDIR}
          ${BENCH}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_fleet_parallel failed (rc=${bench_rc}): "
                      "non-deterministic fleet run or JSON write failure")
endif()

set(OUT ${OUTDIR}/BENCH_fleet_parallel.json)
if(NOT EXISTS ${OUT})
  message(FATAL_ERROR "bench_fleet_parallel did not write ${OUT}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (rc=${check_rc})")
endif()
