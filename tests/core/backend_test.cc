// ExecBackend seam (DESIGN.md §13): the in-process default, the
// snapshot-fork backend that rewinds the device before every run, and the
// transport-error surface when a fork base no longer matches the device.
#include "core/exec/backend.h"

#include <gtest/gtest.h>

#include "core/descriptions.h"
#include "device/catalog.h"
#include "dsl/parse.h"

namespace df::core {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override { use_device("A1"); }

  void use_device(const char* id) {
    inner_.reset();   // references broker_, drop first
    broker_.reset();  // the broker unwinds into dev_'s kernel on destruction
    dev_ = device::make_device(id, 1);
    table_ = dsl::CallTable();
    add_syscall_descriptions(table_, *dev_);
    for (const auto& svc : dev_->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      add_hal_interface(table_, svc->descriptor(), svc->interface(), w);
    }
    spec_ = make_spec_table(table_);
    broker_ = std::make_unique<Broker>(*dev_, spec_);
  }

  ExecResult run(const std::string& text) {
    std::string err;
    auto prog = dsl::parse_program(text, table_, &err);
    EXPECT_TRUE(prog.has_value()) << err;
    return broker_->execute(*prog, {});
  }

  // Installs a SnapshotForkBackend over a test-owned in-process inner
  // backend (SnapshotForkBackend holds a reference, not ownership).
  SnapshotForkBackend* install_fork(device::StateSnapshot base) {
    inner_ = std::make_unique<InProcessBackend>(*broker_);
    auto fork =
        std::make_unique<SnapshotForkBackend>(*inner_, std::move(base));
    SnapshotForkBackend* raw = fork.get();
    broker_->set_backend(std::move(fork));
    return raw;
  }

  std::unique_ptr<device::Device> dev_;
  dsl::CallTable table_;
  trace::SpecTable spec_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<InProcessBackend> inner_;
};

TEST_F(BackendTest, DefaultBackendIsInProcess) {
  EXPECT_EQ(broker_->backend().name(), "in-process");
  const auto res = run("r0 = openat$rt1711()\n");
  ASSERT_EQ(res.rets.size(), 1u);
  EXPECT_GE(res.rets[0], 3);
}

TEST_F(BackendTest, InProcessRunsAccumulateState) {
  const auto first = run("r0 = openat$rt1711()\n");
  const auto second = run("r0 = openat$rt1711()\n");
  // Each run leaves its fd open: the numbers march upward.
  EXPECT_LT(first.rets[0], second.rets[0]);
}

TEST_F(BackendTest, SnapshotForkRewindsTheDeviceBeforeEveryRun) {
  // Establish some state, then pin it as the fork base.
  run("r0 = openat$rt1711()\nioctl$RT1711_ATTACH(r0, 0x2)\n");
  SnapshotForkBackend* fork = install_fork(broker_->capture_snapshot());
  EXPECT_EQ(broker_->backend().name(), "snapshot-forked");

  // Every run starts from the base: the fresh fd number repeats instead of
  // marching upward as it does in-process.
  const auto first = run("r0 = openat$rt1711()\n");
  const auto second = run("r0 = openat$rt1711()\n");
  ASSERT_EQ(first.rets.size(), 1u);
  ASSERT_EQ(second.rets.size(), 1u);
  EXPECT_EQ(first.rets[0], second.rets[0]);
  EXPECT_EQ(fork->forks(), 2u);
}

TEST_F(BackendTest, MismatchedBaseSurfacesAsTransportError) {
  run("r0 = openat$rt1711()\n");
  device::StateSnapshot foreign = broker_->capture_snapshot();
  use_device("A2");  // different shape: the A1 base cannot restore here
  install_fork(std::move(foreign));
  const auto res = run("r0 = openat$mali()\n");
  EXPECT_TRUE(res.transport_error);
  EXPECT_EQ(res.calls_executed, 0u);
}

TEST_F(BackendTest, NullBackendResetsToInProcess) {
  run("r0 = openat$rt1711()\n");
  install_fork(broker_->capture_snapshot());
  broker_->set_backend(nullptr);
  EXPECT_EQ(broker_->backend().name(), "in-process");
  const auto first = run("r0 = openat$rt1711()\n");
  const auto second = run("r0 = openat$rt1711()\n");
  EXPECT_LT(first.rets[0], second.rets[0]);  // no more rewinding
}

}  // namespace
}  // namespace df::core
