// Tests for the execution broker: program execution, resource plumbing,
// bonded feedback, and reboot policy.
#include "core/exec/broker.h"

#include <gtest/gtest.h>

#include "core/descriptions.h"
#include "device/catalog.h"
#include "dsl/parse.h"

namespace df::core {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override { use_device("A1"); }

  void use_device(const char* id) {
    broker_.reset();  // the broker unwinds into dev_'s kernel on destruction
    dev_ = device::make_device(id, 1);
    table_ = dsl::CallTable();
    add_syscall_descriptions(table_, *dev_);
    for (const auto& svc : dev_->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      add_hal_interface(table_, svc->descriptor(), svc->interface(), w);
    }
    spec_ = make_spec_table(table_);
    broker_ = std::make_unique<Broker>(*dev_, spec_);
  }

  ExecResult run(const std::string& text, ExecOptions opt = {}) {
    std::string err;
    auto prog = dsl::parse_program(text, table_, &err);
    EXPECT_TRUE(prog.has_value()) << err;
    return broker_->execute(*prog, opt);
  }

  std::unique_ptr<device::Device> dev_;
  dsl::CallTable table_;
  trace::SpecTable spec_;
  std::unique_ptr<Broker> broker_;
};

TEST_F(BrokerTest, ExecutesSyscallSequenceWithFdPlumbing) {
  const auto res = run(
      "r0 = openat$rt1711()\n"
      "ioctl$RT1711_ATTACH(r0, 0x2)\n"
      "ioctl$RT1711_GET_STATUS(r0)\n");
  ASSERT_EQ(res.rets.size(), 3u);
  EXPECT_GE(res.rets[0], 3);
  EXPECT_EQ(res.rets[1], 0);
  EXPECT_EQ(res.rets[2], 0);
  EXPECT_EQ(res.calls_executed, 3u);
}

TEST_F(BrokerTest, UnresolvedHandleBecomesBadFd) {
  const auto res = run("ioctl$RT1711_ATTACH(nil, 0x2)\n");
  EXPECT_EQ(res.rets[0], kernel::err::kEBADF);
}

TEST_F(BrokerTest, KernelIdResourcesPlumbedViaOutU32) {
  use_device("A2");
  const auto res = run(
      "r0 = openat$mali()\n"
      "r1 = ioctl$MALI_CTX_CREATE(r0)\n"
      "ioctl$MALI_MEM_POOL(r0, r1, 0x40)\n");
  EXPECT_EQ(res.rets[2], 0);  // pool accepted: ctx id was wired through
}

TEST_F(BrokerTest, HalCallsExecuteAndProduceHandles) {
  const auto res = run(
      "r0 = hal$graphics.createLayer(0x40, 0x40, 0x1)\n"
      "hal$graphics.setLayerBuffer(r0, 0x100, 0x3)\n"
      "hal$graphics.composite()\n");
  EXPECT_EQ(res.rets[0], hal::kStatusOk);
  EXPECT_EQ(res.rets[1], hal::kStatusOk);
  EXPECT_EQ(res.rets[2], hal::kStatusOk);
}

TEST_F(BrokerTest, CollectsKernelAndHalFeatures) {
  const auto res = run(
      "r0 = hal$sensors.activate(0x3, 0x1)\n"
      "hal$sensors.poll(0x10)\n");
  bool kernel_feat = false, hal_feat = false;
  for (uint64_t f : res.features) {
    if (trace::is_hal_feature(f)) {
      hal_feat = true;
    } else {
      kernel_feat = true;
    }
  }
  EXPECT_TRUE(kernel_feat);
  EXPECT_TRUE(hal_feat);
}

TEST_F(BrokerTest, HalDirectionalCanBeDisabled) {
  ExecOptions opt;
  opt.hal_directional = false;
  const auto res = run("hal$sensors.poll(0x10)\n", opt);
  for (uint64_t f : res.features) {
    EXPECT_FALSE(trace::is_hal_feature(f));
  }
}

TEST_F(BrokerTest, CoverageCollectionCanBeDisabled) {
  ExecOptions opt;
  opt.collect_cov = false;
  opt.hal_directional = false;
  const auto res = run("r0 = openat$rt1711()\n", opt);
  EXPECT_TRUE(res.features.empty());
}

TEST_F(BrokerTest, KernelWarningReportedAndRebooted) {
  const auto res = run(
      "r0 = openat$rt1711()\n"
      "ioctl$RT1711_ATTACH(r0, 0x2)\n"
      "ioctl$RT1711_RESET(r0)\n");
  EXPECT_TRUE(res.kernel_bug);
  ASSERT_EQ(res.kernel_reports.size(), 1u);
  EXPECT_EQ(res.kernel_reports[0].title, "WARNING in rt1711_i2c_probe");
  EXPECT_TRUE(res.rebooted);  // the paper's reboot-on-any-bug policy
  EXPECT_EQ(dev_->kernel().reboot_count(), 1u);
}

TEST_F(BrokerTest, RebootPolicyCanBeDisabled) {
  ExecOptions opt;
  opt.reboot_on_bug = false;
  const auto res = run(
      "r0 = openat$rt1711()\n"
      "ioctl$RT1711_ATTACH(r0, 0x2)\n"
      "ioctl$RT1711_RESET(r0)\n",
      opt);
  EXPECT_TRUE(res.kernel_bug);
  EXPECT_FALSE(res.rebooted);
  EXPECT_EQ(dev_->kernel().reboot_count(), 0u);
}

TEST_F(BrokerTest, HalCrashCapturedPerExecution) {
  const auto res = run(
      "r0 = hal$graphics.createLayer(0x40, 0x1000, 0x1)\n"
      "hal$graphics.setLayerBuffer(r0, 0x40000000, 0x0)\n"
      "hal$graphics.composite()\n");
  EXPECT_TRUE(res.hal_crash);
  ASSERT_EQ(res.hal_crashes.size(), 1u);
  EXPECT_EQ(res.hal_crashes[0].signal, "SIGSEGV");
  EXPECT_TRUE(res.rebooted);
  // Only new crashes appear in the next execution's result.
  const auto res2 = run("hal$graphics.getDisplayInfo()\n");
  EXPECT_FALSE(res2.hal_crash);
}

TEST_F(BrokerTest, PanicStopsProgramEarly) {
  use_device("A2");
  const auto res = run(
      "r0 = hal$media.createSession(0x0)\n"
      "hal$media.configure(r0, 0x280, 0x1e0, 0x1f4)\n"
      "hal$media.start(r0)\n"
      "hal$media.transcode(r0, 0x3, 0x2)\n"  // kernel hang -> panic
      "hal$media.flush(r0)\n"                // must not execute
      "hal$media.flush(r0)\n");
  EXPECT_TRUE(res.kernel_bug);
  EXPECT_EQ(res.calls_executed, 4u);
  EXPECT_TRUE(res.rebooted);
}

TEST_F(BrokerTest, CallStatsAccumulate) {
  run("r0 = openat$rt1711()\nioctl$RT1711_GET_STATUS(r0)\n");
  run("r0 = openat$rt1711()\n");
  const auto& stats = broker_->call_stats();
  EXPECT_EQ(stats.at("openat$rt1711").count, 2u);
  EXPECT_EQ(stats.at("openat$rt1711").ok, 2u);
  EXPECT_EQ(stats.at("ioctl$RT1711_GET_STATUS").count, 1u);
  EXPECT_EQ(broker_->executions(), 2u);
}

TEST_F(BrokerTest, SpecTableCoversDescribedIoctls) {
  // Every specialized ioctl description must resolve to a dense ID, not the
  // overflow namespace.
  for (const dsl::CallDesc* d : table_.all()) {
    if (d->is_hal() ||
        static_cast<kernel::Sys>(d->sys_nr) != kernel::Sys::kIoctl) {
      continue;
    }
    EXPECT_LT(spec_.id_of(kernel::Sys::kIoctl, d->fixed_arg), 1u << 20)
        << d->name;
  }
}

}  // namespace
}  // namespace df::core
