// Tests for campaign checkpoint/resume: a resumed campaign must be
// bit-identical to the uninterrupted same-seed run (per device, for any
// worker count), and corrupted or mismatched checkpoints must be rejected
// with a descriptive error instead of a crash.
#include "core/fuzz/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/fuzz/daemon.h"
#include "device/snapshot.h"
#include "obs/analytics.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"

namespace df::core {
namespace {

// Everything that must match between an interrupted+resumed campaign and
// the uninterrupted one, per device, timing excluded.
struct Fingerprint {
  std::string stats_json;   // reporter series (include_timing = false)
  std::string trace_jsonl;  // milestone event trace
  std::string corpus;       // every engine's corpus as DSL text
  std::string bugs;         // device:title:dup per bug, aggregation order
  std::string analytics;    // per-device attribution/lineage/frontier JSON
  std::string snapshots;    // per-device snapshot counters + pool shape
  uint64_t total_execs = 0;
  size_t total_coverage = 0;

  bool operator==(const Fingerprint&) const = default;
};

struct CampaignSetup {
  DaemonConfig cfg;
  std::vector<std::string> devices;
};

CampaignSetup make_setup(size_t workers, double fault_rate,
                         const std::string& checkpoint_dir) {
  CampaignSetup s;
  s.cfg.seed = 3;
  s.cfg.workers = workers;
  s.cfg.engine.fault.rate = fault_rate;
  s.cfg.checkpoint_dir = checkpoint_dir;
  s.cfg.checkpoint_every = 1024;
  s.devices = {"A1", "B", "C2", "E"};
  return s;
}

Fingerprint fingerprint(Daemon& d, obs::Observability& obs,
                        obs::StatsReporter& rep) {
  Fingerprint fp;
  fp.stats_json = rep.to_json(/*include_timing=*/false);
  fp.trace_jsonl = obs.trace.to_jsonl();
  fp.corpus = d.save_corpus();
  for (const auto& b : d.all_bugs()) {
    fp.bugs += b.device_id + ":" + b.bug.title + ":" +
               std::to_string(b.bug.dup_count) + "\n";
  }
  fp.total_execs = d.total_executions();
  fp.total_coverage = d.total_kernel_coverage();
  // Analytics round-trips through the checkpoint too: the yield table,
  // lineage digest, and plan-attempt counters behind the frontier report
  // must restore exactly (no wall-clock series, pure content).
  for (const auto& id : rep.devices()) {
    obs::JsonWriter w;
    d.engine(id)->analytics_snapshot().write_json(w);
    fp.analytics += id + ":" + w.take() + "\n";
  }
  // The snapshot layer rides the checkpoint too (DESIGN.md §13): fork and
  // recovery counters, the capture pool, and the last-good capture must all
  // come back exactly, or the resumed campaign would fork from different
  // states than the uninterrupted one.
  for (const auto& id : rep.devices()) {
    Engine* e = d.engine(id);
    const SnapshotStats& s = e->snapshot_stats();
    fp.snapshots +=
        id + ":" + std::to_string(s.captures) + "/" +
        std::to_string(s.restores) + "/" + std::to_string(s.forks) + "/" +
        std::to_string(s.fault_recoveries) + "/pool=" +
        std::to_string(e->snapshot_pool_size()) + "/good=" +
        std::to_string(e->last_good_snapshot() ? e->last_good_snapshot()->seq
                                               : 0) +
        "\n";
  }
  return fp;
}

// Builds the daemon for `setup` with observability + reporter attached the
// same way on both the save and the resume side.
struct Campaign {
  explicit Campaign(const CampaignSetup& setup) : daemon(setup.cfg) {
    obs.trace.set_record_execs(false);
    daemon.attach_observability(&obs);
    daemon.attach_reporter(&rep);
    for (const auto& id : setup.devices) {
      EXPECT_TRUE(daemon.add_device(id));
    }
  }
  obs::Observability obs;
  obs::StatsReporter rep{512};
  Daemon daemon;
};

void expect_roundtrip(size_t workers, double fault_rate) {
  const std::string dir = ::testing::TempDir() + "df_checkpoint_" +
                          std::to_string(workers) + "_" +
                          std::to_string(fault_rate != 0.0);
  const CampaignSetup setup = make_setup(workers, fault_rate, dir);
  constexpr uint64_t kBudget = 3000;  // checkpoints at 1024 and 2048

  // Uninterrupted run (checkpointing on, same barrier-reboot grid).
  Campaign full(setup);
  full.daemon.run(kBudget, 128);
  ASSERT_EQ(full.daemon.checkpoints_written().size(), 2u);
  const Fingerprint want = fingerprint(full.daemon, full.obs, full.rep);

  // "Interrupted" run: a fresh process restores the last checkpoint (exec
  // 2048) and completes only the remaining budget.
  std::string text, error;
  ASSERT_TRUE(CampaignCheckpoint::read_file(dir + "/checkpoint.json", &text,
                                            &error))
      << error;
  Campaign resumed(setup);
  ASSERT_TRUE(resumed.daemon.resume(text, &error)) << error;
  EXPECT_EQ(resumed.daemon.progress(), 2048u);
  resumed.daemon.run(kBudget, 128);

  const Fingerprint got =
      fingerprint(resumed.daemon, resumed.obs, resumed.rep);
  EXPECT_EQ(want.total_execs, got.total_execs);
  EXPECT_EQ(want.total_coverage, got.total_coverage);
  EXPECT_EQ(want.bugs, got.bugs);
  EXPECT_EQ(want.corpus, got.corpus);
  EXPECT_EQ(want.stats_json, got.stats_json);
  EXPECT_EQ(want.trace_jsonl, got.trace_jsonl);
  EXPECT_EQ(want.analytics, got.analytics);
  EXPECT_EQ(want.snapshots, got.snapshots);
  EXPECT_NE(got.analytics.find("\"origin\":\"generate\""),
            std::string::npos);
}

TEST(Checkpoint, ResumeMatchesUninterruptedRunSequential) {
  expect_roundtrip(/*workers=*/1, /*fault_rate=*/0.0);
}

TEST(Checkpoint, ResumeMatchesUninterruptedRunParallel) {
  expect_roundtrip(/*workers=*/4, /*fault_rate=*/0.0);
}

TEST(Checkpoint, ResumeReplaysTheFaultScheduleToo) {
  expect_roundtrip(/*workers=*/1, /*fault_rate=*/0.01);
}

// Regression (checkpoint v4): driver fields that deliberately survive
// reboots — rt1711's probe counter feeds a per-boot coverage feature —
// must ride the checkpoint, or a resume early in a campaign (while those
// features are still fresh) re-derives them from a fresh boot and sees
// "new" coverage the uninterrupted run already counted. Seed 52 reboots
// (bug-triggered) before exec 256; resuming there exposed the drift.
TEST(Checkpoint, EarlyResumeCarriesRebootPersistentDriverState) {
  const std::string dir = ::testing::TempDir() + "df_checkpoint_early";
  CampaignSetup setup;
  setup.cfg.seed = 52;
  setup.cfg.workers = 1;
  setup.cfg.checkpoint_dir = dir;
  setup.cfg.checkpoint_every = 256;
  setup.devices = {"A1", "E"};

  Campaign full(setup);
  full.daemon.run(512, 64);
  const Fingerprint want = fingerprint(full.daemon, full.obs, full.rep);

  std::string text, error;
  ASSERT_TRUE(CampaignCheckpoint::read_file(dir + "/checkpoint.json", &text,
                                            &error))
      << error;
  Campaign resumed(setup);
  ASSERT_TRUE(resumed.daemon.resume(text, &error)) << error;
  EXPECT_EQ(resumed.daemon.progress(), 256u);
  resumed.daemon.run(512, 64);

  const Fingerprint got =
      fingerprint(resumed.daemon, resumed.obs, resumed.rep);
  EXPECT_EQ(want.total_coverage, got.total_coverage);
  EXPECT_EQ(want.corpus, got.corpus);
  EXPECT_EQ(want.bugs, got.bugs);
  EXPECT_EQ(want.trace_jsonl, got.trace_jsonl);
}

// A mid-campaign checkpoint carries the live snapshot images; every daemon
// resumed from the same document holds the same pool and the same
// last-good capture, byte for byte.
TEST(Checkpoint, CarriesLiveSnapshotsAcrossResume) {
  DaemonConfig cfg;
  cfg.seed = 7;
  Daemon source(cfg);
  source.add_device("A1");
  source.run(1200, 128);  // past the capture cadence: pool is non-empty
  ASSERT_GT(source.engine("A1")->snapshot_pool_size(), 0u);
  ASSERT_NE(source.engine("A1")->last_good_snapshot(), nullptr);
  const std::string json = source.checkpoint_json();
  EXPECT_NE(json.find("\"snapshots\""), std::string::npos);
  EXPECT_NE(json.find("\"images\""), std::string::npos);

  auto resumed = [&] {
    auto d = std::make_unique<Daemon>(cfg);
    d->add_device("A1");
    std::string error;
    EXPECT_TRUE(d->resume(json, &error)) << error;
    return d;
  };
  const auto a = resumed();
  const auto b = resumed();
  Engine* ea = a->engine("A1");
  Engine* eb = b->engine("A1");
  EXPECT_EQ(ea->snapshot_pool_size(),
            source.engine("A1")->snapshot_pool_size());
  ASSERT_NE(ea->last_good_snapshot(), nullptr);
  ASSERT_NE(eb->last_good_snapshot(), nullptr);
  EXPECT_EQ(ea->last_good_snapshot()->seq, eb->last_good_snapshot()->seq);
  EXPECT_EQ(device::snapshot_to_bytes(*ea->last_good_snapshot()),
            device::snapshot_to_bytes(*eb->last_good_snapshot()));
  EXPECT_EQ(device::snapshot_to_bytes(*ea->last_good_snapshot()),
            device::snapshot_to_bytes(
                *source.engine("A1")->last_good_snapshot()));
}

TEST(Checkpoint, DisabledConfigWritesNothing) {
  DaemonConfig cfg;  // checkpoint_dir empty
  Daemon d(cfg);
  d.add_device("E");
  d.run(300, 64);
  EXPECT_TRUE(d.checkpoints_written().empty());
}

TEST(Checkpoint, ResumedBudgetAlreadySpentIsANoOp) {
  DaemonConfig cfg;
  cfg.seed = 5;
  Daemon a(cfg);
  a.add_device("E");
  a.run(500, 64);
  const std::string json = a.checkpoint_json();

  Daemon b(cfg);
  b.add_device("E");
  std::string error;
  ASSERT_TRUE(b.resume(json, &error)) << error;
  EXPECT_EQ(b.progress(), 500u);
  b.run(500, 64);  // nothing left to do
  EXPECT_EQ(b.engine("E")->executions(), 500u);
}

// --- rejection: corrupted / mismatched checkpoints -------------------------

class CheckpointRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.seed = 5;
    Daemon source(cfg_);
    source.add_device("A1");
    source.add_device("B");
    source.run(600, 64);
    valid_ = source.checkpoint_json();
    ASSERT_FALSE(valid_.empty());
  }

  // A daemon shaped like the checkpoint's author.
  Daemon matching_daemon() {
    Daemon d(cfg_);
    d.add_device("A1");
    d.add_device("B");
    return d;
  }

  void expect_rejected(Daemon&& d, const std::string& doc) {
    std::string error;
    EXPECT_FALSE(d.resume(doc, &error));
    EXPECT_FALSE(error.empty());
  }

  DaemonConfig cfg_;
  std::string valid_;
};

TEST_F(CheckpointRejectTest, GarbageIsRejectedNotCrashed) {
  expect_rejected(matching_daemon(), "not json at all {{{");
  expect_rejected(matching_daemon(), "");
  expect_rejected(matching_daemon(), "[1, 2, 3]");
  expect_rejected(matching_daemon(), "{\"checkpoint\": 7}");
}

TEST_F(CheckpointRejectTest, TruncatedDocumentIsRejected) {
  // Every prefix must fail cleanly; step through a few.
  for (const size_t cut : {valid_.size() / 4, valid_.size() / 2,
                           valid_.size() - 2}) {
    expect_rejected(matching_daemon(), valid_.substr(0, cut));
  }
}

TEST_F(CheckpointRejectTest, BitFlippedFieldIsRejected) {
  // Corrupt a structural field: progress becomes a string.
  std::string doc = valid_;
  const size_t pos = doc.find("\"progress\":");
  ASSERT_NE(pos, std::string::npos);
  doc.insert(pos + strlen("\"progress\":"), "\"oops");
  expect_rejected(matching_daemon(), doc);
}

TEST_F(CheckpointRejectTest, WrongVersionIsRejected) {
  std::string doc = valid_;
  const size_t pos = doc.find("\"version\":4");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, strlen("\"version\":4"), "\"version\":999");
  std::string error;
  Daemon d = matching_daemon();
  EXPECT_FALSE(d.resume(doc, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(CheckpointRejectTest, SeedMismatchIsRejected) {
  DaemonConfig other = cfg_;
  other.seed = 6;
  Daemon d(other);
  d.add_device("A1");
  d.add_device("B");
  std::string error;
  EXPECT_FALSE(d.resume(valid_, &error));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
}

TEST_F(CheckpointRejectTest, DeviceSetMismatchIsRejected) {
  Daemon missing(cfg_);
  missing.add_device("A1");
  expect_rejected(std::move(missing), valid_);

  Daemon reordered(cfg_);
  reordered.add_device("B");
  reordered.add_device("A1");
  expect_rejected(std::move(reordered), valid_);
}

TEST_F(CheckpointRejectTest, FaultConfigMismatchIsRejected) {
  // The checkpoint was taken without a fault plan; a resume-side engine
  // with one would diverge, so it must be refused.
  DaemonConfig other = cfg_;
  other.engine.fault.rate = 0.01;
  Daemon d(other);
  d.add_device("A1");
  d.add_device("B");
  expect_rejected(std::move(d), valid_);
}

TEST_F(CheckpointRejectTest, SnapshotConfigMismatchIsRejected) {
  // The checkpoint was taken with the default snapshot config; a resume-side
  // engine with the layer off (or on a different cadence) would capture and
  // fork on a different schedule and silently diverge.
  DaemonConfig off = cfg_;
  off.engine.use_snapshots = false;
  Daemon d_off(off);
  d_off.add_device("A1");
  d_off.add_device("B");
  std::string error;
  EXPECT_FALSE(d_off.resume(valid_, &error));
  EXPECT_NE(error.find("snapshot configuration"), std::string::npos) << error;

  DaemonConfig cadence = cfg_;
  cadence.engine.snapshot_every = 128;
  Daemon d_cadence(cadence);
  d_cadence.add_device("A1");
  d_cadence.add_device("B");
  error.clear();
  EXPECT_FALSE(d_cadence.resume(valid_, &error));
  EXPECT_NE(error.find("snapshot configuration"), std::string::npos) << error;
}

TEST_F(CheckpointRejectTest, SnapshotPoolReferencingMissingImageIsRejected) {
  std::string doc = valid_;
  const size_t pos = doc.find("\"pool\":[");
  ASSERT_NE(pos, std::string::npos);
  // Point the pool at a capture seq that has no serialized image.
  doc.insert(pos + strlen("\"pool\":["), "424242,");
  std::string error;
  Daemon d = matching_daemon();
  EXPECT_FALSE(d.resume(doc, &error));
  EXPECT_NE(error.find("snapshot"), std::string::npos) << error;
}

// --- file I/O --------------------------------------------------------------

TEST(CheckpointFiles, WriteReadRoundTripCreatingDirectories) {
  const std::string dir = ::testing::TempDir() + "df_checkpoint_io/nested";
  const std::string path = dir + "/checkpoint.json";
  std::string error;
  ASSERT_TRUE(CampaignCheckpoint::write_file(path, "{\"x\": 1}\n", &error))
      << error;
  std::string text;
  ASSERT_TRUE(CampaignCheckpoint::read_file(path, &text, &error)) << error;
  EXPECT_EQ(text, "{\"x\": 1}\n");
}

TEST(CheckpointFiles, MissingFileReadFails) {
  std::string text, error;
  EXPECT_FALSE(CampaignCheckpoint::read_file(
      ::testing::TempDir() + "df_no_such_checkpoint.json", &text, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace df::core
