#include "core/fuzz/crash.h"

#include <gtest/gtest.h>

namespace df::core {
namespace {

kernel::Report warn_report(std::string title) {
  kernel::Report r;
  r.kind = kernel::ReportKind::kWarning;
  r.title = std::move(title);
  r.driver = "some_driver";
  return r;
}

TEST(NormalizeTitle, StripsNumericTails) {
  EXPECT_EQ(normalize_title("BUG: looking up invalid subclass: 12"),
            "BUG: looking up invalid subclass");
  EXPECT_EQ(normalize_title(
                "BUG: looking up invalid subclass: 9 (lock hub->fifo)"),
            "BUG: looking up invalid subclass");
}

TEST(NormalizeTitle, KeepsFunctionNames) {
  EXPECT_EQ(normalize_title("WARNING in rt1711_i2c_probe"),
            "WARNING in rt1711_i2c_probe");
  EXPECT_EQ(
      normalize_title("KASAN: slab-use-after-free Read in bt_accept_unlink"),
      "KASAN: slab-use-after-free Read in bt_accept_unlink");
}

TEST(NormalizeTitle, StripsParentheticals) {
  EXPECT_EQ(normalize_title("WARNING in tcpc_role_swap (core)"),
            "WARNING in tcpc_role_swap");
}

TEST(HalCrashTitle, MatchesTableIIStyle) {
  EXPECT_EQ(hal_crash_title("android.hardware.graphics.composer@sim"),
            "Native crash in Graphics HAL");
  EXPECT_EQ(hal_crash_title("android.hardware.media.codec@sim"),
            "Native crash in Media HAL");
  EXPECT_EQ(hal_crash_title("android.hardware.camera.provider@sim"),
            "Native crash in Camera HAL");
}

TEST(CrashLog, DedupsByNormalizedTitle) {
  CrashLog log;
  dsl::Program repro;
  EXPECT_TRUE(log.record_kernel(
      warn_report("BUG: looking up invalid subclass: 8"), repro, 10));
  EXPECT_FALSE(log.record_kernel(
      warn_report("BUG: looking up invalid subclass: 15"), repro, 20));
  EXPECT_EQ(log.unique_bugs(), 1u);
  EXPECT_EQ(log.total_reports(), 2u);
  const BugRecord* rec = log.find("BUG: looking up invalid subclass");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->dup_count, 2u);
  EXPECT_EQ(rec->first_exec, 10u);
}

TEST(CrashLog, KernelRecordFields) {
  CrashLog log;
  dsl::Program repro;
  kernel::Report r;
  r.kind = kernel::ReportKind::kKasan;
  r.title = "KASAN: invalid-access in hci_read_supported_codecs";
  r.driver = "bt_hci";
  log.record_kernel(r, repro, 3);
  const auto& bug = log.bugs()[0];
  EXPECT_EQ(bug.component, "Kernel");
  EXPECT_EQ(bug.origin, "bt_hci");
  EXPECT_EQ(bug.bug_class, "KASAN");
}

TEST(CrashLog, HalRecordFields) {
  CrashLog log;
  dsl::Program repro;
  hal::CrashRecord c;
  c.service = "android.hardware.camera.provider@sim";
  c.signal = "SIGSEGV";
  c.site = "camera3_process_capture_request";
  EXPECT_TRUE(log.record_hal(c, repro, 7));
  EXPECT_FALSE(log.record_hal(c, repro, 9));
  const auto& bug = log.bugs()[0];
  EXPECT_EQ(bug.title, "Native crash in Camera HAL");
  EXPECT_EQ(bug.component, "HAL");
  EXPECT_EQ(bug.bug_class, "SIGSEGV");
  EXPECT_EQ(bug.dup_count, 2u);
}

TEST(CrashLog, KernelAndHalTitlesDistinct) {
  CrashLog log;
  dsl::Program repro;
  log.record_kernel(warn_report("WARNING in v4l_querycap"), repro, 1);
  hal::CrashRecord c;
  c.service = "android.hardware.camera.provider@sim";
  c.signal = "SIGSEGV";
  log.record_hal(c, repro, 2);
  EXPECT_EQ(log.unique_bugs(), 2u);
}

TEST(CrashLog, StoresReproducerText) {
  CrashLog log;
  dsl::CallTable table;
  dsl::CallDesc d;
  d.name = "openat$video";
  const dsl::CallDesc* desc = table.add(std::move(d));
  dsl::Program repro;
  dsl::Call call;
  call.desc = desc;
  repro.calls.push_back(call);
  log.record_kernel(warn_report("WARNING in v4l_querycap"), repro, 1);
  EXPECT_EQ(log.bugs()[0].repro_text, "openat$video()\n");
  EXPECT_EQ(log.bugs()[0].repro.size(), 1u);
}

TEST(CrashLog, FindMissingReturnsNull) {
  CrashLog log;
  EXPECT_EQ(log.find("nothing"), nullptr);
}

}  // namespace
}  // namespace df::core
