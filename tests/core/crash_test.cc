#include "core/fuzz/crash.h"

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

namespace df::core {
namespace {

kernel::Report warn_report(std::string title) {
  kernel::Report r;
  r.kind = kernel::ReportKind::kWarning;
  r.title = std::move(title);
  r.driver = "some_driver";
  return r;
}

TEST(NormalizeTitle, StripsNumericTails) {
  EXPECT_EQ(normalize_title("BUG: looking up invalid subclass: 12"),
            "BUG: looking up invalid subclass");
  EXPECT_EQ(normalize_title(
                "BUG: looking up invalid subclass: 9 (lock hub->fifo)"),
            "BUG: looking up invalid subclass");
}

TEST(NormalizeTitle, KeepsFunctionNames) {
  EXPECT_EQ(normalize_title("WARNING in rt1711_i2c_probe"),
            "WARNING in rt1711_i2c_probe");
  EXPECT_EQ(
      normalize_title("KASAN: slab-use-after-free Read in bt_accept_unlink"),
      "KASAN: slab-use-after-free Read in bt_accept_unlink");
}

TEST(NormalizeTitle, StripsParentheticals) {
  EXPECT_EQ(normalize_title("WARNING in tcpc_role_swap (core)"),
            "WARNING in tcpc_role_swap");
}

TEST(HalCrashTitle, MatchesTableIIStyle) {
  EXPECT_EQ(hal_crash_title("android.hardware.graphics.composer@sim"),
            "Native crash in Graphics HAL");
  EXPECT_EQ(hal_crash_title("android.hardware.media.codec@sim"),
            "Native crash in Media HAL");
  EXPECT_EQ(hal_crash_title("android.hardware.camera.provider@sim"),
            "Native crash in Camera HAL");
}

TEST(CrashLog, DedupsByNormalizedTitle) {
  CrashLog log;
  dsl::Program repro;
  EXPECT_TRUE(log.record_kernel(
      warn_report("BUG: looking up invalid subclass: 8"), repro, 10));
  EXPECT_FALSE(log.record_kernel(
      warn_report("BUG: looking up invalid subclass: 15"), repro, 20));
  EXPECT_EQ(log.unique_bugs(), 1u);
  EXPECT_EQ(log.total_reports(), 2u);
  const BugRecord* rec = log.find("BUG: looking up invalid subclass");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->dup_count, 2u);
  EXPECT_EQ(rec->first_exec, 10u);
}

TEST(CrashLog, KernelRecordFields) {
  CrashLog log;
  dsl::Program repro;
  kernel::Report r;
  r.kind = kernel::ReportKind::kKasan;
  r.title = "KASAN: invalid-access in hci_read_supported_codecs";
  r.driver = "bt_hci";
  log.record_kernel(r, repro, 3);
  const auto& bug = log.bugs()[0];
  EXPECT_EQ(bug.component, "Kernel");
  EXPECT_EQ(bug.origin, "bt_hci");
  EXPECT_EQ(bug.bug_class, "KASAN");
}

TEST(CrashLog, HalRecordFields) {
  CrashLog log;
  dsl::Program repro;
  hal::CrashRecord c;
  c.service = "android.hardware.camera.provider@sim";
  c.signal = "SIGSEGV";
  c.site = "camera3_process_capture_request";
  EXPECT_TRUE(log.record_hal(c, repro, 7));
  EXPECT_FALSE(log.record_hal(c, repro, 9));
  const auto& bug = log.bugs()[0];
  EXPECT_EQ(bug.title, "Native crash in Camera HAL");
  EXPECT_EQ(bug.component, "HAL");
  EXPECT_EQ(bug.bug_class, "SIGSEGV");
  EXPECT_EQ(bug.dup_count, 2u);
}

TEST(CrashLog, KernelAndHalTitlesDistinct) {
  CrashLog log;
  dsl::Program repro;
  log.record_kernel(warn_report("WARNING in v4l_querycap"), repro, 1);
  hal::CrashRecord c;
  c.service = "android.hardware.camera.provider@sim";
  c.signal = "SIGSEGV";
  log.record_hal(c, repro, 2);
  EXPECT_EQ(log.unique_bugs(), 2u);
}

TEST(CrashLog, StoresReproducerText) {
  CrashLog log;
  dsl::CallTable table;
  dsl::CallDesc d;
  d.name = "openat$video";
  const dsl::CallDesc* desc = table.add(std::move(d));
  dsl::Program repro;
  dsl::Call call;
  call.desc = desc;
  repro.calls.push_back(call);
  log.record_kernel(warn_report("WARNING in v4l_querycap"), repro, 1);
  EXPECT_EQ(log.bugs()[0].repro_text, "openat$video()\n");
  EXPECT_EQ(log.bugs()[0].repro.size(), 1u);
}

TEST(CrashLog, FindMissingReturnsNull) {
  CrashLog log;
  EXPECT_EQ(log.find("nothing"), nullptr);
}

TEST(NormalizeTitle, NumericSuffixEdgeCases) {
  // Multi-digit tails and tails behind parentheticals are both stripped.
  EXPECT_EQ(normalize_title("BUG: soft lockup: 123456"), "BUG: soft lockup");
  EXPECT_EQ(normalize_title("WARNING in tcpc_role_swap (core): 7"),
            "WARNING in tcpc_role_swap");
  // Non-numeric tails and interior digits are instance-relevant and kept.
  EXPECT_EQ(normalize_title("KASAN: use-after-free in foo: bar"),
            "KASAN: use-after-free in foo: bar");
  EXPECT_EQ(normalize_title("WARNING in rt1711_i2c_probe"),
            "WARNING in rt1711_i2c_probe");
  // A bare trailing colon has nothing to strip.
  EXPECT_EQ(normalize_title("BUG: thing: "), "BUG: thing: ");
}

TEST(NormalizeTitle, LockAnnotationsStripped) {
  EXPECT_EQ(normalize_title("BUG: spinlock bad magic (lock hub->fifo)"),
            "BUG: spinlock bad magic");
  EXPECT_EQ(
      normalize_title("BUG: looking up invalid subclass: 9 (lock mdev->lock)"),
      "BUG: looking up invalid subclass");
}

TEST(HalCrashTitle, DescriptorEdgeCases) {
  // Versioned and nested descriptors reduce to the first name segment.
  EXPECT_EQ(hal_crash_title("android.hardware.bluetooth@sim"),
            "Native crash in Bluetooth HAL");
  EXPECT_EQ(hal_crash_title("android.hardware.media.codec@sim"),
            "Native crash in Media HAL");
  // Non-android.hardware descriptors still produce a usable alias.
  EXPECT_EQ(hal_crash_title("vendor.widget@1.0"),
            "Native crash in Vendor HAL");
}

TEST(CrashLog, TitleHashIsStableSixteenHexDigits) {
  const std::string h = CrashLog::title_hash("WARNING in tcpc_role_swap");
  ASSERT_EQ(h.size(), 16u);
  for (const char c : h) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << h;
  }
  EXPECT_EQ(h, CrashLog::title_hash("WARNING in tcpc_role_swap"));
  EXPECT_NE(h, CrashLog::title_hash("WARNING in tcpc_role_swap2"));
}

// Fixture for the provenance report: one bug with a one-call reproducer and
// a crash context carrying a driver-state snapshot plus one flight record.
struct ProvenanceFixture {
  ProvenanceFixture() {
    dsl::CallDesc d;
    d.name = "openat$video";
    desc = table.add(std::move(d));
    dsl::Call call;
    call.desc = desc;
    bug.repro.calls.push_back(call);
    bug.repro_text = dsl::format_program(bug.repro);
    bug.title = "WARNING in tcpc_role_swap";
    bug.component = "Kernel";
    bug.origin = "typec_tcpc";
    bug.bug_class = "WARNING";
    bug.first_exec = 120;
    bug.dup_count = 1;
    obs::LineageLink root;
    root.hash = 0x1234;
    root.origin = obs::ProgramOrigin::kGenerate;
    root.exec_index = 7;
    root.depth = 0;
    obs::LineageLink trigger;
    trigger.hash = 0xabcd;
    trigger.origin = obs::ProgramOrigin::kMutateArg;
    trigger.exec_index = 120;
    trigger.depth = 1;
    bug.lineage = {root, trigger};

    obs::DriverStateCoverage cov;
    cov.driver = "rt1711_i2c";
    cov.states = {"idle", "attached", "alerting"};
    cov.current = 1;
    cov.visits = {2, 1, 0};
    cov.matrix = {0, 1, 0, 0, 0, 0, 0, 0, 0};
    ctx.state_coverage.push_back(cov);
    // A stateless driver: skipped in the report body, still occupies a slot
    // in flight-record snapshots.
    obs::DriverStateCoverage plain;
    plain.driver = "plain";
    ctx.state_coverage.push_back(plain);

    flight.enable(2);
    obs::ExecutionRecord rec;
    rec.exec_index = 120;
    rec.program = std::make_shared<const dsl::Program>(bug.repro);
    rec.rets = {0};
    rec.new_features = 3;
    rec.kernel_bug = true;
    rec.hal_crash = false;
    rec.states_before = {0, 0};
    rec.states_after = {1, 0};
    flight.push(std::move(rec));

    ctx.device = "A1";
    ctx.seed = 42;
    ctx.exec_index = 120;
    ctx.flight = &flight;
    ctx.kernel_context = {"WARNING in tcpc_role_swap"};
  }

  dsl::CallTable table;
  const dsl::CallDesc* desc = nullptr;
  BugRecord bug;
  obs::FlightRecorder flight;
  CrashContext ctx;
};

TEST(CrashLog, ProvenanceJsonMatchesGolden) {
  const ProvenanceFixture fx;
  const std::string hash = CrashLog::title_hash(fx.bug.title);
  const std::string expected =
      "{\"crash\":{\"title\":\"WARNING in tcpc_role_swap\",\"hash\":\"" +
      hash +
      "\",\"component\":\"Kernel\",\"origin\":\"typec_tcpc\","
      "\"bug_class\":\"WARNING\",\"first_exec\":120,\"dup_count\":1},"
      "\"campaign\":{\"device\":\"A1\",\"seed\":42,\"exec\":120},"
      "\"repro\":{\"calls\":1,\"dsl\":\"openat$video()\\n\"},"
      "\"lineage\":[{\"hash\":\"0000000000001234\",\"origin\":\"generate\","
      "\"exec_index\":7,\"depth\":0},"
      "{\"hash\":\"000000000000abcd\",\"origin\":\"mutate_arg\","
      "\"exec_index\":120,\"depth\":1}],"
      "\"driver_states\":[{\"driver\":\"rt1711_i2c\","
      "\"states\":[\"idle\",\"attached\",\"alerting\"],"
      "\"current\":\"attached\",\"visits\":[2,1,0],"
      "\"matrix\":[[0,1,0],[0,0,0],[0,0,0]],"
      "\"states_visited\":2,\"transitions_observed\":1}],"
      "\"kasan_context\":{\"kernel_reports\":"
      "[\"WARNING in tcpc_role_swap\"],\"hal_crashes\":[]},"
      "\"flight_recorder\":{\"capacity\":2,\"recorded\":1,\"records\":"
      "[{\"exec\":120,\"program\":\"openat$video()\\n\",\"rets\":[0],"
      "\"new_features\":3,\"kernel_bug\":true,\"hal_crash\":false,"
      "\"states_before\":{\"rt1711_i2c\":\"idle\"},"
      "\"states_after\":{\"rt1711_i2c\":\"attached\"}}]}}\n";
  EXPECT_EQ(CrashLog::provenance_json(fx.bug, fx.ctx), expected);
}

TEST(CrashLog, ProvenanceWithoutFlightRecorderStaysWellFormed) {
  ProvenanceFixture fx;
  fx.ctx.flight = nullptr;
  const std::string json = CrashLog::provenance_json(fx.bug, fx.ctx);
  EXPECT_NE(json.find("\"flight_recorder\":{\"capacity\":0,\"recorded\":0,"
                      "\"records\":[]}"),
            std::string::npos);
}

TEST(CrashLog, WriteProvenanceNamesFileByHashAndDedups) {
  const ProvenanceFixture fx;
  CrashLog log;
  EXPECT_EQ(log.write_provenance(fx.bug, fx.ctx), "");  // disabled by default
  const std::string dir = ::testing::TempDir() + "df_crash_prov_test";
  std::filesystem::remove_all(dir);
  log.set_provenance_dir(dir);
  ASSERT_TRUE(log.provenance_enabled());
  const std::string path = log.write_provenance(fx.bug, fx.ctx);
  EXPECT_EQ(path,
            dir + "/crash_" + CrashLog::title_hash(fx.bug.title) + ".json");
  // A repeat of the same title overwrites in place, no duplicate entry.
  EXPECT_EQ(log.write_provenance(fx.bug, fx.ctx), path);
  ASSERT_EQ(log.provenance_files().size(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), CrashLog::provenance_json(fx.bug, fx.ctx));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace df::core
