// Live introspection end to end (DESIGN.md §10): a daemon with
// serve_port=0 runs a small campaign, then the four endpoints are scraped
// over a real socket and their shapes validated with obs/json_parse. The
// /healthz flip test drives the stall watchdog by hand.
#include <gtest/gtest.h>

#include <string>

#include "core/fuzz/daemon.h"
#include "obs/json_parse.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"
#include "tests/obs/http_test_util.h"

namespace df::core {
namespace {

using df::test::http_get;

TEST(DaemonServe, DisabledByDefault) {
  DaemonConfig cfg;
  cfg.seed = 1;
  Daemon d(cfg);
  EXPECT_EQ(d.server(), nullptr);
  EXPECT_EQ(d.serve_port(), -1);
  d.publish_introspection();  // no-op without a server
}

TEST(DaemonServe, StatusCoverageMetricsAndHealthz) {
  DaemonConfig cfg;
  cfg.seed = 9;
  cfg.serve_port = 0;
  Daemon d(cfg);
  ASSERT_NE(d.server(), nullptr);
  const int port = d.serve_port();
  ASSERT_GT(port, 0);

  obs::Observability obs;
  obs.trace.set_record_execs(false);
  obs::StatsReporter rep(256);
  d.attach_observability(&obs);
  d.attach_reporter(&rep);
  ASSERT_TRUE(d.add_device("A1"));
  ASSERT_TRUE(d.add_device("B"));
  d.run(600, 128);

  // /status: campaign header, per-device samples, fleet utilization,
  // velocity, health verdict.
  auto res = http_get(static_cast<uint16_t>(port), "/status");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  std::string error;
  auto doc = obs::json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const obs::JsonValue* campaign = doc->find("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->find("seed")->as_u64(), 9u);
  EXPECT_EQ(campaign->find("devices")->as_u64(), 2u);
  EXPECT_EQ(campaign->find("progress")->as_u64(), 600u);
  const obs::JsonValue* devices = doc->find("devices");
  ASSERT_NE(devices, nullptr);
  ASSERT_EQ(devices->items.size(), 2u);
  for (const auto& dev : devices->items) {
    EXPECT_EQ(dev.find("executions")->as_u64(), 600u);
    ASSERT_NE(dev.find("timing"), nullptr);
    ASSERT_NE(dev.find("timing")->find("execs_per_sec"), nullptr);
  }
  const obs::JsonValue* fleet = doc->find("fleet");
  ASSERT_NE(fleet, nullptr);
  ASSERT_NE(fleet->find("timing"), nullptr);
  EXPECT_FALSE(fleet->find("timing")->find("utilization")->items.empty());
  ASSERT_NE(doc->find("velocity"), nullptr);
  ASSERT_NE(doc->find("velocity")->find("aggregate"), nullptr);
  EXPECT_TRUE(doc->find("healthy")->boolean);

  // /coverage: per-device driver-state matrices.
  res = http_get(static_cast<uint16_t>(port), "/coverage");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  doc = obs::json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->find("devices"), nullptr);
  ASSERT_EQ(doc->find("devices")->items.size(), 2u);
  const obs::JsonValue* cov =
      doc->find("devices")->items[0].find("state_coverage");
  ASSERT_NE(cov, nullptr);
  ASSERT_FALSE(cov->items.empty());
  EXPECT_NE(cov->items[0].find("matrix"), nullptr);

  // /metrics: live Prometheus exposition straight off the registry.
  res = http_get(static_cast<uint16_t>(port), "/metrics");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(res.body.find("# TYPE df_engine_executions counter"),
            std::string::npos);
  EXPECT_NE(res.body.find("df_engine_executions{label=\"A1\"} 600"),
            std::string::npos);

  // /healthz: no stalls in this campaign.
  res = http_get(static_cast<uint16_t>(port), "/healthz");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ok\n");
}

TEST(DaemonServe, HealthzFlipsWithStallWatchdog) {
  DaemonConfig cfg;
  cfg.seed = 3;
  cfg.serve_port = 0;
  Daemon d(cfg);
  ASSERT_NE(d.server(), nullptr);
  const auto port = static_cast<uint16_t>(d.serve_port());

  obs::StatsReporter rep(64);
  rep.set_stall_window(1);
  d.attach_reporter(&rep);
  ASSERT_TRUE(d.add_device("A1"));

  // Coverage plateau: two records with no total-coverage growth past the
  // window flag the device.
  obs::EngineSample s;
  s.executions = 100;
  s.total_coverage = 50;
  rep.record("A1", s);
  s.executions = 200;
  rep.record("A1", s);
  ASSERT_TRUE(rep.stalled("A1"));
  d.publish_introspection();
  auto res = http_get(port, "/healthz");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 503);
  EXPECT_EQ(res.body, "stalled: A1\n");

  // /status mirrors the verdict.
  res = http_get(port, "/status");
  ASSERT_TRUE(res.ok);
  std::string error;
  auto doc = obs::json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(doc->find("healthy")->boolean);
  ASSERT_EQ(doc->find("stalled_devices")->items.size(), 1u);
  EXPECT_EQ(doc->find("stalled_devices")->items[0].scalar, "A1");

  // New coverage clears the stall and health recovers.
  s.executions = 300;
  s.total_coverage = 60;
  rep.record("A1", s);
  ASSERT_FALSE(rep.stalled("A1"));
  d.publish_introspection();
  res = http_get(port, "/healthz");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ok\n");
}

TEST(DaemonServe, MovedDaemonKeepsServing) {
  DaemonConfig cfg;
  cfg.seed = 5;
  cfg.serve_port = 0;
  Daemon a(cfg);
  ASSERT_NE(a.server(), nullptr);
  const auto port = static_cast<uint16_t>(a.serve_port());
  ASSERT_TRUE(a.add_device("A1"));
  Daemon b(std::move(a));  // handlers capture shared state, not `this`
  b.run(200, 64);
  const auto res = http_get(port, "/status");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  std::string error;
  const auto doc = obs::json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("campaign")->find("progress")->as_u64(), 200u);
}

}  // namespace
}  // namespace df::core
