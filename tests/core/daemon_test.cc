#include "core/fuzz/daemon.h"

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/stats_reporter.h"

namespace df::core {
namespace {

TEST(Daemon, AddsKnownDevicesOnly) {
  Daemon d(DaemonConfig{});
  EXPECT_TRUE(d.add_device("A1"));
  EXPECT_TRUE(d.add_device("E"));
  EXPECT_FALSE(d.add_device("ZZ"));
  EXPECT_EQ(d.device_count(), 2u);
  EXPECT_NE(d.engine("A1"), nullptr);
  EXPECT_EQ(d.engine("B"), nullptr);
}

TEST(Daemon, RunsAllEnginesInterleaved) {
  Daemon d(DaemonConfig{});
  d.add_device("A1");
  d.add_device("B");
  d.run(300, 64);
  EXPECT_EQ(d.engine("A1")->executions(), 300u);
  EXPECT_EQ(d.engine("B")->executions(), 300u);
  EXPECT_EQ(d.total_executions(), 600u);
  EXPECT_GT(d.total_kernel_coverage(), 100u);
}

TEST(Daemon, AggregatesBugsAcrossDevices) {
  DaemonConfig cfg;
  cfg.seed = 3;
  Daemon d(cfg);
  d.add_device("A1");
  d.add_device("B");
  d.run(5000, 128);
  const auto bugs = d.all_bugs();
  EXPECT_FALSE(bugs.empty());
  for (const auto& b : bugs) {
    EXPECT_TRUE(b.device_id == "A1" || b.device_id == "B");
    EXPECT_FALSE(b.bug.title.empty());
  }
}

TEST(Daemon, CorpusSaveLoadRoundTrip) {
  DaemonConfig cfg;
  cfg.seed = 7;
  Daemon d(cfg);
  d.add_device("C2");
  d.run(500, 64);
  const std::string saved = d.save_corpus();
  EXPECT_FALSE(saved.empty());
  EXPECT_NE(saved.find("# device C2"), std::string::npos);

  // A fresh daemon reloads the corpus.
  Daemon d2(cfg);
  d2.add_device("C2");
  const size_t loaded = d2.load_corpus(saved);
  EXPECT_GT(loaded, 0u);
  EXPECT_EQ(d2.engine("C2")->corpus().size(), loaded);
}

TEST(Daemon, LoadIgnoresUnknownDevicesAndGarbage) {
  Daemon d(DaemonConfig{});
  d.add_device("C2");
  const std::string text =
      "# device XX\n"
      "openat$wifi()\n"
      "# end\n"
      "# device C2\n"
      "not a program at all(((\n"
      "# end\n";
  EXPECT_EQ(d.load_corpus(text), 0u);
}

TEST(Daemon, ZeroSliceIsSafe) {
  Daemon d(DaemonConfig{});
  d.add_device("E");
  d.run(10, 0);
  EXPECT_EQ(d.engine("E")->executions(), 10u);
}

TEST(Daemon, StatsSamplingFollowsTheInterval) {
  DaemonConfig cfg;
  cfg.seed = 5;
  Daemon d(cfg);
  obs::StatsReporter rep(128);
  d.attach_reporter(&rep);
  d.add_device("A1");
  d.add_device("B");
  // 600 execs in slices of 64: baseline point at exec 0, interval samples
  // at 128/256/384/512, and a final partial sample at 600.
  d.run(600, 64);
  ASSERT_EQ(rep.devices().size(), 2u);
  for (const auto& dev : rep.devices()) {
    const auto& pts = rep.series(dev);
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_EQ(pts.front().sample.executions, 0u);
    EXPECT_EQ(pts[1].sample.executions, 128u);
    EXPECT_EQ(pts.back().sample.executions, 600u);
  }
}

// The determinism contract from DESIGN.md: two identically-seeded campaigns
// produce identical stats series (timing excluded) and an identical
// milestone event trace.
TEST(Daemon, StatsAndTraceAreDeterministicAcrossRuns) {
  auto run_once = [](std::string* stats_json, std::string* trace_jsonl) {
    DaemonConfig cfg;
    cfg.seed = 3;
    Daemon d(cfg);
    obs::Observability obs;
    obs.trace.set_record_execs(false);
    obs::StatsReporter rep(512);
    d.attach_observability(&obs);
    d.attach_reporter(&rep);
    d.add_device("A1");
    d.add_device("C1");
    d.run(2000, 128);
    *stats_json = rep.to_json(/*include_timing=*/false);
    *trace_jsonl = obs.trace.to_jsonl();
  };
  std::string stats_a, trace_a, stats_b, trace_b;
  run_once(&stats_a, &trace_a);
  run_once(&stats_b, &trace_b);
  EXPECT_FALSE(stats_a.empty());
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(trace_a, trace_b);
}

}  // namespace
}  // namespace df::core
