// Sanity checks over the authored syscall description catalogue and the
// spec-table compilation, across every device model.
#include "core/descriptions.h"

#include <gtest/gtest.h>

#include <set>

#include "device/catalog.h"
#include "kernel/kernel.h"

namespace df::core {
namespace {

dsl::CallTable full_table(device::Device& dev) {
  dsl::CallTable table;
  add_syscall_descriptions(table, dev);
  for (const auto& svc : dev.services()) {
    // Normalize usage weights into occurrence probabilities, as the
    // probing pass does before handing them to add_hal_interface.
    double total = 0;
    for (const auto& uw : svc->app_usage_profile()) total += uw.weight;
    std::vector<std::pair<uint32_t, double>> w;
    for (const auto& uw : svc->app_usage_profile()) {
      w.emplace_back(uw.code, uw.weight / total);
    }
    add_hal_interface(table, svc->descriptor(), svc->interface(), w);
  }
  return table;
}

TEST(Descriptions, EveryDeviceGetsANonTrivialTable) {
  for (const auto& spec : device::device_table()) {
    auto dev = device::make_device(spec.id, 1);
    dsl::CallTable table;
    add_syscall_descriptions(table, *dev);
    EXPECT_GT(table.size(), 20u) << spec.id;
  }
}

TEST(Descriptions, EveryHandleTypeHasAProducer) {
  for (const auto& spec : device::device_table()) {
    auto dev = device::make_device(spec.id, 1);
    const dsl::CallTable table = full_table(*dev);
    for (const dsl::CallDesc* d : table.all()) {
      for (const auto& p : d->params) {
        if (p.kind != dsl::ArgKind::kHandle) continue;
        EXPECT_FALSE(table.producers_of(p.handle_type).empty())
            << spec.id << " " << d->name << " needs " << p.handle_type;
      }
    }
  }
}

TEST(Descriptions, OpenPathsExistOnTheDevice) {
  for (const auto& spec : device::device_table()) {
    auto dev = device::make_device(spec.id, 1);
    dsl::CallTable table;
    add_syscall_descriptions(table, *dev);
    for (const dsl::CallDesc* d : table.all()) {
      if (static_cast<kernel::Sys>(d->sys_nr) != kernel::Sys::kOpenAt) {
        continue;
      }
      EXPECT_NE(dev->kernel().registry().resolve(d->path), nullptr)
          << spec.id << " " << d->name << " -> " << d->path;
    }
  }
}

TEST(Descriptions, EveryDeviceNodeIsDescribed) {
  // The inverse direction: no driver surface is left undescribed.
  for (const auto& spec : device::device_table()) {
    auto dev = device::make_device(spec.id, 1);
    dsl::CallTable table;
    add_syscall_descriptions(table, *dev);
    for (const auto& path : dev->kernel().registry().paths()) {
      bool described = false;
      for (const dsl::CallDesc* d : table.all()) {
        described = described || d->path == path;
      }
      EXPECT_TRUE(described) << spec.id << " node " << path;
    }
  }
}

TEST(Descriptions, IoctlSpecializationsUniquePerRequest) {
  auto dev = device::make_device("A1", 1);
  dsl::CallTable table;
  add_syscall_descriptions(table, *dev);
  std::set<uint64_t> requests;
  for (const dsl::CallDesc* d : table.all()) {
    if (static_cast<kernel::Sys>(d->sys_nr) != kernel::Sys::kIoctl) continue;
    EXPECT_TRUE(requests.insert(d->fixed_arg).second)
        << "duplicate ioctl request 0x" << std::hex << d->fixed_arg;
  }
  EXPECT_GT(requests.size(), 30u);
}

TEST(Descriptions, SpecTableGivesDenseIdsForAllSpecializations) {
  auto dev = device::make_device("A2", 1);
  const dsl::CallTable table = full_table(*dev);
  const trace::SpecTable spec = make_spec_table(table);
  EXPECT_GT(spec.size(), 30u);
  // Every plain syscall form resolves.
  for (uint32_t i = 0; i < static_cast<uint32_t>(kernel::Sys::kCount); ++i) {
    EXPECT_LT(spec.id_of(static_cast<kernel::Sys>(i), 0), 1u << 20);
  }
}

TEST(Descriptions, HalWeightsRescaledOntoSyscallScale) {
  auto dev = device::make_device("A1", 1);
  const dsl::CallTable table = full_table(*dev);
  double hal_min = 1e9, hal_max = 0;
  for (const dsl::CallDesc* d : table.all()) {
    if (!d->is_hal()) continue;
    hal_min = std::min(hal_min, d->weight);
    hal_max = std::max(hal_max, d->weight);
  }
  // Floor keeps rare methods generatable; cap keeps them comparable to
  // syscall vertex weights (~0.3..1.5).
  EXPECT_GE(hal_min, 0.29);
  EXPECT_LE(hal_max, 3.5);
}

TEST(Descriptions, ParamsAreInternallyConsistent) {
  auto dev = device::make_device("A1", 1);
  const dsl::CallTable table = full_table(*dev);
  for (const dsl::CallDesc* d : table.all()) {
    for (const auto& p : d->params) {
      switch (p.kind) {
        case dsl::ArgKind::kU8:
          EXPECT_LE(p.max, 0xffu) << d->name;
          [[fallthrough]];
        case dsl::ArgKind::kU16:
        case dsl::ArgKind::kU32:
        case dsl::ArgKind::kU64:
          EXPECT_LE(p.min, p.max) << d->name << "." << p.name;
          break;
        case dsl::ArgKind::kEnum:
        case dsl::ArgKind::kFlags:
          EXPECT_FALSE(p.choices.empty()) << d->name << "." << p.name;
          break;
        case dsl::ArgKind::kString:
        case dsl::ArgKind::kBlob:
          EXPECT_GT(p.max_len, 0u) << d->name << "." << p.name;
          break;
        case dsl::ArgKind::kHandle:
          EXPECT_FALSE(p.handle_type.empty()) << d->name << "." << p.name;
          break;
        case dsl::ArgKind::kBool:
          break;  // any 0/1 value is valid; nothing to cross-check
      }
    }
    if (!d->produces.empty()) {
      EXPECT_NE(d->produce_from, dsl::ProduceFrom::kNone) << d->name;
    }
  }
}

TEST(Descriptions, FdParamsComeFirstAndUseFdSlot) {
  auto dev = device::make_device("A1", 1);
  dsl::CallTable table;
  add_syscall_descriptions(table, *dev);
  for (const dsl::CallDesc* d : table.all()) {
    bool saw_fd_slot = false;
    for (size_t i = 0; i < d->params.size(); ++i) {
      if (d->params[i].slot == dsl::Slot::kFd) {
        EXPECT_EQ(i, 0u) << d->name;
        saw_fd_slot = true;
      }
    }
    const auto nr = static_cast<kernel::Sys>(d->sys_nr);
    if (nr == kernel::Sys::kIoctl || nr == kernel::Sys::kClose) {
      EXPECT_TRUE(saw_fd_slot) << d->name;
    }
  }
}

}  // namespace
}  // namespace df::core
