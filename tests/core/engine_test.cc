// Tests for the fuzzing engine: setup, stepping, feedback accounting,
// relation learning, ablation configs, crash minimization.
#include "core/fuzz/engine.h"

#include <gtest/gtest.h>

#include "device/catalog.h"

namespace df::core {
namespace {

TEST(Engine, SetupBuildsCallTableAndProbes) {
  auto dev = device::make_device("A1", 1);
  Engine eng(*dev, EngineConfig{});
  EXPECT_FALSE(eng.ready());
  eng.setup();
  EXPECT_TRUE(eng.ready());
  EXPECT_GT(eng.calls().size(), 50u);
  ASSERT_TRUE(eng.probe_result().has_value());
  EXPECT_EQ(eng.probe_result()->services.size(), dev->services().size());
  // HAL descriptions present.
  EXPECT_NE(eng.calls().find("hal$graphics.composite"), nullptr);
  // Relation vertices cover the whole table, E starts empty.
  EXPECT_EQ(eng.relations().vertex_count(), eng.calls().size());
  EXPECT_EQ(eng.relations().edge_count(), 0u);
}

TEST(Engine, NoProbeConfigSkipsHal) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.probe_hal = false;
  Engine eng(*dev, cfg);
  eng.setup();
  EXPECT_FALSE(eng.probe_result().has_value());
  EXPECT_EQ(eng.calls().find("hal$graphics.composite"), nullptr);
}

TEST(Engine, SteppingAccumulatesCoverageAndCorpus) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.seed = 3;
  Engine eng(*dev, cfg);
  eng.run(400);
  EXPECT_EQ(eng.executions(), 400u);
  EXPECT_GT(eng.kernel_coverage(), 50u);
  EXPECT_GT(eng.total_coverage(), eng.kernel_coverage());
  EXPECT_GT(eng.corpus().size(), 10u);
}

TEST(Engine, CoverageMonotone) {
  auto dev = device::make_device("B", 1);
  Engine eng(*dev, EngineConfig{});
  eng.setup();
  size_t prev = 0;
  for (int i = 0; i < 10; ++i) {
    eng.run(50);
    EXPECT_GE(eng.kernel_coverage(), prev);
    prev = eng.kernel_coverage();
  }
}

TEST(Engine, LearnsRelationsFromCoverage) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.seed = 3;
  Engine eng(*dev, cfg);
  eng.run(1500);
  EXPECT_GT(eng.relations().edge_count(), 5u);
}

TEST(Engine, NoRelConfigLearnsNothing) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.learn_relations = false;
  cfg.gen.use_relations = false;
  Engine eng(*dev, cfg);
  eng.run(800);
  EXPECT_EQ(eng.relations().edge_count(), 0u);
}

TEST(Engine, NoHCovConfigCollectsNoHalFeatures) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.hal_feedback = false;
  Engine eng(*dev, cfg);
  eng.run(500);
  EXPECT_EQ(eng.total_coverage(), eng.kernel_coverage());
}

TEST(Engine, FindsShallowBugQuickly) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.seed = 3;
  Engine eng(*dev, cfg);
  eng.run(4000);
  EXPECT_NE(eng.crashes().find("WARNING in rt1711_i2c_probe"), nullptr);
}

TEST(Engine, CrashMinimizationShrinksReproducer) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.seed = 3;
  Engine eng(*dev, cfg);
  eng.run(4000);
  const BugRecord* bug = eng.crashes().find("WARNING in rt1711_i2c_probe");
  ASSERT_NE(bug, nullptr);
  const dsl::Program min = eng.minimize_crash(*bug, 64);
  EXPECT_LE(min.size(), bug->repro.size());
  EXPECT_GE(min.size(), 1u);
}

TEST(Engine, DecayAppliedPeriodically) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.decay_every = 100;
  cfg.decay_factor = 0.01;  // aggressive: learned edges evaporate
  Engine eng(*dev, cfg);
  eng.run(1000);
  // With near-total decay every 100 execs, few edges survive.
  EXPECT_LT(eng.relations().edge_count(), 40u);
}

TEST(Engine, DeterministicCampaigns) {
  auto d1 = device::make_device("C2", 5);
  auto d2 = device::make_device("C2", 5);
  EngineConfig cfg;
  cfg.seed = 5;
  Engine e1(*d1, cfg), e2(*d2, cfg);
  e1.run(600);
  e2.run(600);
  EXPECT_EQ(e1.kernel_coverage(), e2.kernel_coverage());
  EXPECT_EQ(e1.total_coverage(), e2.total_coverage());
  EXPECT_EQ(e1.corpus().size(), e2.corpus().size());
  EXPECT_EQ(e1.crashes().unique_bugs(), e2.crashes().unique_bugs());
}

TEST(Engine, DifferentSeedsDiverge) {
  auto d1 = device::make_device("C2", 5);
  auto d2 = device::make_device("C2", 6);
  EngineConfig c1;
  c1.seed = 5;
  EngineConfig c2;
  c2.seed = 6;
  Engine e1(*d1, c1), e2(*d2, c2);
  e1.run(600);
  e2.run(600);
  EXPECT_NE(e1.total_coverage(), e2.total_coverage());
}

TEST(Engine, StepReportsNewFeatures) {
  auto dev = device::make_device("E", 1);
  Engine eng(*dev, EngineConfig{});
  eng.setup();
  size_t with_new = 0;
  for (int i = 0; i < 100; ++i) {
    if (eng.step().new_features > 0) ++with_new;
  }
  EXPECT_GT(with_new, 10u);  // early phase: most programs find something
}

}  // namespace
}  // namespace df::core
