// Tests for the fault-injection layer: FaultPlan determinism and the
// rate-0 no-op contract, the broker's resilient transport loop (retry,
// hang deadline, spontaneous reboot, reboot-after-KASAN), engine-level
// fault accounting, and the crash-time driver-state snapshot regression
// (provenance must not capture wiped post-reboot states).
#include "core/exec/faults.h"

#include <gtest/gtest.h>

#include <map>

#include "core/descriptions.h"
#include "core/exec/broker.h"
#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "device/fault_plan.h"
#include "dsl/parse.h"

namespace df::core {
namespace {

using device::FaultKind;
using device::FaultPlan;
using device::FaultPlanConfig;

// --- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlanConfig cfg;
  cfg.rate = 0.3;
  FaultPlan a(cfg, /*fallback_seed=*/42);
  FaultPlan b(cfg, /*fallback_seed=*/42);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.decisions(), 2000u);
}

TEST(FaultPlan, ZeroRateDrawsNothingFromTheStream) {
  FaultPlanConfig cfg;  // rate = 0
  FaultPlan plan(cfg, 7);
  const util::RngState before = plan.rng_state();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(plan.next(), FaultKind::kNone);
  const util::RngState after = plan.rng_state();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(before.s[i], after.s[i]);
  EXPECT_EQ(plan.decisions(), 100u);
}

TEST(FaultPlan, WeightsSelectKinds) {
  // Rate 1 + a single positive weight pins every decision to that kind.
  for (const auto& [want, hang, transport, reboot] :
       {std::tuple{FaultKind::kHang, 1.0, 0.0, 0.0},
        std::tuple{FaultKind::kTransportError, 0.0, 1.0, 0.0},
        std::tuple{FaultKind::kReboot, 0.0, 0.0, 1.0}}) {
    FaultPlanConfig cfg;
    cfg.rate = 1.0;
    cfg.hang_weight = hang;
    cfg.transport_weight = transport;
    cfg.reboot_weight = reboot;
    FaultPlan plan(cfg, 9);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(plan.next(), want);
  }
}

TEST(FaultPlan, DefaultWeightsFavorTransportErrors) {
  FaultPlanConfig cfg;
  cfg.rate = 1.0;  // defaults: transport 2x, hang == reboot
  FaultPlan plan(cfg, 11);
  std::map<FaultKind, int> hist;
  for (int i = 0; i < 4000; ++i) ++hist[plan.next()];
  EXPECT_GT(hist[FaultKind::kTransportError], hist[FaultKind::kHang]);
  EXPECT_GT(hist[FaultKind::kTransportError], hist[FaultKind::kReboot]);
  EXPECT_GT(hist[FaultKind::kHang], 0);
  EXPECT_GT(hist[FaultKind::kReboot], 0);
}

TEST(FaultPlan, RestoreReplaysTheSchedule) {
  FaultPlanConfig cfg;
  cfg.rate = 0.4;
  FaultPlan a(cfg, 13);
  for (int i = 0; i < 500; ++i) a.next();
  const util::RngState st = a.rng_state();
  const uint64_t n = a.decisions();
  std::vector<FaultKind> tail;
  for (int i = 0; i < 200; ++i) tail.push_back(a.next());

  FaultPlan b(cfg, 13);
  b.restore(st, n);
  EXPECT_EQ(b.decisions(), 500u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b.next(), tail[i]);
}

TEST(FaultSeed, DerivedNotEqualToEngineSeed) {
  EXPECT_NE(derive_fault_seed(1), 1u);
  EXPECT_NE(derive_fault_seed(1), derive_fault_seed(2));
  EXPECT_EQ(derive_fault_seed(5), derive_fault_seed(5));
}

// --- Broker transport loop -------------------------------------------------

class FaultBrokerTest : public ::testing::Test {
 protected:
  void use_device(const char* id) {
    broker_.reset();
    dev_ = device::make_device(id, 1);
    table_ = dsl::CallTable();
    add_syscall_descriptions(table_, *dev_);
    for (const auto& svc : dev_->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      add_hal_interface(table_, svc->descriptor(), svc->interface(), w);
    }
    spec_ = make_spec_table(table_);
    broker_ = std::make_unique<Broker>(*dev_, spec_);
  }

  dsl::Program parse(const std::string& text) {
    std::string err;
    auto prog = dsl::parse_program(text, table_, &err);
    EXPECT_TRUE(prog.has_value()) << err;
    return *prog;
  }

  std::unique_ptr<device::Device> dev_;
  dsl::CallTable table_;
  trace::SpecTable spec_;
  std::unique_ptr<Broker> broker_;
};

TEST_F(FaultBrokerTest, ZeroRateInjectorIsBitIdenticalToNoInjector) {
  const std::string text =
      "r0 = openat$rt1711()\n"
      "ioctl$RT1711_GET_STATUS(r0)\n"
      "hal$graphics.composite()\n";

  use_device("A1");
  const ExecResult plain = broker_->execute(parse(text));

  use_device("A1");
  FaultPlanConfig cfg;  // rate = 0
  FaultInjector inj(FaultPlan(cfg, derive_fault_seed(1)));
  broker_->set_fault_injector(&inj);
  const ExecResult faulted = broker_->execute(parse(text));

  EXPECT_EQ(plain.rets, faulted.rets);
  EXPECT_EQ(plain.features, faulted.features);
  EXPECT_EQ(plain.calls_executed, faulted.calls_executed);
  EXPECT_EQ(faulted.fault, FaultKind::kNone);
  EXPECT_FALSE(faulted.transport_error);
  EXPECT_EQ(faulted.retries, 0u);
  EXPECT_EQ(inj.totals().injected, 0u);
}

TEST_F(FaultBrokerTest, HangBlowsDeadlineAndForcesReboot) {
  use_device("A1");
  FaultPlanConfig cfg;
  cfg.rate = 1.0;
  cfg.hang_weight = 1.0;
  cfg.transport_weight = 0.0;
  cfg.reboot_weight = 0.0;
  FaultInjector inj(FaultPlan(cfg, 1));
  broker_->set_fault_injector(&inj);

  const ExecResult res = broker_->execute(parse("r0 = openat$rt1711()\n"));
  EXPECT_EQ(res.fault, FaultKind::kHang);
  EXPECT_TRUE(res.transport_error);
  EXPECT_TRUE(res.rebooted);
  EXPECT_TRUE(res.features.empty());

  const FaultTotals& t = inj.totals();
  EXPECT_EQ(t.hangs, 1u);
  EXPECT_EQ(t.reboots, 1u);  // every hang is also a reboot
  EXPECT_EQ(t.lost_execs, 1u);
  const TransportPolicy& p = inj.policy();
  EXPECT_EQ(t.recovery_virtual_us, p.hang_timeout_us + p.reboot_cost_us);
}

TEST_F(FaultBrokerTest, TransportErrorsRetryThenLose) {
  use_device("A1");
  FaultPlanConfig cfg;
  cfg.rate = 1.0;
  cfg.hang_weight = 0.0;
  cfg.transport_weight = 1.0;
  cfg.reboot_weight = 0.0;
  FaultInjector inj(FaultPlan(cfg, 1));
  broker_->set_fault_injector(&inj);

  const ExecResult res = broker_->execute(parse("r0 = openat$rt1711()\n"));
  const TransportPolicy& p = inj.policy();
  EXPECT_EQ(res.fault, FaultKind::kTransportError);
  EXPECT_TRUE(res.transport_error);
  EXPECT_EQ(res.retries, p.max_retries);
  EXPECT_FALSE(res.rebooted);  // transport loss does not wipe the device

  const FaultTotals& t = inj.totals();
  EXPECT_EQ(t.retries, p.max_retries);
  EXPECT_EQ(t.transport_errors, uint64_t{p.max_retries} + 1);
  EXPECT_EQ(t.lost_execs, 1u);
  // Exponential backoff: base + 2*base + 4*base for the three retries.
  EXPECT_EQ(t.recovery_virtual_us, p.backoff_base_us * 7);
}

TEST_F(FaultBrokerTest, RetriedExecutionCanStillSucceed) {
  use_device("A1");
  FaultPlanConfig cfg;
  cfg.rate = 0.5;
  cfg.hang_weight = 0.0;
  cfg.transport_weight = 1.0;
  cfg.reboot_weight = 0.0;
  FaultInjector inj(FaultPlan(cfg, 3));
  broker_->set_fault_injector(&inj);

  // At 50% transport-error rate some executions complete after >= 1 retry:
  // fault records the recovered error but the program still ran.
  bool saw_recovered = false;
  for (int i = 0; i < 200 && !saw_recovered; ++i) {
    const ExecResult res = broker_->execute(parse("r0 = openat$rt1711()\n"));
    if (res.retries > 0 && !res.transport_error) {
      EXPECT_EQ(res.fault, FaultKind::kTransportError);
      EXPECT_EQ(res.calls_executed, 1u);
      saw_recovered = true;
    }
  }
  EXPECT_TRUE(saw_recovered);
  EXPECT_GT(inj.totals().retries, 0u);
}

TEST_F(FaultBrokerTest, KasanReportTriggersPolicyReboot) {
  use_device("A2");
  FaultPlanConfig cfg;  // rate 0: only the KASAN policy is active
  FaultInjector inj(FaultPlan(cfg, 1));
  broker_->set_fault_injector(&inj);

  // Table II #7: KASAN invalid-access in hci_read_supported_codecs.
  ExecOptions opt;
  opt.reboot_on_bug = false;  // the fuzzer did not ask for a reboot...
  const ExecResult res = broker_->execute(
      parse("hal$bluetooth.enable()\n"
            "hal$bluetooth.setCodecs(0x28, blob\"\")\n"
            "hal$bluetooth.readCodecs()\n"),
      opt);
  ASSERT_TRUE(res.kernel_bug);
  EXPECT_TRUE(res.rebooted);  // ...but the KASAN policy rebooted anyway
  EXPECT_EQ(inj.totals().kasan_reboots, 1u);
  EXPECT_EQ(inj.totals().reboots, 1u);
}

// Regression (crash provenance vs reboot policy): the driver-state snapshot
// in ExecResult must be taken *before* the reboot wipes kernel state, so
// crash_<hash>.json records crash-time states, not freshly-booted ones.
TEST_F(FaultBrokerTest, CrashSnapshotTakenBeforeRebootWipesStates) {
  use_device("A1");
  // Table II #1: the rt1711 probe WARN. ATTACH advances the rt1711 state
  // machine before the bug fires, so crash-time state is distinguishable
  // from the post-reboot initial state.
  ExecOptions opt;
  opt.reboot_on_bug = true;
  const ExecResult res = broker_->execute(
      parse("r0 = openat$rt1711()\n"
            "ioctl$RT1711_ATTACH(r0, 0x2)\n"
            "ioctl$RT1711_RESET(r0)\n"),
      opt);
  ASSERT_TRUE(res.kernel_bug);
  ASSERT_TRUE(res.rebooted);
  ASSERT_FALSE(res.states_at_crash.empty());

  // Crash-time evidence survived the wipe: at least one stateful driver is
  // away from its initial state or shows recorded transitions.
  bool crash_state_visible = false;
  for (const auto& d : res.states_at_crash) {
    if (d.states.empty()) continue;
    uint64_t transitions = 0;
    for (const uint64_t m : d.matrix) transitions += m;
    if (d.current != 0 || transitions > 0) crash_state_visible = true;
  }
  EXPECT_TRUE(crash_state_visible);
}

// --- Engine-level accounting ----------------------------------------------

TEST(EngineFaults, RateZeroCreatesNoInjector) {
  auto dev = device::make_device("A1", 1);
  Engine eng(*dev, EngineConfig{});
  eng.setup();
  EXPECT_EQ(eng.fault_injector(), nullptr);
}

TEST(EngineFaults, FaultCampaignAccountsAndStillMakesProgress) {
  auto dev = device::make_device("A1", 1);
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.fault.rate = 0.02;
  Engine eng(*dev, cfg);
  eng.run(3000);
  ASSERT_NE(eng.fault_injector(), nullptr);
  const FaultTotals& t = eng.fault_injector()->totals();
  EXPECT_GT(t.injected, 0u);
  EXPECT_GT(t.lost_execs, 0u);
  EXPECT_GT(t.recovery_virtual_us, 0u);
  // Every lost execution still counts against the budget.
  EXPECT_EQ(eng.executions(), 3000u);
  // The campaign survives faults: coverage and corpus keep growing.
  EXPECT_GT(eng.kernel_coverage(), 50u);
  EXPECT_GT(eng.corpus().size(), 10u);
}

TEST(EngineFaults, FaultCampaignIsDeterministic) {
  auto run_once = [] {
    auto dev = device::make_device("B", 1);
    EngineConfig cfg;
    cfg.seed = 7;
    cfg.fault.rate = 0.01;
    Engine eng(*dev, cfg);
    eng.run(2000);
    const FaultTotals& t = eng.fault_injector()->totals();
    return std::tuple{eng.kernel_coverage(), eng.corpus().size(),
                      eng.crashes().unique_bugs(), t.injected,
                      t.lost_execs, t.reboots, t.recovery_virtual_us};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace df::core
