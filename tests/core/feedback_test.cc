#include "core/feedback/coverage.h"

#include <gtest/gtest.h>

namespace df::core {
namespace {

TEST(FeatureSet, AddNewReturnsOnlyFresh) {
  FeatureSet fs;
  const auto first = fs.add_new({1, 2, 3});
  EXPECT_EQ(first.size(), 3u);
  const auto second = fs.add_new({2, 3, 4});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 4u);
  EXPECT_EQ(fs.size(), 4u);
}

TEST(FeatureSet, SeparatesKernelAndHalCounts) {
  FeatureSet fs;
  const uint64_t kern = kernel::cov_feature(3, 7);
  const uint64_t hal = kernel::cov_feature(trace::kHalCovDriverId, 7);
  fs.add_new({kern, hal});
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs.kernel_size(), 1u);
  EXPECT_EQ(fs.hal_size(), 1u);
}

TEST(FeatureSet, Contains) {
  FeatureSet fs;
  fs.add_new({42});
  EXPECT_TRUE(fs.contains(42));
  EXPECT_FALSE(fs.contains(43));
}

TEST(FeatureSet, DuplicateInSameBatchCountedOnce) {
  FeatureSet fs;
  const auto fresh = fs.add_new({5, 5, 5});
  EXPECT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fs.size(), 1u);
}

Seed make_seed(std::string name, size_t feats, uint64_t exec = 0) {
  Seed s;
  dsl::Call c;
  static dsl::CallTable table;  // descs must outlive programs
  dsl::CallDesc d;
  d.name = std::move(name);
  c.desc = table.add(std::move(d));
  s.prog.calls.push_back(c);
  s.new_features = feats;
  s.exec_index = exec;
  return s;
}

TEST(Corpus, DedupsByProgramHash) {
  Corpus c;
  EXPECT_TRUE(c.add(make_seed("a", 1)));
  EXPECT_FALSE(c.add(make_seed("a", 5)));
  EXPECT_TRUE(c.add(make_seed("b", 1)));
  EXPECT_EQ(c.size(), 2u);
}

TEST(Corpus, PickPrefersRichSeeds) {
  Corpus c;
  c.add(make_seed("poor", 1));
  c.add(make_seed("rich", 200));
  util::Rng rng(1);
  int rich = 0;
  for (int i = 0; i < 2000; ++i) {
    if (c.pick(rng).new_features == 200) ++rich;
  }
  EXPECT_GT(rich, 1100);
}

TEST(Corpus, PickFatiguesOverusedSeeds) {
  Corpus c;
  c.add(make_seed("a", 8));
  c.add(make_seed("b", 8));
  util::Rng rng(2);
  // Burn picks; fatigue should spread selection across both.
  int a_picks = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c.pick(rng).new_features == 8 && &c.pick(rng) != nullptr) {
    }
  }
  // Count hits recorded on each seed: roughly balanced.
  const auto& s0 = c.at(0);
  const auto& s1 = c.at(1);
  const double ratio =
      static_cast<double>(s0.hits + 1) / static_cast<double>(s1.hits + 1);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  (void)a_picks;
}

TEST(Corpus, TracksPickCount) {
  Corpus c;
  c.add(make_seed("a", 1));
  util::Rng rng(3);
  c.pick(rng);
  c.pick(rng);
  EXPECT_EQ(c.total_picks(), 2u);
  EXPECT_EQ(c.at(0).hits, 2u);
}

}  // namespace
}  // namespace df::core
