// Parallel fleet execution (DESIGN.md §8): FleetExecutor worker resolution
// and the daemon-level determinism contract — per-device results are
// bit-identical for any worker count, and aggregation is ordered by device
// id rather than completion order. df_core_test runs under
// -DDF_SANITIZE=thread in the TSan recipe (scripts/run_sanitized.sh), which
// makes these tests the race detector for the whole telemetry layer.
#include "core/fuzz/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/fuzz/daemon.h"
#include "obs/analytics.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"

namespace df::core {
namespace {

// Everything a device campaign produces, as one comparable string:
// executions, coverage, corpus contents (via save_corpus below), learned
// relations, and the deduped bug list with first-occurrence indices.
std::string fleet_fingerprint(Daemon& d,
                              const std::vector<std::string>& ids) {
  std::string out;
  for (const auto& id : ids) {
    Engine* e = d.engine(id);
    out += id;
    out += ":execs=" + std::to_string(e->executions());
    out += ",kcov=" + std::to_string(e->kernel_coverage());
    out += ",cov=" + std::to_string(e->total_coverage());
    out += ",corpus=" + std::to_string(e->corpus().size());
    out += ",edges=" + std::to_string(e->relations().edge_count());
    for (const auto& b : e->crashes().bugs()) {
      out += ",bug=" + b.title + "@" + std::to_string(b.first_exec);
    }
    out += "\n";
  }
  return out;
}

// Per-device analytics (operator attribution, lineage, frontier) rendered
// without the wall-clock series: pure content, comparable across runs.
std::string analytics_json(Daemon& d, const std::vector<std::string>& ids) {
  obs::JsonWriter w;
  w.begin_array();
  for (const auto& id : ids) d.engine(id)->analytics_snapshot().write_json(w);
  w.end_array();
  return w.take();
}

TEST(FleetExecutor, ResolvesWorkerConvention) {
  EXPECT_EQ(FleetExecutor::resolve_workers(1), 1u);
  EXPECT_EQ(FleetExecutor::resolve_workers(4), 4u);
  EXPECT_GE(FleetExecutor::resolve_workers(0), 1u);  // hardware_concurrency
}

TEST(FleetExecutor, EmptyFleetAndZeroBudgetAreSafe) {
  std::vector<Engine*> none;
  size_t calls = 0;
  FleetExecutor::run(none, 100, 16, 4, [&](uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(FleetExecutor, SliceCallbackSeesCumulativeCounts) {
  DaemonConfig cfg;
  cfg.seed = 11;
  Daemon d(cfg);
  d.add_device("A1");
  d.add_device("B");
  std::vector<Engine*> engines{d.engine("A1"), d.engine("B")};
  for (Engine* e : engines) e->setup();
  std::vector<uint64_t> seen;
  FleetExecutor::run(engines, 300, 128, 2,
                     [&](uint64_t done) { seen.push_back(done); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{128, 256, 300}));
  EXPECT_EQ(d.engine("A1")->executions(), 300u);
  EXPECT_EQ(d.engine("B")->executions(), 300u);
}

// The tentpole contract: same seed, workers=4 per-engine results byte-
// identical to workers=1 — coverage, corpus (via save_corpus), relations,
// and bug titles with first_exec indices. Both campaigns run with the
// introspection server live (serve_port=0): serving is read-only and must
// not perturb results at any worker count.
TEST(Daemon, ParallelRunMatchesSequentialPerDevice) {
  const std::vector<std::string> ids{"A1", "B", "C1", "E"};
  auto campaign = [&](size_t workers, std::string* fp, std::string* corpus) {
    DaemonConfig cfg;
    cfg.seed = 9;
    cfg.workers = workers;
    cfg.serve_port = 0;
    Daemon d(cfg);
    for (const auto& id : ids) ASSERT_TRUE(d.add_device(id));
    d.run(1500, 128);
    *fp = fleet_fingerprint(d, ids);
    *corpus = d.save_corpus();
  };
  std::string fp_seq, corpus_seq, fp_par, corpus_par;
  campaign(1, &fp_seq, &corpus_seq);
  campaign(4, &fp_par, &corpus_par);
  EXPECT_FALSE(fp_seq.empty());
  EXPECT_EQ(fp_seq, fp_par);
  EXPECT_EQ(corpus_seq, corpus_par);
}

// Snapshot layer (DESIGN.md §13) under the same contract: for every
// combination of snapshots on/off, fault injection on/off, and worker
// count, per-device results are bit-identical — with the snapshot counters
// themselves part of the compared fingerprint, since a worker-dependent
// capture or fork schedule would be a determinism bug even if the coverage
// happened to come out the same.
TEST(Daemon, SnapshotGridKeepsPerDeviceDeterminism) {
  const std::vector<std::string> ids{"A1", "B", "E"};
  struct Outcome {
    std::string fp;
    uint64_t captures = 0;
  };
  auto campaign = [&](bool snapshots, double fault_rate, size_t workers) {
    DaemonConfig cfg;
    cfg.seed = 21;
    cfg.workers = workers;
    cfg.engine.use_snapshots = snapshots;
    cfg.engine.fault.rate = fault_rate;
    Daemon d(cfg);
    for (const auto& id : ids) EXPECT_TRUE(d.add_device(id));
    d.run(1500, 128);
    Outcome out;
    out.fp = fleet_fingerprint(d, ids);
    for (const auto& id : ids) {
      const SnapshotStats& s = d.engine(id)->snapshot_stats();
      out.fp += id + ":snap=" + std::to_string(s.captures) + "/" +
                std::to_string(s.restores) + "/" + std::to_string(s.forks) +
                "/" + std::to_string(s.fault_recoveries) + "\n";
      out.captures += s.captures;
    }
    out.fp += d.save_corpus();
    return out;
  };
  for (const bool snapshots : {false, true}) {
    for (const double fault_rate : {0.0, 0.01}) {
      const Outcome seq = campaign(snapshots, fault_rate, 1);
      const Outcome par = campaign(snapshots, fault_rate, 4);
      EXPECT_EQ(seq.fp, par.fp)
          << "snapshots=" << snapshots << " fault_rate=" << fault_rate;
      // The toggle really gates the layer: captures happen iff it is on.
      EXPECT_EQ(seq.captures > 0, snapshots)
          << "snapshots=" << snapshots << " fault_rate=" << fault_rate;
    }
  }
}

// Attribution is part of the determinism contract too: the per-operator
// yield tables, lineage digests, and frontier reports must come out
// identical whether the fleet ran on one worker or several — worker
// scheduling may interleave devices but never changes what any engine did.
TEST(Daemon, AttributionTablesIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> ids{"A1", "B", "E"};
  auto campaign = [&](size_t workers) {
    DaemonConfig cfg;
    cfg.seed = 17;
    cfg.workers = workers;
    Daemon d(cfg);
    for (const auto& id : ids) EXPECT_TRUE(d.add_device(id));
    d.run(1500, 128);
    return analytics_json(d, ids);
  };
  const std::string seq = campaign(1);
  const std::string par = campaign(4);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
  // The campaign must actually have produced attribution to compare.
  EXPECT_NE(seq.find("\"attempts\":"), std::string::npos);
  EXPECT_NE(seq.find("\"origin\":\"generate\""), std::string::npos);
}

// EngineConfig::analytics gates only the yield-table bookkeeping: turning
// it off must change no per-device result (coverage, corpus, bugs), and
// turning it on must not either — collection draws no randomness and
// changes no control flow.
TEST(Daemon, AnalyticsToggleChangesNoDeviceResult) {
  const std::vector<std::string> ids{"A1", "C1"};
  auto campaign = [&](bool analytics, std::string* fp, std::string* corpus,
                      bool* attributed) {
    DaemonConfig cfg;
    cfg.seed = 21;
    cfg.engine.analytics = analytics;
    Daemon d(cfg);
    for (const auto& id : ids) EXPECT_TRUE(d.add_device(id));
    d.run(1200, 128);
    *fp = fleet_fingerprint(d, ids);
    *corpus = d.save_corpus();
    *attributed = false;
    for (const auto& id : ids) {
      if (d.engine(id)->analytics_snapshot().operators.any()) {
        *attributed = true;
      }
    }
  };
  std::string fp_on, corpus_on, fp_off, corpus_off;
  bool attributed_on = false, attributed_off = false;
  campaign(true, &fp_on, &corpus_on, &attributed_on);
  campaign(false, &fp_off, &corpus_off, &attributed_off);
  EXPECT_EQ(fp_on, fp_off);
  EXPECT_EQ(corpus_on, corpus_off);
  EXPECT_TRUE(attributed_on);
  EXPECT_FALSE(attributed_off);  // the toggle gates the yield table
}

// Distillation side of the determinism contract (DESIGN.md §12): the
// checkpoint-boundary dry-run distill replays seeds on scratch devices
// only, so toggling it must change no per-device result — same fingerprint,
// same corpus text, whether the checkpoint pass analyzed the corpora or not.
TEST(Daemon, DistillAtCheckpointChangesNoDeviceResult) {
  const std::vector<std::string> ids{"A1", "C1"};
  auto campaign = [&](bool distill, std::string* fp, std::string* corpus) {
    DaemonConfig cfg;
    cfg.seed = 25;
    cfg.engine.distill_at_checkpoint = distill;
    Daemon d(cfg);
    for (const auto& id : ids) EXPECT_TRUE(d.add_device(id));
    d.run(800, 128);
    // A manual checkpoint mid-campaign: with the toggle on this runs the
    // dry-run distill pass on every engine; either way the rest of the
    // campaign must be bit-identical.
    const std::string ckpt = d.checkpoint_json();
    EXPECT_FALSE(ckpt.empty());
    d.run(1400, 128);
    *fp = fleet_fingerprint(d, ids);
    *corpus = d.save_corpus();
    // The toggle gates whether checkpointing left distill stats behind.
    for (const auto& id : ids) {
      EXPECT_EQ(d.engine(id)->has_distill_stats(), distill) << id;
    }
  };
  std::string fp_on, corpus_on, fp_off, corpus_off;
  campaign(true, &fp_on, &corpus_on);
  campaign(false, &fp_off, &corpus_off);
  EXPECT_FALSE(fp_on.empty());
  EXPECT_EQ(fp_on, fp_off);
  EXPECT_EQ(corpus_on, corpus_off);
}

// Distill stats are themselves part of the per-device contract: the same
// campaign distilled on one worker or four reports identical drop counts
// and footprint unions, dry-run and destructive alike — and the campaign
// results stay worker-count invariant with the checkpoint pass enabled.
TEST(Daemon, DistillResultsIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> ids{"A1", "B"};
  struct Outcome {
    std::string fp;
    std::string stats;
  };
  auto campaign = [&](size_t workers) {
    DaemonConfig cfg;
    cfg.seed = 29;
    cfg.workers = workers;
    cfg.engine.distill_at_checkpoint = true;
    Daemon d(cfg);
    for (const auto& id : ids) EXPECT_TRUE(d.add_device(id));
    d.run(1200, 128);
    Outcome out;
    for (const auto& [id, s] : d.distill_corpora(/*dry_run=*/true)) {
      out.stats += id + ":dry:" + std::to_string(s.before) + "->" +
                   std::to_string(s.after) + "/union=" +
                   std::to_string(s.footprint_union) +
                   (s.verified ? "/ok;" : "/BAD;");
      EXPECT_TRUE(s.verified) << id;
    }
    for (const auto& [id, s] : d.distill_corpora(/*dry_run=*/false)) {
      out.stats += id + ":real:" + std::to_string(s.before) + "->" +
                   std::to_string(s.after) +
                   (s.verified ? "/ok;" : "/BAD;");
      EXPECT_TRUE(s.verified) << id;
    }
    out.fp = fleet_fingerprint(d, ids);
    return out;
  };
  const Outcome seq = campaign(1);
  const Outcome par = campaign(4);
  EXPECT_FALSE(seq.stats.empty());
  EXPECT_EQ(seq.fp, par.fp);
  EXPECT_EQ(seq.stats, par.stats);
}

TEST(Daemon, AggregationIsOrderedByDeviceIdNotInsertionOrder) {
  DaemonConfig cfg;
  cfg.seed = 3;
  cfg.workers = 2;
  Daemon d(cfg);
  // Insert out of id order: aggregation must still come out sorted.
  ASSERT_TRUE(d.add_device("E"));
  ASSERT_TRUE(d.add_device("A1"));
  ASSERT_TRUE(d.add_device("B"));
  d.run(4000, 256);

  const auto bugs = d.all_bugs();
  ASSERT_FALSE(bugs.empty());
  for (size_t i = 1; i < bugs.size(); ++i) {
    EXPECT_LE(bugs[i - 1].device_id, bugs[i].device_id);
  }

  const std::string corpus = d.save_corpus();
  const size_t pos_a = corpus.find("# device A1");
  const size_t pos_b = corpus.find("# device B");
  const size_t pos_e = corpus.find("# device E");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_e, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_e);
}

// Reporter sampling happens at slice barriers: the cadence (baseline, every
// interval, final partial point) must be identical to the sequential
// daemon's regardless of worker count.
TEST(Daemon, ParallelSamplingKeepsTheSequentialCadence) {
  DaemonConfig cfg;
  cfg.seed = 5;
  cfg.workers = 4;
  Daemon d(cfg);
  obs::StatsReporter rep(128);
  d.attach_reporter(&rep);
  d.add_device("A1");
  d.add_device("B");
  d.run(600, 64);
  ASSERT_EQ(rep.devices().size(), 2u);
  for (const auto& dev : rep.devices()) {
    const auto& pts = rep.series(dev);
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_EQ(pts.front().sample.executions, 0u);
    EXPECT_EQ(pts[1].sample.executions, 128u);
    EXPECT_EQ(pts.back().sample.executions, 600u);
  }
}

// Full telemetry attached across worker threads: per-device counters must
// come out exact (atomics), and milestone traces non-empty. Under the TSan
// build this is the race test for Registry/TraceSink/FlightRecorder.
TEST(Daemon, ParallelTelemetryCountsAreExact) {
  DaemonConfig cfg;
  cfg.seed = 7;
  cfg.workers = 3;
  Daemon d(cfg);
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  obs.flight.enable(16);
  obs::StatsReporter rep(256);
  d.attach_observability(&obs);
  d.attach_reporter(&rep);
  const std::vector<std::string> ids{"A1", "C1", "D"};
  for (const auto& id : ids) ASSERT_TRUE(d.add_device(id));
  d.run(900, 128);
  const auto snap = obs.registry.snapshot();
  for (const auto& id : ids) {
    const auto* execs = snap.find_counter("engine.executions", id);
    ASSERT_NE(execs, nullptr) << id;
    EXPECT_EQ(execs->value, 900u) << id;
  }
  EXPECT_GT(obs.trace.size(), 0u);
  EXPECT_GT(obs.flight.recorded(), 0u);
}

// Utilization profiler (DESIGN.md §10): per-worker busy/idle/barrier
// accounting accumulates across run() with one entry per worker, and the
// relaxed-atomic counters surface in the registry under fleet.worker.*.
TEST(Daemon, UtilizationProfilerCoversEveryWorker) {
  DaemonConfig cfg;
  cfg.seed = 13;
  cfg.workers = 2;
  Daemon d(cfg);
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  d.attach_observability(&obs);
  ASSERT_TRUE(d.add_device("A1"));
  ASSERT_TRUE(d.add_device("B"));
  ASSERT_TRUE(d.add_device("C1"));
  d.run(600, 128);

  const FleetUtilization& util = d.utilization();
  ASSERT_EQ(util.workers.size(), 2u);
  for (const auto& w : util.workers) {
    EXPECT_GT(w.rounds, 0u);
    EXPECT_GT(w.busy_ns, 0u);
  }
  // max - min of per-worker busy time; with both workers busy it cannot
  // exceed the busier worker's total.
  EXPECT_LE(util.busy_imbalance_ns(),
            std::max(util.workers[0].busy_ns, util.workers[1].busy_ns));

  const auto snap = obs.registry.snapshot();
  const auto* busy = snap.find_counter("fleet.worker.busy_ns", "w0");
  ASSERT_NE(busy, nullptr);
  EXPECT_GT(busy->value, 0u);
  ASSERT_NE(snap.find_counter("fleet.worker.idle_ns", "w1"), nullptr);
  ASSERT_NE(snap.find_counter("fleet.worker.barrier_ns", "w1"), nullptr);
  bool found_imbalance = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "fleet.worker.imbalance_ns") found_imbalance = true;
  }
  EXPECT_TRUE(found_imbalance);
}

TEST(Daemon, SequentialUtilizationHasOneWorker) {
  DaemonConfig cfg;
  cfg.seed = 4;
  cfg.workers = 1;
  Daemon d(cfg);
  ASSERT_TRUE(d.add_device("A1"));
  d.run(300, 128);
  const FleetUtilization& util = d.utilization();
  ASSERT_EQ(util.workers.size(), 1u);
  EXPECT_GT(util.workers[0].rounds, 0u);
  EXPECT_GT(util.workers[0].busy_ns, 0u);
  EXPECT_EQ(util.busy_imbalance_ns(), 0u);
}

TEST(FleetUtilization, MergeAddsIndexWise) {
  FleetUtilization a;
  a.workers = {{100, 10, 1, 2}, {50, 5, 2, 2}};
  FleetUtilization b;
  b.workers = {{20, 1, 1, 1}};
  a.merge(b);
  ASSERT_EQ(a.workers.size(), 2u);
  EXPECT_EQ(a.workers[0].busy_ns, 120u);
  EXPECT_EQ(a.workers[0].idle_ns, 11u);
  EXPECT_EQ(a.workers[0].rounds, 3u);
  EXPECT_EQ(a.workers[1].busy_ns, 50u);
  EXPECT_EQ(a.busy_imbalance_ns(), 70u);
  FleetUtilization empty;
  EXPECT_EQ(empty.busy_imbalance_ns(), 0u);
}

TEST(Daemon, WorkersZeroResolvesToHardwareConcurrency) {
  DaemonConfig cfg;
  cfg.seed = 2;
  cfg.workers = 0;
  Daemon d(cfg);
  d.add_device("C2");
  d.add_device("D");
  d.run(200, 64);
  EXPECT_EQ(d.engine("C2")->executions(), 200u);
  EXPECT_EQ(d.engine("D")->executions(), 200u);
}

}  // namespace
}  // namespace df::core
