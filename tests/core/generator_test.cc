// Tests for relational payload generation (§IV-C).
#include "core/gen/generator.h"

#include <gtest/gtest.h>

#include "core/descriptions.h"
#include "device/catalog.h"

namespace df::core {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = device::make_device("A1", 1);
    add_syscall_descriptions(table_, *dev_);
    for (const auto& svc : dev_->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      add_hal_interface(table_, svc->descriptor(), svc->interface(), w);
    }
    for (const dsl::CallDesc* d : table_.all()) {
      rel_.add_vertex(d, d->weight);
    }
  }

  Generator make_gen(GenConfig cfg = {}) {
    return Generator(table_, rel_, corpus_, rng_, cfg);
  }

  std::unique_ptr<device::Device> dev_;
  dsl::CallTable table_;
  RelationGraph rel_;
  Corpus corpus_;
  util::Rng rng_{1};
};

TEST_F(GeneratorTest, FreshProgramsAreValid) {
  Generator gen = make_gen();
  for (int i = 0; i < 500; ++i) {
    const dsl::Program p = gen.generate_fresh();
    EXPECT_FALSE(p.empty());
    EXPECT_TRUE(p.valid());
    EXPECT_LE(p.size(), gen.config().max_total_calls);
  }
}

TEST_F(GeneratorTest, ProducersInsertedForHandles) {
  Generator gen = make_gen();
  int resolved = 0, handles = 0;
  for (int i = 0; i < 300; ++i) {
    const dsl::Program p = gen.generate_fresh();
    for (const auto& c : p.calls) {
      for (size_t a = 0; a < c.args.size(); ++a) {
        if (c.desc->params[a].kind != dsl::ArgKind::kHandle) continue;
        ++handles;
        if (c.args[a].ref != dsl::Value::kNoRef) ++resolved;
      }
    }
  }
  ASSERT_GT(handles, 0);
  // The vast majority of handle args must be backed by a producer.
  EXPECT_GT(resolved, handles * 9 / 10);
}

TEST_F(GeneratorTest, ProducerChainsRecursive) {
  // MEM_POOL needs a mali_ctx, which needs fd_mali: both must be inserted.
  auto dev2 = device::make_device("A2", 1);
  dsl::CallTable t2;
  add_syscall_descriptions(t2, *dev2);
  RelationGraph r2;
  for (const dsl::CallDesc* d : t2.all()) r2.add_vertex(d, d->weight);
  Corpus c2;
  Generator gen(t2, r2, c2, rng_, {});
  bool found_chain = false;
  for (int i = 0; i < 2000 && !found_chain; ++i) {
    dsl::Program p = gen.generate_fresh();
    for (size_t k = 0; k < p.calls.size(); ++k) {
      if (p.calls[k].desc->name != "ioctl$MALI_MEM_POOL") continue;
      const auto& args = p.calls[k].args;
      if (args[0].ref != dsl::Value::kNoRef &&
          args[1].ref != dsl::Value::kNoRef) {
        found_chain = true;
      }
    }
  }
  EXPECT_TRUE(found_chain);
}

TEST_F(GeneratorTest, RelationsShapeGeneration) {
  // Teach a strong relation and verify generated programs follow it.
  const dsl::CallDesc* a = table_.find("ioctl$TCPC_INIT");
  const dsl::CallDesc* b = table_.find("ioctl$TCPC_SET_MODE");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  rel_.add_vertex(a, 5.0);  // well-ranked base invocation
  rel_.observe_relation(a, b);
  Generator gen = make_gen();
  int followed = 0;
  for (int i = 0; i < 3000; ++i) {
    const dsl::Program p = gen.generate_fresh();
    for (size_t k = 0; k + 1 < p.calls.size(); ++k) {
      if (p.calls[k].desc == a && p.calls[k + 1].desc == b) ++followed;
    }
  }
  EXPECT_GT(followed, 30);
}

TEST_F(GeneratorTest, NoRelModeIgnoresEdges) {
  const dsl::CallDesc* a = table_.find("ioctl$TCPC_INIT");
  const dsl::CallDesc* b = table_.find("ioctl$TCPC_SET_MODE");
  rel_.observe_relation(a, b);
  GenConfig cfg;
  cfg.use_relations = false;
  Generator gen = make_gen(cfg);
  // With ~130 calls, random adjacency of this exact pair is rare.
  int followed = 0;
  for (int i = 0; i < 1500; ++i) {
    const dsl::Program p = gen.generate_fresh();
    for (size_t k = 0; k + 1 < p.calls.size(); ++k) {
      if (p.calls[k].desc == a && p.calls[k + 1].desc == b) ++followed;
    }
  }
  EXPECT_LT(followed, 8);
}

TEST_F(GeneratorTest, IoctlOnlyModeBlocksOtherSyscalls) {
  GenConfig cfg;
  cfg.ioctl_only = true;
  Generator gen = make_gen(cfg);
  for (int i = 0; i < 300; ++i) {
    const dsl::Program p = gen.generate_fresh();
    for (const auto& c : p.calls) {
      if (c.desc->is_hal()) continue;
      const auto nr = static_cast<kernel::Sys>(c.desc->sys_nr);
      EXPECT_TRUE(nr == kernel::Sys::kIoctl || nr == kernel::Sys::kOpenAt ||
                  nr == kernel::Sys::kClose)
          << c.desc->name;
    }
  }
}

TEST_F(GeneratorTest, NoHalModeBlocksHalCalls) {
  GenConfig cfg;
  cfg.use_hal = false;
  Generator gen = make_gen(cfg);
  for (int i = 0; i < 300; ++i) {
    const dsl::Program p = gen.generate_fresh();
    for (const auto& c : p.calls) EXPECT_FALSE(c.desc->is_hal());
  }
}

TEST_F(GeneratorTest, MutationsPreserveValidity) {
  Generator gen = make_gen();
  dsl::Program seed = gen.generate_fresh();
  for (int i = 0; i < 500; ++i) {
    seed = gen.mutate(seed);
    EXPECT_TRUE(seed.valid());
    EXPECT_LE(seed.size(), gen.config().max_total_calls);
    EXPECT_FALSE(seed.empty());
  }
}

TEST_F(GeneratorTest, MutationEventuallyChangesProgram) {
  Generator gen = make_gen();
  const dsl::Program seed = gen.generate_fresh();
  const uint64_t h = dsl::program_hash(seed);
  bool changed = false;
  for (int i = 0; i < 20 && !changed; ++i) {
    changed = dsl::program_hash(gen.mutate(seed)) != h;
  }
  EXPECT_TRUE(changed);
}

TEST_F(GeneratorTest, NextUsesCorpusWhenAvailable) {
  Generator gen = make_gen();
  Seed s;
  s.prog = gen.generate_fresh();
  s.new_features = 10;
  corpus_.add(std::move(s));
  for (int i = 0; i < 100; ++i) {
    const dsl::Program p = gen.next();
    EXPECT_TRUE(p.valid());
  }
  EXPECT_GT(corpus_.total_picks(), 20u);  // mutation path exercised
}

TEST_F(GeneratorTest, WeightedBasePrefersHeavyCalls) {
  // hal$graphics.composite has a large probed weight; close$* are light.
  Generator gen = make_gen();
  std::map<std::string, int> base_counts;
  for (int i = 0; i < 4000; ++i) {
    const dsl::Program p = gen.generate_fresh();
    if (!p.empty()) ++base_counts[p.calls[0].desc->name];
  }
  int closes = 0;
  for (const auto& [name, n] : base_counts) {
    if (name.rfind("close$", 0) == 0) closes += n;
  }
  // 11 close descs with weight 0.3 each vs ~120 others at ~1.0+.
  EXPECT_LT(closes, 400);
}

TEST_F(GeneratorTest, DeterministicGivenSameRngState) {
  util::Rng r1(5), r2(5);
  Corpus c1, c2;
  Generator g1(table_, rel_, c1, r1, {});
  Generator g2(table_, rel_, c2, r2, {});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dsl::program_hash(g1.next()), dsl::program_hash(g2.next()));
  }
}

}  // namespace
}  // namespace df::core
