#include "core/gen/minimize.h"

#include <gtest/gtest.h>

namespace df::core {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dsl::CallDesc open;
    open.name = "open";
    open.produces = "fd";
    open_ = table_.add(std::move(open));

    dsl::CallDesc use;
    use.name = "use";
    dsl::ParamDesc fd;
    fd.kind = dsl::ArgKind::kHandle;
    fd.handle_type = "fd";
    dsl::ParamDesc arg;
    arg.kind = dsl::ArgKind::kU32;
    arg.min = 0;
    arg.max = 100;
    use.params = {fd, arg};
    use_ = table_.add(std::move(use));

    dsl::CallDesc nop;
    nop.name = "nop";
    dsl::ParamDesc blob;
    blob.kind = dsl::ArgKind::kBlob;
    blob.max_len = 16;
    nop.params = {blob};
    nop_ = table_.add(std::move(nop));
  }

  dsl::Call make(const dsl::CallDesc* d, uint64_t scalar = 0,
                 int32_t ref = dsl::Value::kNoRef) {
    dsl::Call c;
    c.desc = d;
    for (const auto& p : d->params) {
      dsl::Value v;
      if (p.kind == dsl::ArgKind::kHandle) {
        v.ref = ref;
      } else if (p.kind == dsl::ArgKind::kBlob) {
        v.bytes = {1, 2, 3, 4};
      } else {
        v.scalar = scalar;
      }
      c.args.push_back(v);
    }
    return c;
  }

  dsl::CallTable table_;
  const dsl::CallDesc* open_ = nullptr;
  const dsl::CallDesc* use_ = nullptr;
  const dsl::CallDesc* nop_ = nullptr;
};

TEST_F(MinimizeTest, RemovesIrrelevantCalls) {
  dsl::Program p;
  p.calls.push_back(make(nop_));
  p.calls.push_back(make(open_));
  p.calls.push_back(make(nop_));
  p.calls.push_back(make(use_, 42, 1));
  p.calls.push_back(make(nop_));

  // Interesting iff a `use` call with scalar 42 follows an `open`.
  auto oracle = [](const dsl::Program& cand) {
    for (size_t i = 0; i < cand.calls.size(); ++i) {
      const auto& c = cand.calls[i];
      if (c.desc->name != "use" || c.args[1].scalar != 42) continue;
      const int32_t r = c.args[0].ref;
      if (r != dsl::Value::kNoRef && cand.calls[r].desc->name == "open") {
        return true;
      }
    }
    return false;
  };

  MinimizeStats stats;
  const dsl::Program min = minimize(p, oracle, 100, &stats);
  EXPECT_EQ(min.size(), 2u);
  EXPECT_EQ(min.calls[0].desc->name, "open");
  EXPECT_EQ(min.calls[1].desc->name, "use");
  EXPECT_EQ(stats.calls_removed, 3u);
  EXPECT_TRUE(min.valid());
}

TEST_F(MinimizeTest, SimplifiesArguments) {
  dsl::Program p;
  p.calls.push_back(make(open_));
  p.calls.push_back(make(use_, 87, 0));
  // Scalar irrelevant to the oracle: must be zeroed to the minimum.
  auto oracle = [](const dsl::Program& cand) {
    return cand.size() == 2 && cand.calls[1].desc->name == "use";
  };
  MinimizeStats stats;
  const dsl::Program min = minimize(p, oracle, 100, &stats);
  EXPECT_EQ(min.calls[1].args[1].scalar, 0u);
  EXPECT_GT(stats.args_simplified, 0u);
}

TEST_F(MinimizeTest, KeepsEssentialArgument) {
  dsl::Program p;
  p.calls.push_back(make(use_, 87));
  auto oracle = [](const dsl::Program& cand) {
    return !cand.empty() && cand.calls[0].args[1].scalar == 87;
  };
  const dsl::Program min = minimize(p, oracle, 100);
  EXPECT_EQ(min.calls[0].args[1].scalar, 87u);
}

TEST_F(MinimizeTest, EmptiesIrrelevantBlobs) {
  dsl::Program p;
  p.calls.push_back(make(nop_));
  auto oracle = [](const dsl::Program& cand) { return !cand.empty(); };
  const dsl::Program min = minimize(p, oracle, 100);
  EXPECT_TRUE(min.calls[0].args[0].bytes.empty());
}

TEST_F(MinimizeTest, RespectsBudget) {
  dsl::Program p;
  for (int i = 0; i < 20; ++i) p.calls.push_back(make(nop_));
  int oracle_calls = 0;
  auto oracle = [&](const dsl::Program&) {
    ++oracle_calls;
    return false;  // nothing removable
  };
  MinimizeStats stats;
  minimize(p, oracle, 5, &stats);
  EXPECT_LE(stats.oracle_calls, 5u);
  EXPECT_EQ(oracle_calls, 5);
}

TEST_F(MinimizeTest, NeverReturnsFailingProgram) {
  dsl::Program p;
  p.calls.push_back(make(open_));
  p.calls.push_back(make(use_, 1, 0));
  auto oracle = [](const dsl::Program& cand) { return cand.size() >= 2; };
  const dsl::Program min = minimize(p, oracle, 100);
  EXPECT_TRUE(oracle(min));
}

TEST_F(MinimizeTest, SingleCallProgramUntouchedByPhase1) {
  dsl::Program p;
  p.calls.push_back(make(use_, 3));
  auto oracle = [](const dsl::Program& cand) { return !cand.empty(); };
  const dsl::Program min = minimize(p, oracle, 100);
  EXPECT_EQ(min.size(), 1u);
}

}  // namespace
}  // namespace df::core
