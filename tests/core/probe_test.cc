// Tests for the pre-testing HAL probing pass (§IV-B).
#include "core/probe/hal_probe.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/descriptions.h"
#include "device/catalog.h"

namespace df::core {
namespace {

class ProbeTest : public ::testing::Test {
 protected:
  void SetUp() override { dev_ = device::make_device("A1", 1); }
  std::unique_ptr<device::Device> dev_;
};

TEST_F(ProbeTest, EnumeratesAllServices) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(100);
  EXPECT_EQ(r.services.size(), dev_->services().size());
}

TEST_F(ProbeTest, ExtractsEveryExposedInterface) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(100);
  size_t expected = 0;
  for (const auto& svc : dev_->services()) {
    expected += svc->interface().methods.size();
  }
  EXPECT_EQ(r.methods.size(), expected);
  for (const auto& m : r.methods) {
    EXPECT_TRUE(m.responsive) << m.service << "." << m.desc.name;
  }
}

TEST_F(ProbeTest, ObservesBinderTraffic) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(200);
  EXPECT_GT(r.binder_transactions_observed, r.methods.size());
  EXPECT_EQ(r.workload_invocations, 200u);
}

TEST_F(ProbeTest, TrialPokesObserveHalSyscalls) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(0);  // pokes only, no workload
  uint64_t total_syscalls = 0;
  for (const auto& m : r.methods) total_syscalls += m.trial_syscalls;
  EXPECT_GT(total_syscalls, 0u);
}

TEST_F(ProbeTest, WeightsAreNormalizedOccurrences) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(2000);
  // Per service the weights are probabilities: in (0,1], sum <= ~1.
  std::map<std::string, double> sums;
  for (const auto& m : r.methods) {
    EXPECT_GT(m.weight, 0.0);
    EXPECT_LE(m.weight, 1.0);
    sums[m.service] += m.weight;
  }
  for (const auto& [svc, sum] : sums) {
    EXPECT_LE(sum, 1.5) << svc;  // floor terms can push slightly over 1
    EXPECT_GT(sum, 0.5) << svc;
  }
}

TEST_F(ProbeTest, HighUsageMethodsRankHigher) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(4000);
  // Graphics: composite (weight 10) must outrank setColorMode (0.5).
  double composite = 0, color_mode = 0;
  for (const auto& m : r.methods) {
    if (m.service != "android.hardware.graphics.composer@sim") continue;
    if (m.desc.name == "composite") composite = m.weight;
    if (m.desc.name == "setColorMode") color_mode = m.weight;
  }
  EXPECT_GT(composite, color_mode * 2);
}

TEST_F(ProbeTest, MethodWeightsForFiltersByService) {
  HalProber prober(*dev_, 1);
  const ProbeResult r = prober.probe(500);
  const auto weights =
      r.method_weights_for("android.hardware.sensors@sim");
  EXPECT_EQ(weights.size(),
            dev_->find_service("android.hardware.sensors@sim")
                ->interface()
                .methods.size());
}

TEST_F(ProbeTest, DeterministicForSameSeed) {
  auto d1 = device::make_device("A1", 7);
  auto d2 = device::make_device("A1", 7);
  HalProber p1(*d1, 3), p2(*d2, 3);
  const ProbeResult r1 = p1.probe(500);
  const ProbeResult r2 = p2.probe(500);
  ASSERT_EQ(r1.methods.size(), r2.methods.size());
  for (size_t i = 0; i < r1.methods.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.methods[i].weight, r2.methods[i].weight);
  }
}

TEST_F(ProbeTest, DeviceSurvivesProbing) {
  HalProber prober(*dev_, 1);
  prober.probe(2000);
  // Probing restarts anything it crashed and reboots on panics.
  EXPECT_FALSE(dev_->kernel().panicked());
  for (const auto& svc : dev_->services()) EXPECT_FALSE(svc->dead());
}

TEST(ProbeDescriptions, HalInterfacesConvertToDsl) {
  auto dev = device::make_device("A1", 1);
  HalProber prober(*dev, 1);
  const ProbeResult r = prober.probe(300);
  dsl::CallTable table;
  std::set<std::string> done;
  for (const auto& m : r.methods) {
    if (!done.insert(m.service).second) continue;
    add_hal_interface(table, m.service,
                      *dev->service_manager().get_interface(m.service),
                      r.method_weights_for(m.service));
  }
  EXPECT_EQ(table.size(), r.methods.size());
  const dsl::CallDesc* create = table.find("hal$graphics.createLayer");
  ASSERT_NE(create, nullptr);
  EXPECT_TRUE(create->is_hal());
  EXPECT_EQ(create->produces, "hal_graphics_layer");
  EXPECT_GT(create->weight, 0.0);
  const dsl::CallDesc* set_buf = table.find("hal$graphics.setLayerBuffer");
  ASSERT_NE(set_buf, nullptr);
  EXPECT_TRUE(set_buf->consumes("hal_graphics_layer"));
}

TEST(ProbeDescriptions, ServiceAlias) {
  EXPECT_EQ(service_alias("android.hardware.graphics.composer@sim"),
            "graphics");
  EXPECT_EQ(service_alias("android.hardware.bluetooth@sim"), "bluetooth");
  EXPECT_EQ(service_alias("custom.vendor.thing"), "custom");
}

}  // namespace
}  // namespace df::core
