// Tests for the relation graph (§IV-C) including the Eq. (1) invariants.
#include "core/relation/graph.h"

#include <gtest/gtest.h>

namespace df::core {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      dsl::CallDesc d;
      d.name = "call" + std::to_string(i);
      descs_.push_back(table_.add(std::move(d)));
      graph_.add_vertex(descs_.back(), 0.2 * (i + 1));
    }
  }

  dsl::CallTable table_;
  std::vector<const dsl::CallDesc*> descs_;
  RelationGraph graph_;
  util::Rng rng_{1};
};

TEST_F(RelationTest, StartsWithNoEdges) {
  EXPECT_EQ(graph_.vertex_count(), 5u);
  EXPECT_EQ(graph_.edge_count(), 0u);
  EXPECT_EQ(graph_.edge_weight(descs_[0], descs_[1]), 0.0);
}

TEST_F(RelationTest, FirstRelationGetsFullWeight) {
  graph_.observe_relation(descs_[0], descs_[1]);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[0], descs_[1]), 1.0);
  EXPECT_EQ(graph_.edge_count(), 1u);
}

TEST_F(RelationTest, Eq1HalvesCompetitorsAndConservesMass) {
  graph_.observe_relation(descs_[0], descs_[2]);
  graph_.observe_relation(descs_[1], descs_[2]);
  // Old edge halved to 0.5; new edge = 1 - 0.5 = 0.5.
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[0], descs_[2]), 0.5);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[1], descs_[2]), 0.5);
  EXPECT_DOUBLE_EQ(graph_.in_weight_sum(descs_[2]), 1.0);

  graph_.observe_relation(descs_[3], descs_[2]);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[0], descs_[2]), 0.25);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[1], descs_[2]), 0.25);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[3], descs_[2]), 0.5);
  EXPECT_DOUBLE_EQ(graph_.in_weight_sum(descs_[2]), 1.0);
}

TEST_F(RelationTest, ReobservingRefreshesConfidence) {
  graph_.observe_relation(descs_[0], descs_[2]);
  graph_.observe_relation(descs_[1], descs_[2]);
  graph_.observe_relation(descs_[0], descs_[2]);  // again
  // b=2: edge from 1 halved to 0.25; edge from 0 becomes 0.75.
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[0], descs_[2]), 0.75);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[1], descs_[2]), 0.25);
  EXPECT_EQ(graph_.edge_count(), 2u);  // no duplicate edge
}

TEST_F(RelationTest, SelfAndUnknownRelationsIgnored) {
  graph_.observe_relation(descs_[0], descs_[0]);
  graph_.observe_relation(descs_[0], nullptr);
  dsl::CallDesc foreign;
  foreign.name = "foreign";
  graph_.observe_relation(descs_[0], &foreign);
  EXPECT_EQ(graph_.edge_count(), 0u);
}

TEST_F(RelationTest, DecayShrinksAndPrunes) {
  graph_.observe_relation(descs_[0], descs_[1]);
  graph_.decay(0.5);
  EXPECT_DOUBLE_EQ(graph_.edge_weight(descs_[0], descs_[1]), 0.5);
  for (int i = 0; i < 40; ++i) graph_.decay(0.5);
  EXPECT_EQ(graph_.edge_count(), 0u);  // pruned below epsilon
}

TEST_F(RelationTest, DecayThenRelearnRestoresMass) {
  graph_.observe_relation(descs_[0], descs_[1]);
  graph_.decay(0.5);
  graph_.observe_relation(descs_[2], descs_[1]);
  // 0.25 (halved decayed) + 0.75 (new) = 1.
  EXPECT_DOUBLE_EQ(graph_.in_weight_sum(descs_[1]), 1.0);
}

TEST_F(RelationTest, PickBaseFollowsVertexWeights) {
  // descs_[4] has weight 1.0, descs_[0] has 0.2.
  int heavy = 0, light = 0;
  for (int i = 0; i < 5000; ++i) {
    const dsl::CallDesc* c = graph_.pick_base(rng_);
    if (c == descs_[4]) ++heavy;
    if (c == descs_[0]) ++light;
  }
  EXPECT_GT(heavy, light * 2);
}

TEST_F(RelationTest, PickBaseEmptyGraph) {
  RelationGraph empty;
  EXPECT_EQ(empty.pick_base(rng_), nullptr);
}

TEST_F(RelationTest, PickNextStopsWithoutEdges) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(graph_.pick_next(descs_[0], rng_), nullptr);
  }
}

TEST_F(RelationTest, PickNextFollowsEdgesMostly) {
  graph_.observe_relation(descs_[0], descs_[1]);
  int followed = 0, stopped = 0;
  for (int i = 0; i < 2000; ++i) {
    const dsl::CallDesc* n = graph_.pick_next(descs_[0], rng_);
    if (n == descs_[1]) ++followed;
    if (n == nullptr) ++stopped;
  }
  EXPECT_GT(followed, 1000);  // weight 1.0 vs stop floor 0.15
  EXPECT_GT(stopped, 50);     // the stop floor keeps walks finite
}

TEST_F(RelationTest, VertexWeightFloor) {
  dsl::CallDesc d;
  d.name = "tiny";
  const dsl::CallDesc* tiny = table_.add(std::move(d));
  graph_.add_vertex(tiny, 0.0);
  EXPECT_GT(graph_.vertex_weight(tiny), 0.0);
}

TEST_F(RelationTest, InWeightInvariantUnderRandomOps) {
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.below(descs_.size());
    const auto b = rng.below(descs_.size());
    graph_.observe_relation(descs_[a], descs_[b]);
    if (rng.chance(1, 10)) graph_.decay(0.9);
    for (const auto* v : descs_) {
      EXPECT_LE(graph_.in_weight_sum(v), 1.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace df::core
