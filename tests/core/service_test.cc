// Campaign service tests (DESIGN.md §14): the scheduler determinism
// contract — a preempted, re-enqueued, restarted campaign produces results
// bit-identical to an uninterrupted reference run — plus queue properties
// (priority, FIFO, starvation-free aging), crash-safe restart-from-disk,
// corrupted-checkpoint containment, and the HTTP job API.
#include "core/service/service.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/service/job.h"
#include "core/service/queue.h"
#include "obs/json_parse.h"
#include "tests/obs/http_test_util.h"

namespace df::core {
namespace {

// --- JobQueue properties ---------------------------------------------------

TEST(ServiceQueue, HigherPriorityPopsFirstFifoWithinLevel) {
  JobQueue q(/*age_every=*/100);  // aging effectively off for this test
  q.push(1, 0);
  q.push(2, 5);
  q.push(3, 5);
  q.push(4, 9);
  q.push(5, 0);
  std::vector<uint64_t> order;
  while (auto p = q.pop()) order.push_back(p->job_id);
  EXPECT_EQ(order, (std::vector<uint64_t>{4, 2, 3, 1, 5}));
}

TEST(ServiceQueue, FifoWithinPriorityLevelSurvivesAging) {
  // Equal-priority entries age at the same rate: admission order decides
  // forever, no matter how many ticks pass.
  JobQueue q(/*age_every=*/2);
  q.push(10, 3);
  q.push(11, 3);
  q.push(12, 3);
  // Burn ticks by cycling an unrelated job through the queue.
  for (int i = 0; i < 7; ++i) {
    q.push(99, 100);
    ASSERT_EQ(q.pop()->job_id, 99u);
  }
  EXPECT_EQ(q.pop()->job_id, 10u);
  EXPECT_EQ(q.pop()->job_id, 11u);
  EXPECT_EQ(q.pop()->job_id, 12u);
}

TEST(ServiceQueue, AgingIsStarvationFree) {
  // A priority-0 job against an endless stream of priority-10 arrivals:
  // aging must still schedule it within a bounded number of passes
  // (priority gap * age_every, plus slack for the tick the stream burns).
  JobQueue q(/*age_every=*/4);
  q.push(1, 0);
  bool popped_low = false;
  int passes = 0;
  for (; passes < 200 && !popped_low; ++passes) {
    q.push(1000 + static_cast<uint64_t>(passes), 10);
    const auto p = q.pop();
    ASSERT_TRUE(p.has_value());
    popped_low = p->job_id == 1;
  }
  EXPECT_TRUE(popped_low);
  EXPECT_LE(passes, 50);  // 10 levels * 4 ticks/level + slack
}

TEST(ServiceQueue, RemoveAndPopOrderSnapshot) {
  JobQueue q(4);
  q.push(1, 1);
  q.push(2, 2);
  q.push(3, 3);
  EXPECT_EQ(q.in_pop_order(), (std::vector<uint64_t>{3, 2, 1}));
  EXPECT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2));
  EXPECT_FALSE(q.contains(2));
  EXPECT_TRUE(q.contains(3));
  EXPECT_EQ(q.in_pop_order(), (std::vector<uint64_t>{3, 1}));
}

// --- JobSpec validation / serialization ------------------------------------

JobSpec small_spec(uint64_t seed, uint64_t budget = 1280) {
  JobSpec s;
  s.name = "t" + std::to_string(seed);
  s.devices = {"A1", "E"};
  s.seed = seed;
  s.budget = budget;
  s.slice = 64;
  s.sample_every = 128;
  s.checkpoint_every = 256;
  return s;
}

TEST(JobSpec, ValidationRejectsBadSpecs) {
  std::string error;
  JobSpec s = small_spec(1);
  EXPECT_TRUE(s.validate(&error)) << error;

  JobSpec no_devices = s;
  no_devices.devices.clear();
  EXPECT_FALSE(no_devices.validate(&error));
  EXPECT_NE(error.find("devices"), std::string::npos);

  JobSpec unknown = s;
  unknown.devices = {"Z9"};
  EXPECT_FALSE(unknown.validate(&error));
  EXPECT_NE(error.find("unknown device"), std::string::npos);

  JobSpec dup = s;
  dup.devices = {"A1", "A1"};
  EXPECT_FALSE(dup.validate(&error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  JobSpec no_budget = s;
  no_budget.budget = 0;
  EXPECT_FALSE(no_budget.validate(&error));

  // The cadence nesting is load-bearing for scheduler determinism.
  JobSpec misaligned = s;
  misaligned.checkpoint_every = 300;
  EXPECT_FALSE(misaligned.validate(&error));
  EXPECT_NE(error.find("multiple"), std::string::npos);

  JobSpec bad_rate = s;
  bad_rate.fault_rate = 1.5;
  EXPECT_FALSE(bad_rate.validate(&error));
}

TEST(JobSpec, JsonRoundTripAndStrictParse) {
  JobSpec s = small_spec(42);
  s.priority = 3;
  s.fault_rate = 0.01;
  JobSpec back;
  std::string error;
  ASSERT_TRUE(JobSpec::from_json(s.to_json(), &back, &error)) << error;
  EXPECT_EQ(back.to_json(), s.to_json());

  EXPECT_FALSE(JobSpec::from_json("{\"devices\":[\"A1\"]}", &back, &error));
  EXPECT_NE(error.find("budget"), std::string::npos);
  EXPECT_FALSE(JobSpec::from_json("not json", &back, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JobSpec::from_json(
      "{\"devices\":[\"A1\"],\"budget\":10,\"typo\":1}", &back, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
}

// --- scheduler determinism -------------------------------------------------

std::string unique_dir(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "df_service_" + tag + "_" +
         std::to_string(counter++);
}

// Two-job workload: one budget on the checkpoint grid, one off it (the
// final quantum is a partial one), distinct seeds and priorities.
void expect_preempted_matches(size_t workers, uint64_t quantum_barriers,
                              bool reverse_admission) {
  const std::string tag = std::to_string(workers) + "_" +
                          std::to_string(quantum_barriers) + "_" +
                          std::to_string(reverse_admission);
  JobSpec a = small_spec(11, 1280);
  a.priority = 1;
  JobSpec b = small_spec(23, 1100);  // not a multiple of checkpoint_every

  const std::string want_a =
      CampaignService::run_reference(a, workers, unique_dir("refa" + tag));
  const std::string want_b =
      CampaignService::run_reference(b, workers, unique_dir("refb" + tag));

  ServiceConfig cfg;
  cfg.root_dir = unique_dir("svc" + tag);
  cfg.workers = workers;
  cfg.quantum_barriers = quantum_barriers;
  cfg.serve_port = -1;
  CampaignService svc(cfg);
  const uint64_t id_first =
      svc.submit(reverse_admission ? b : a, nullptr);
  const uint64_t id_second =
      svc.submit(reverse_admission ? a : b, nullptr);
  ASSERT_NE(id_first, 0u);
  ASSERT_NE(id_second, 0u);
  svc.run_until_idle();

  const uint64_t id_a = reverse_admission ? id_second : id_first;
  const uint64_t id_b = reverse_admission ? id_first : id_second;
  const auto rec_a = svc.job(id_a);
  const auto rec_b = svc.job(id_b);
  ASSERT_TRUE(rec_a.has_value());
  ASSERT_TRUE(rec_b.has_value());
  EXPECT_EQ(rec_a->state, JobState::kDone);
  EXPECT_EQ(rec_b->state, JobState::kDone);
  EXPECT_EQ(rec_a->progress, a.budget);
  EXPECT_EQ(rec_b->progress, b.budget);
  // The contract itself: byte-identical result documents.
  EXPECT_EQ(rec_a->result, want_a);
  EXPECT_EQ(rec_b->result, want_b);
  // And the jobs really were preempted, not run in one piece:
  // ceil(budget / quantum) turns minus the final one.
  EXPECT_EQ(rec_a->preemptions,
            (a.budget - 1) / (quantum_barriers * a.checkpoint_every));
  EXPECT_EQ(rec_b->preemptions,
            (b.budget - 1) / (quantum_barriers * b.checkpoint_every));
}

TEST(Service, PreemptedRunMatchesUninterruptedWorkers1) {
  expect_preempted_matches(/*workers=*/1, /*quantum_barriers=*/1, false);
}

TEST(Service, PreemptedRunMatchesUninterruptedWorkers2) {
  expect_preempted_matches(/*workers=*/2, /*quantum_barriers=*/1, false);
}

TEST(Service, PreemptedRunMatchesUninterruptedWorkers4) {
  expect_preempted_matches(/*workers=*/4, /*quantum_barriers=*/1, false);
}

TEST(Service, PreemptedRunMatchesUninterruptedWiderQuantum) {
  expect_preempted_matches(/*workers=*/2, /*quantum_barriers=*/2, false);
}

TEST(Service, PreemptedRunMatchesUninterruptedReversedAdmission) {
  expect_preempted_matches(/*workers=*/4, /*quantum_barriers=*/1, true);
}

TEST(Service, PauseResumeKeepsDeterminism) {
  const JobSpec a = small_spec(31, 1024);
  const std::string want =
      CampaignService::run_reference(a, 2, unique_dir("pause_ref"));

  ServiceConfig cfg;
  cfg.root_dir = unique_dir("pause_svc");
  cfg.workers = 2;
  CampaignService svc(cfg);
  const uint64_t id = svc.submit(a);
  ASSERT_NE(id, 0u);
  ASSERT_TRUE(svc.run_one_quantum());  // first quantum, job re-enqueued
  std::string error;
  ASSERT_TRUE(svc.pause(id, &error)) << error;
  EXPECT_EQ(svc.job(id)->state, JobState::kPaused);
  svc.run_until_idle();  // nothing runnable while paused
  EXPECT_EQ(svc.job(id)->state, JobState::kPaused);
  EXPECT_FALSE(svc.resume_job(999, &error));
  ASSERT_TRUE(svc.resume_job(id, &error)) << error;
  svc.run_until_idle();
  const auto rec = svc.job(id);
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_EQ(rec->result, want);
}

TEST(Service, CancelDropsQueuedAndPausedJobs) {
  ServiceConfig cfg;
  cfg.root_dir = unique_dir("cancel");
  CampaignService svc(cfg);
  const uint64_t queued = svc.submit(small_spec(1));
  const uint64_t paused = svc.submit(small_spec(2));
  std::string error;
  ASSERT_TRUE(svc.pause(paused, &error));
  ASSERT_TRUE(svc.cancel(queued, &error));
  ASSERT_TRUE(svc.cancel(paused, &error));
  EXPECT_EQ(svc.job(queued)->state, JobState::kCancelled);
  EXPECT_EQ(svc.job(paused)->state, JobState::kCancelled);
  // Terminal jobs reject further transitions with a descriptive error.
  EXPECT_FALSE(svc.cancel(queued, &error));
  EXPECT_NE(error.find("cancelled"), std::string::npos);
  EXPECT_FALSE(svc.run_one_quantum());  // queue is empty
}

// --- crash-safe restart ----------------------------------------------------

TEST(Service, RestartFromDiskResumesQueuedAndRunningJobs) {
  const std::string root = unique_dir("restart");
  const JobSpec a = small_spec(51, 1280);
  const JobSpec b = small_spec(52, 1100);
  const std::string want_a =
      CampaignService::run_reference(a, 1, unique_dir("restart_refa"));
  const std::string want_b =
      CampaignService::run_reference(b, 1, unique_dir("restart_refb"));

  ServiceConfig cfg;
  cfg.root_dir = root;
  cfg.workers = 1;
  uint64_t id_a = 0;
  uint64_t id_b = 0;
  {
    CampaignService svc(cfg);
    id_a = svc.submit(a);
    id_b = svc.submit(b);
    ASSERT_TRUE(svc.run_one_quantum());  // a: one quantum, re-enqueued
    ASSERT_TRUE(svc.run_one_quantum());  // b: one quantum, re-enqueued
    // Service dies here; the manifest and both checkpoints are on disk.
  }

  // Simulate death mid-quantum: rewrite job a's manifest state to
  // "running", as the manifest looks between pop and quantum end.
  {
    std::ifstream in(root + "/service.json");
    std::string manifest((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    const std::string find = "\"id\":" + std::to_string(id_a) +
                             ",\"state\":\"queued\"";
    const size_t pos = manifest.find(find);
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, find.size(),
                     "\"id\":" + std::to_string(id_a) +
                         ",\"state\":\"running\"");
    std::ofstream out(root + "/service.json", std::ios::trunc);
    out << manifest;
  }

  CampaignService svc(cfg);
  std::string error;
  ASSERT_TRUE(svc.boot(&error)) << error;
  // The interrupted job came back queued, ahead of the rest.
  ASSERT_TRUE(svc.job(id_a).has_value());
  EXPECT_EQ(svc.job(id_a)->state, JobState::kQueued);
  EXPECT_EQ(svc.job(id_b)->state, JobState::kQueued);
  EXPECT_EQ(svc.queue_depth(), 2u);
  svc.run_until_idle();
  EXPECT_EQ(svc.job(id_a)->state, JobState::kDone);
  EXPECT_EQ(svc.job(id_b)->state, JobState::kDone);
  EXPECT_EQ(svc.job(id_a)->result, want_a);
  EXPECT_EQ(svc.job(id_b)->result, want_b);
}

// --- corrupted checkpoints -------------------------------------------------

// Checkpoint sabotage must fail the job with a descriptive error and leave
// the service serving: never a crash, never a wedged queue.
TEST(Service, CorruptCheckpointFailsJobNotService) {
  ServiceConfig cfg;
  cfg.root_dir = unique_dir("corrupt");
  cfg.workers = 1;
  CampaignService svc(cfg);

  JobSpec spec;
  spec.devices = {"A1"};
  spec.budget = 2048;
  spec.slice = 64;
  spec.sample_every = 256;
  spec.checkpoint_every = 1024;
  std::vector<uint64_t> ids;
  for (uint64_t seed : {61, 62, 63}) {
    JobSpec s = spec;
    s.seed = seed;
    const uint64_t id = svc.submit(s);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  // One quantum each: every job now has a checkpoint at execution 1024.
  for (size_t i = 0; i < ids.size(); ++i) ASSERT_TRUE(svc.run_one_quantum());

  auto checkpoint_path = [&](uint64_t id) {
    return cfg.root_dir + "/job_" + std::to_string(id) + "/checkpoint.json";
  };
  auto rewrite = [](const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  };
  auto read = [](const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  // Job 1: truncated JSON.
  const std::string doc1 = read(checkpoint_path(ids[0]));
  ASSERT_FALSE(doc1.empty());
  rewrite(checkpoint_path(ids[0]), doc1.substr(0, doc1.size() / 2));

  // Job 2: unknown checkpoint version.
  std::string doc2 = read(checkpoint_path(ids[1]));
  const size_t vpos = doc2.find("\"version\":4");
  ASSERT_NE(vpos, std::string::npos);
  doc2.replace(vpos, strlen("\"version\":4"), "\"version\":999");
  rewrite(checkpoint_path(ids[1]), doc2);

  // Job 3: snapshot images dropped while the pool still references them.
  std::string doc3 = read(checkpoint_path(ids[2]));
  const size_t ipos = doc3.find("\"images\":[\"");
  ASSERT_NE(ipos, std::string::npos) << "no live snapshots at checkpoint";
  const size_t iend = doc3.find(']', ipos);
  ASSERT_NE(iend, std::string::npos);
  doc3.replace(ipos, iend - ipos + 1, "\"images\":[]");
  rewrite(checkpoint_path(ids[2]), doc3);

  svc.run_until_idle();
  const auto j1 = svc.job(ids[0]);
  const auto j2 = svc.job(ids[1]);
  const auto j3 = svc.job(ids[2]);
  EXPECT_EQ(j1->state, JobState::kFailed);
  EXPECT_NE(j1->error.find("checkpoint restore failed"), std::string::npos)
      << j1->error;
  EXPECT_EQ(j2->state, JobState::kFailed);
  EXPECT_NE(j2->error.find("version"), std::string::npos) << j2->error;
  EXPECT_EQ(j3->state, JobState::kFailed);
  EXPECT_NE(j3->error.find("missing snapshot"), std::string::npos)
      << j3->error;

  // The service shrugs it off: a fresh job still runs to completion.
  const uint64_t healthy = svc.submit(small_spec(64, 512));
  ASSERT_NE(healthy, 0u);
  svc.run_until_idle();
  EXPECT_EQ(svc.job(healthy)->state, JobState::kDone);
}

// A checkpoint deleted out from under a mid-flight job is also a failed
// job, not a silent restart from zero.
TEST(Service, MissingCheckpointFailsJob) {
  ServiceConfig cfg;
  cfg.root_dir = unique_dir("missing");
  CampaignService svc(cfg);
  const uint64_t id = svc.submit(small_spec(71, 1024));
  ASSERT_TRUE(svc.run_one_quantum());
  std::remove((cfg.root_dir + "/job_" + std::to_string(id) +
               "/checkpoint.json")
                  .c_str());
  svc.run_until_idle();
  const auto rec = svc.job(id);
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_NE(rec->error.find("checkpoint missing"), std::string::npos)
      << rec->error;
}

// --- HTTP job API ----------------------------------------------------------

TEST(Service, JobApiEndToEnd) {
  ServiceConfig cfg;
  cfg.root_dir = unique_dir("api");
  cfg.serve_port = 0;
  CampaignService svc(cfg);
  ASSERT_NE(svc.server(), nullptr);
  const uint16_t port = static_cast<uint16_t>(svc.serve_port());

  EXPECT_EQ(df::test::http_get(port, "/healthz").status, 200);

  // Submit over HTTP.
  JobSpec spec = small_spec(81, 512);
  auto res = df::test::http_post(port, "/jobs", spec.to_json());
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.status, 200) << res.body;
  std::string error;
  const auto doc = obs::json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const uint64_t id = doc->find("id")->as_u64();
  ASSERT_NE(id, 0u);

  // Bad specs get a 400 with the validation message.
  res = df::test::http_post(port, "/jobs", "{\"devices\":[\"Z9\"]}");
  EXPECT_EQ(res.status, 400);
  EXPECT_NE(res.body.find("unknown device"), std::string::npos);

  // Listing and record views.
  res = df::test::http_get(port, "/jobs");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"queue_depth\":1"), std::string::npos);
  res = df::test::http_get(port, "/jobs/" + std::to_string(id));
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"state\":\"queued\""), std::string::npos);
  EXPECT_EQ(df::test::http_get(port, "/jobs/12345").status, 404);

  // Control actions over HTTP; invalid transitions are 409.
  const std::string base = "/jobs/" + std::to_string(id);
  EXPECT_EQ(df::test::http_post(port, base + "/pause", "").status, 200);
  EXPECT_EQ(svc.job(id)->state, JobState::kPaused);
  EXPECT_EQ(df::test::http_post(port, base + "/pause", "").status, 409);
  EXPECT_EQ(df::test::http_post(port, base + "/resume", "").status, 200);
  EXPECT_EQ(svc.job(id)->state, JobState::kQueued);
  EXPECT_EQ(df::test::http_post(port, "/jobs/999/cancel", "").status, 404);

  // Views are empty objects before the first quantum, real documents after.
  res = df::test::http_get(port, base + "/status");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "{}");
  svc.run_until_idle();
  EXPECT_EQ(svc.job(id)->state, JobState::kDone);
  res = df::test::http_get(port, base + "/status");
  EXPECT_NE(res.body.find("\"campaign\""), std::string::npos);
  res = df::test::http_get(port, base + "/coverage");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body, "{}");
  res = df::test::http_get(port, base + "/frontier");
  EXPECT_EQ(res.status, 200);
  res = df::test::http_get(port, base);
  EXPECT_NE(res.body.find("\"result\""), std::string::npos);

  // Method discipline on the job API.
  EXPECT_EQ(df::test::http_post(port, base, "").status, 405);
  EXPECT_EQ(df::test::http_get(port, base + "/pause").status, 405);
  EXPECT_EQ(df::test::http_get(port, "/jobs/1/unknown").status, 404);
}

}  // namespace
}  // namespace df::core
