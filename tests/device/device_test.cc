// Tests for the device layer and the Table I catalog.
#include <gtest/gtest.h>

#include <set>

#include "device/catalog.h"

namespace df::device {
namespace {

TEST(Catalog, TableMatchesPaperTableI) {
  const auto& table = device_table();
  ASSERT_EQ(table.size(), 7u);
  EXPECT_EQ(table[0].id, "A1");
  EXPECT_EQ(table[0].vendor, "Xiaomi");
  EXPECT_EQ(table[2].vendor, "Raspberry Pi");
  EXPECT_EQ(table[3].vendor, "Sunmi");
  EXPECT_EQ(table[5].device, "LubanCat 5");
  EXPECT_EQ(table[6].arch, "amd64");
  for (const auto& spec : table) {
    EXPECT_FALSE(spec.id.empty());
    EXPECT_TRUE(spec.aosp == "15" || spec.aosp == "13");
  }
}

TEST(Catalog, PlantedBugsMatchTableII) {
  const auto& bugs = planted_bugs();
  ASSERT_EQ(bugs.size(), 12u);
  size_t hal = 0, kernel_side = 0;
  std::set<std::string> devices;
  for (const auto& b : bugs) {
    devices.insert(b.device_id);
    if (b.component == "HAL") {
      ++hal;
      EXPECT_EQ(b.bug_type, "Memory Related Bug");
    } else {
      ++kernel_side;
    }
  }
  EXPECT_EQ(hal, 3u);          // 3 HAL-layer crashes (paper §V-B)
  EXPECT_EQ(kernel_side, 9u);  // 9 kernel-side bugs
  EXPECT_EQ(devices.size(), 7u);
}

TEST(Catalog, EveryDeviceBuildsAndBoots) {
  for (const auto& spec : device_table()) {
    auto dev = make_device(spec.id, 1);
    ASSERT_NE(dev, nullptr) << spec.id;
    EXPECT_TRUE(dev->kernel().booted());
    EXPECT_FALSE(dev->services().empty()) << spec.id;
    EXPECT_FALSE(dev->kernel().drivers().empty()) << spec.id;
    // ServiceManager lists every registered HAL.
    EXPECT_EQ(dev->service_manager().list_services().size(),
              dev->services().size());
  }
}

TEST(Catalog, UnknownDeviceIsNull) {
  EXPECT_EQ(make_device("Z9", 1), nullptr);
}

TEST(Catalog, KernelVersionsPropagate) {
  auto a1 = make_device("A1", 1);
  EXPECT_EQ(a1->kernel().version(), "6.6");
  auto e = make_device("E", 1);
  EXPECT_EQ(e->kernel().version(), "5.10");
}

TEST(Device, FindServiceByDescriptor) {
  auto dev = make_device("A1", 1);
  EXPECT_NE(dev->find_service("android.hardware.graphics.composer@sim"),
            nullptr);
  EXPECT_EQ(dev->find_service("android.hardware.nope@sim"), nullptr);
}

TEST(Device, RebootRestartsEverything) {
  auto dev = make_device("A1", 1);
  // Kill a HAL, panic the kernel.
  dev->kernel().dmesg().bug("test", "synthetic");
  ASSERT_TRUE(dev->kernel().panicked());
  dev->reboot();
  EXPECT_FALSE(dev->kernel().panicked());
  for (const auto& svc : dev->services()) EXPECT_FALSE(svc->dead());
  EXPECT_EQ(dev->kernel().reboot_count(), 1u);
}

TEST(Device, HalCrashAggregation) {
  auto dev = make_device("A1", 1);
  EXPECT_TRUE(dev->hal_crashes().empty());
}

TEST(Device, SeedsProduceIndependentKernels) {
  auto d1 = make_device("A1", 1);
  auto d2 = make_device("A1", 2);
  EXPECT_NE(d1->seed(), d2->seed());
}

TEST(Device, DriverInventoryPerDevice) {
  auto a1 = make_device("A1", 1);
  EXPECT_NE(a1->kernel().find_driver("rt1711_i2c"), nullptr);
  EXPECT_NE(a1->kernel().find_driver("tcpc_core"), nullptr);
  EXPECT_EQ(a1->kernel().find_driver("wifi_rate"), nullptr);

  auto c2 = make_device("C2", 1);
  EXPECT_NE(c2->kernel().find_driver("wifi_rate"), nullptr);
  EXPECT_EQ(c2->kernel().find_driver("rt1711_i2c"), nullptr);

  auto e = make_device("E", 1);
  EXPECT_NE(e->kernel().find_driver("v4l2_cam"), nullptr);
  EXPECT_EQ(e->kernel().find_driver("bt_hci"), nullptr);
}

TEST(Device, BugsOnlyOnAffectedFirmware) {
  // The rt1711 probe WARN is an A1-firmware bug: the same driver on other
  // devices (none ship it) or the same chain on fixed firmware stays quiet.
  auto a1 = make_device("A1", 1);
  auto& k = a1->kernel();
  const auto task = k.create_task(kernel::TaskOrigin::kNative, "t");
  kernel::SyscallReq open;
  open.nr = kernel::Sys::kOpenAt;
  open.path = "/dev/rt1711";
  const auto fd = static_cast<int32_t>(k.syscall(task, open).ret);
  kernel::SyscallReq attach;
  attach.nr = kernel::Sys::kIoctl;
  attach.fd = fd;
  attach.arg = 0x7401;
  kernel::put_u32(attach.data, 2);
  k.syscall(task, attach);
  kernel::SyscallReq reset;
  reset.nr = kernel::Sys::kIoctl;
  reset.fd = fd;
  reset.arg = 0x7403;
  k.syscall(task, reset);
  ASSERT_FALSE(k.dmesg().ring().empty());
  EXPECT_EQ(k.dmesg().ring().back().title, "WARNING in rt1711_i2c_probe");
}

}  // namespace
}  // namespace df::device
