// Device state snapshots (DESIGN.md §13): capture/restore round-trips,
// dirty-struct delta sharing against a parent, shape validation, and the
// flat byte image used by checkpoints.
#include "device/snapshot.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "device/catalog.h"
#include "kernel/syscall.h"

namespace df::device {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = make_device("A1", 1);
    task_ = dev_->kernel().create_task(kernel::TaskOrigin::kNative, "snap");
  }

  int32_t open_path(const char* path) {
    kernel::SyscallReq req;
    req.nr = kernel::Sys::kOpenAt;
    req.path = path;
    return static_cast<int32_t>(dev_->kernel().syscall(task_, req).ret);
  }

  int64_t ioctl(int32_t fd, uint64_t code, uint32_t val = 2) {
    kernel::SyscallReq req;
    req.nr = kernel::Sys::kIoctl;
    req.fd = fd;
    req.arg = code;
    kernel::put_u32(req.data, val);
    return dev_->kernel().syscall(task_, req).ret;
  }

  // Drives the TCPC port controller through a few protocol steps so the
  // snapshot has real driver + fd state to carry.
  int32_t warm() {
    const int32_t fd = open_path("/dev/tcpc");
    EXPECT_GE(fd, 3);
    for (const uint64_t code : {0x5470ull, 0x5471ull, 0x5472ull}) {
      ioctl(fd, code);
    }
    return fd;
  }

  std::unique_ptr<Device> dev_;
  kernel::TaskId task_{};
};

// The core round-trip property the engine's fork/recovery paths lean on:
// restoring a snapshot and re-capturing yields the same byte image, no
// matter what happened in between.
TEST_F(SnapshotTest, CaptureAfterRestoreIsByteIdentical) {
  const int32_t fd = warm();
  const StateSnapshot snap1 = capture_snapshot(*dev_, task_);
  // Perturb everything the snapshot covers: driver state machines, the fd
  // table, and (via the allocations behind open) the slab heap.
  ioctl(fd, 0x5476);
  open_path("/dev/tcpc");
  std::string error;
  ASSERT_TRUE(restore_snapshot(*dev_, task_, snap1, &error)) << error;
  const StateSnapshot snap2 = capture_snapshot(*dev_, task_);
  EXPECT_EQ(snapshot_to_bytes(snap1), snapshot_to_bytes(snap2));
}

TEST_F(SnapshotTest, RestoreRewindsFdNumbering) {
  warm();
  const StateSnapshot snap = capture_snapshot(*dev_, task_);
  const int32_t after_capture = open_path("/dev/tcpc");
  ASSERT_TRUE(restore_snapshot(*dev_, task_, snap, nullptr));
  // The fd cursor was rewound with the table: the same number comes back.
  EXPECT_EQ(open_path("/dev/tcpc"), after_capture);
}

TEST_F(SnapshotTest, RestoredStateReplaysIdentically) {
  const int32_t fd = warm();
  const StateSnapshot snap = capture_snapshot(*dev_, task_);
  auto probe = [&] {
    std::string log;
    for (const uint64_t code : {0x5470ull, 0x5472ull, 0x5476ull, 0x5471ull}) {
      log += std::to_string(ioctl(fd, code)) + ";";
    }
    return log;
  };
  const std::string first = probe();  // advances the driver state machine
  ASSERT_TRUE(restore_snapshot(*dev_, task_, snap, nullptr));
  EXPECT_EQ(probe(), first);  // same state -> same returns
}

TEST_F(SnapshotTest, DeltaCaptureSharesUnchangedSections) {
  warm();
  const StateSnapshot base = capture_snapshot(*dev_, task_);
  EXPECT_EQ(base.sections_shared, 0u);  // no parent, nothing to share
  open_path("/dev/tcpc");  // dirties the fd table + heap, not the drivers
  const StateSnapshot delta = capture_snapshot(*dev_, task_, &base);
  EXPECT_GT(delta.sections_shared, 0u);
  EXPECT_LT(delta.sections_shared, delta.sections.size());
  EXPECT_GT(delta.bytes_shared, 0u);
  EXPECT_LE(delta.bytes_shared, delta.total_bytes());
  // Sharing is pure aliasing: exactly sections_shared sections point at the
  // parent's buffers.
  size_t aliased = 0;
  for (const auto& s : delta.sections) {
    const StateSnapshot::Section* p = base.find(s.name);
    ASSERT_NE(p, nullptr) << s.name;
    if (p->bytes == s.bytes) ++aliased;
  }
  EXPECT_EQ(aliased, delta.sections_shared);
  // A delta restores on its own; sharing never changes restore semantics.
  ASSERT_TRUE(restore_snapshot(*dev_, task_, delta, nullptr));
}

TEST_F(SnapshotTest, WrongDeviceShapeIsRejected) {
  warm();
  const StateSnapshot foreign = capture_snapshot(*dev_, task_);
  auto other = make_device("B", 1);
  const auto other_task =
      other->kernel().create_task(kernel::TaskOrigin::kNative, "snap");
  std::string error;
  EXPECT_FALSE(restore_snapshot(*other, other_task, foreign, &error));
  EXPECT_NE(error.find("snapshot"), std::string::npos) << error;
  // The shape check runs before any mutation: B still captures and restores
  // its own state cleanly.
  const StateSnapshot own = capture_snapshot(*other, other_task);
  EXPECT_TRUE(restore_snapshot(*other, other_task, own, nullptr));
}

TEST_F(SnapshotTest, ByteImageRoundTrips) {
  warm();
  StateSnapshot snap = capture_snapshot(*dev_, task_);
  snap.seq = 7;
  snap.estab_calls = 3;
  const std::vector<uint8_t> bytes = snapshot_to_bytes(snap);
  StateSnapshot out;
  std::string error;
  ASSERT_TRUE(snapshot_from_bytes(bytes, &out, &error)) << error;
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.estab_calls, 3u);
  ASSERT_EQ(out.sections.size(), snap.sections.size());
  for (size_t i = 0; i < out.sections.size(); ++i) {
    EXPECT_EQ(out.sections[i].name, snap.sections[i].name);
    EXPECT_EQ(*out.sections[i].bytes, *snap.sections[i].bytes);
  }
  EXPECT_EQ(snapshot_to_bytes(out), bytes);
  // The deserialized image is a full working snapshot.
  ASSERT_TRUE(restore_snapshot(*dev_, task_, out, &error)) << error;
}

TEST_F(SnapshotTest, TruncatedByteImageIsRejected) {
  warm();
  const std::vector<uint8_t> bytes =
      snapshot_to_bytes(capture_snapshot(*dev_, task_));
  for (const size_t cut : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    StateSnapshot out;
    std::string error;
    EXPECT_FALSE(snapshot_from_bytes(
        std::span<const uint8_t>(bytes.data(), cut), &out, &error))
        << "cut=" << cut;
    EXPECT_FALSE(error.empty());
  }
}

}  // namespace
}  // namespace df::device
