# df_distill smoke test (run via cmake -P from ctest): distill one device's
# corpus after a tiny campaign, validate the JSON report with
# scripts/check_bench_json.py, and require replay verification (rc 0 —
# df_distill exits 2 on a coverage mismatch after distillation).
# Inputs: DISTILL, PYTHON, CHECKER, OUT.

execute_process(
  COMMAND ${DISTILL} --device A1 --execs 600 --seed 1 --json ${OUT}
  OUTPUT_VARIABLE distill_out
  RESULT_VARIABLE distill_rc)
if(NOT distill_rc EQUAL 0)
  message(FATAL_ERROR
          "df_distill failed or replay mismatch (rc=${distill_rc}):\n"
          "${distill_out}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (rc=${check_rc})")
endif()

string(FIND "${distill_out}" "replay verified" at)
if(at EQUAL -1)
  message(FATAL_ERROR "distill output lacks replay verification:\n"
          "${distill_out}")
endif()
