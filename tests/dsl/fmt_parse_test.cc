// Round-trip tests for the textual program form.
#include <gtest/gtest.h>

#include "dsl/fmt.h"
#include "dsl/parse.h"

namespace df::dsl {
namespace {

class FmtParseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CallDesc open;
    open.name = "openat$rt1711";
    open.produces = "fd_rt1711";
    open_ = table_.add(std::move(open));

    CallDesc attach;
    attach.name = "ioctl$RT1711_ATTACH";
    ParamDesc fd;
    fd.kind = ArgKind::kHandle;
    fd.handle_type = "fd_rt1711";
    ParamDesc mode;
    mode.kind = ArgKind::kEnum;
    mode.choices = {1, 2, 3};
    attach.params = {fd, mode};
    attach_ = table_.add(std::move(attach));

    CallDesc write;
    write.name = "write$pcm";
    ParamDesc blob;
    blob.kind = ArgKind::kBlob;
    blob.max_len = 64;
    write.params = {fd, blob};
    write_ = table_.add(std::move(write));
  }

  CallTable table_;
  const CallDesc* open_ = nullptr;
  const CallDesc* attach_ = nullptr;
  const CallDesc* write_ = nullptr;
};

TEST_F(FmtParseTest, FormatBasicProgram) {
  Program p;
  Call c0;
  c0.desc = open_;
  p.calls.push_back(c0);
  Call c1;
  c1.desc = attach_;
  Value fd;
  fd.ref = 0;
  Value mode;
  mode.scalar = 2;
  c1.args = {fd, mode};
  p.calls.push_back(c1);

  EXPECT_EQ(format_program(p),
            "r0 = openat$rt1711()\n"
            "ioctl$RT1711_ATTACH(r0, 0x2)\n");
}

TEST_F(FmtParseTest, FormatsNilAndBlob) {
  Program p;
  Call c;
  c.desc = write_;
  Value fd;  // unresolved
  Value blob;
  blob.bytes = {0xde, 0xad};
  c.args = {fd, blob};
  p.calls.push_back(c);
  EXPECT_EQ(format_program(p), "write$pcm(nil, blob\"dead\")\n");
}

TEST_F(FmtParseTest, ParseRoundTrip) {
  const std::string text =
      "r0 = openat$rt1711()\n"
      "ioctl$RT1711_ATTACH(r0, 0x3)\n"
      "write$pcm(r0, blob\"0011ff\")\n";
  std::string err;
  auto p = parse_program(text, table_, &err);
  ASSERT_TRUE(p.has_value()) << err;
  ASSERT_EQ(p->calls.size(), 3u);
  EXPECT_EQ(p->calls[1].args[1].scalar, 3u);
  EXPECT_EQ(p->calls[2].args[1].bytes,
            (std::vector<uint8_t>{0x00, 0x11, 0xff}));
  EXPECT_EQ(format_program(*p), text);
}

TEST_F(FmtParseTest, FormatParseFormatIsStable) {
  Program p;
  Call c0;
  c0.desc = open_;
  p.calls.push_back(c0);
  Call c1;
  c1.desc = write_;
  Value fd;
  fd.ref = 0;
  Value blob;
  blob.bytes = {1, 2, 3, 4, 5};
  c1.args = {fd, blob};
  p.calls.push_back(c1);

  const std::string once = format_program(p);
  auto reparsed = parse_program(once, table_);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(format_program(*reparsed), once);
  EXPECT_EQ(program_hash(*reparsed), program_hash(p));
}

TEST_F(FmtParseTest, ParseSkipsCommentsAndBlanks) {
  const std::string text =
      "# corpus entry 7\n"
      "\n"
      "r0 = openat$rt1711()\n"
      "ioctl$RT1711_ATTACH(r0, 0x1)  # attach sink\n";
  auto p = parse_program(text, table_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->calls.size(), 2u);
}

TEST_F(FmtParseTest, ParseRejectsUnknownCall) {
  std::string err;
  EXPECT_FALSE(parse_program("mystery$call()\n", table_, &err).has_value());
  EXPECT_NE(err.find("unknown call"), std::string::npos);
}

TEST_F(FmtParseTest, ParseRejectsArityMismatch) {
  std::string err;
  EXPECT_FALSE(
      parse_program("ioctl$RT1711_ATTACH(nil)\n", table_, &err).has_value());
}

TEST_F(FmtParseTest, ParseRejectsMalformedBlob) {
  std::string err;
  EXPECT_FALSE(
      parse_program("write$pcm(nil, blob\"xyz\")\n", table_, &err)
          .has_value());
}

TEST_F(FmtParseTest, ParseRejectsBadScalar) {
  std::string err;
  EXPECT_FALSE(
      parse_program("ioctl$RT1711_ATTACH(nil, hello)\n", table_, &err)
          .has_value());
}

TEST_F(FmtParseTest, ParseRepairsForwardRefs) {
  // A corrupt corpus line referencing a later call gets repaired, not
  // rejected, as long as repair can make it structurally valid.
  const std::string text =
      "ioctl$RT1711_ATTACH(r1, 0x1)\n"
      "r1 = openat$rt1711()\n";
  auto p = parse_program(text, table_);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->valid());
  EXPECT_EQ(p->calls[0].args[0].ref, Value::kNoRef);
}

TEST_F(FmtParseTest, ParseEmptyProgram) {
  auto p = parse_program("", table_);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST_F(FmtParseTest, ParseDecimalRefIndices) {
  // r10 must parse as index 10, not 1 + junk.
  std::string text = "r0 = openat$rt1711()\n";
  for (int i = 1; i < 11; ++i) text += "r" + std::to_string(i) + " = openat$rt1711()\n";
  text += "ioctl$RT1711_ATTACH(r10, 0x1)\n";
  auto p = parse_program(text, table_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->calls.back().args[0].ref, 10);
}

}  // namespace
}  // namespace df::dsl
