#include "dsl/prog.h"

#include <gtest/gtest.h>

namespace df::dsl {
namespace {

// A tiny table: producer, consumer, and a standalone call.
class ProgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CallDesc open;
    open.name = "open$x";
    open.produces = "fd_x";
    open_ = table_.add(std::move(open));

    CallDesc use;
    use.name = "use$x";
    ParamDesc fd;
    fd.kind = ArgKind::kHandle;
    fd.handle_type = "fd_x";
    use.params = {fd};
    use_ = table_.add(std::move(use));

    CallDesc other;
    other.name = "nop";
    nop_ = table_.add(std::move(other));
  }

  Call make(const CallDesc* d, int32_t ref = Value::kNoRef) {
    Call c;
    c.desc = d;
    for (const auto& p : d->params) {
      Value v;
      if (p.kind == ArgKind::kHandle) v.ref = ref;
      c.args.push_back(v);
    }
    return c;
  }

  CallTable table_;
  const CallDesc* open_ = nullptr;
  const CallDesc* use_ = nullptr;
  const CallDesc* nop_ = nullptr;
};

TEST_F(ProgTest, CallTableLookup) {
  EXPECT_EQ(table_.find("open$x"), open_);
  EXPECT_EQ(table_.find("ghost"), nullptr);
  EXPECT_EQ(table_.size(), 3u);
  const auto producers = table_.producers_of("fd_x");
  ASSERT_EQ(producers.size(), 1u);
  EXPECT_EQ(producers[0], open_);
  EXPECT_TRUE(table_.producers_of("nothing").empty());
}

TEST_F(ProgTest, DuplicateNamesKeepFirst) {
  CallDesc dup;
  dup.name = "open$x";
  dup.weight = 99;
  const CallDesc* got = table_.add(std::move(dup));
  EXPECT_EQ(got, open_);
  EXPECT_EQ(table_.size(), 3u);
}

TEST_F(ProgTest, ConsumesChecksHandleTypes) {
  EXPECT_TRUE(use_->consumes("fd_x"));
  EXPECT_FALSE(use_->consumes("fd_y"));
  EXPECT_FALSE(open_->consumes("fd_x"));
}

TEST_F(ProgTest, ValidAcceptsResolvedAndUnresolved) {
  Program p;
  p.calls.push_back(make(open_));
  p.calls.push_back(make(use_, 0));
  EXPECT_TRUE(p.valid());
  p.calls.push_back(make(use_));  // unresolved handle is legal
  EXPECT_TRUE(p.valid());
}

TEST_F(ProgTest, ValidRejectsForwardRef) {
  Program p;
  p.calls.push_back(make(use_, 1));
  p.calls.push_back(make(open_));
  EXPECT_FALSE(p.valid());
}

TEST_F(ProgTest, ValidRejectsSelfRef) {
  Program p;
  p.calls.push_back(make(use_, 0));
  EXPECT_FALSE(p.valid());
}

TEST_F(ProgTest, ValidRejectsWrongProducerType) {
  Program p;
  p.calls.push_back(make(nop_));
  p.calls.push_back(make(use_, 0));  // nop produces nothing
  EXPECT_FALSE(p.valid());
}

TEST_F(ProgTest, ValidRejectsArityMismatch) {
  Program p;
  Call c;
  c.desc = use_;  // one param, zero args
  p.calls.push_back(c);
  EXPECT_FALSE(p.valid());
}

TEST_F(ProgTest, RepairRebindsToNearestProducer) {
  Program p;
  p.calls.push_back(make(open_));
  p.calls.push_back(make(open_));
  p.calls.push_back(make(use_, 5));  // dangling
  EXPECT_GT(p.repair_refs(), 0u);
  EXPECT_EQ(p.calls[2].args[0].ref, 1);  // nearest
  EXPECT_TRUE(p.valid());
}

TEST_F(ProgTest, RepairClearsWhenNoProducer) {
  Program p;
  p.calls.push_back(make(nop_));
  p.calls.push_back(make(use_, 0));
  p.repair_refs();
  EXPECT_EQ(p.calls[1].args[0].ref, Value::kNoRef);
  EXPECT_TRUE(p.valid());
}

TEST_F(ProgTest, RemoveCallShiftsRefs) {
  Program p;
  p.calls.push_back(make(nop_));   // 0
  p.calls.push_back(make(open_));  // 1
  p.calls.push_back(make(use_, 1));
  p.remove_call(0);
  ASSERT_EQ(p.calls.size(), 2u);
  EXPECT_EQ(p.calls[1].args[0].ref, 0);
  EXPECT_TRUE(p.valid());
}

TEST_F(ProgTest, RemoveProducerRebinds) {
  Program p;
  p.calls.push_back(make(open_));  // 0
  p.calls.push_back(make(open_));  // 1
  p.calls.push_back(make(use_, 1));
  p.remove_call(1);
  EXPECT_EQ(p.calls[1].args[0].ref, 0);  // rebound to the surviving producer
  EXPECT_TRUE(p.valid());
}

TEST_F(ProgTest, RemoveOutOfRangeIsNoop) {
  Program p;
  p.calls.push_back(make(nop_));
  p.remove_call(10);
  EXPECT_EQ(p.calls.size(), 1u);
}

TEST_F(ProgTest, HashDistinguishesPrograms) {
  Program a;
  a.calls.push_back(make(open_));
  Program b;
  b.calls.push_back(make(nop_));
  EXPECT_NE(program_hash(a), program_hash(b));
  EXPECT_EQ(program_hash(a), program_hash(clone(a)));
}

TEST_F(ProgTest, HashSensitiveToArgsAndOrder) {
  Program a;
  a.calls.push_back(make(open_));
  a.calls.push_back(make(nop_));
  Program b;
  b.calls.push_back(make(nop_));
  b.calls.push_back(make(open_));
  EXPECT_NE(program_hash(a), program_hash(b));

  Program c = clone(a);
  Call extra = make(use_, 0);
  extra.args[0].scalar = 42;  // scalar payload differs even for handles
  Program d = clone(a);
  Call extra2 = make(use_, 0);
  c.calls.push_back(extra);
  d.calls.push_back(extra2);
  EXPECT_NE(program_hash(c), program_hash(d));
}

}  // namespace
}  // namespace df::dsl
