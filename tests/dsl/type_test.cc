#include "dsl/type.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace df::dsl {
namespace {

ParamDesc scalar(uint64_t min, uint64_t max) {
  ParamDesc p;
  p.kind = ArgKind::kU32;
  p.min = min;
  p.max = max;
  return p;
}

TEST(RandomValue, ScalarWithinOrNearRange) {
  util::Rng rng(1);
  const ParamDesc p = scalar(10, 20);
  for (int i = 0; i < 1000; ++i) {
    const Value v = random_value(p, rng);
    EXPECT_GE(v.scalar, 10u);
    EXPECT_LE(v.scalar, 20u);
  }
}

TEST(RandomValue, EnumPicksFromChoices) {
  util::Rng rng(2);
  ParamDesc p;
  p.kind = ArgKind::kEnum;
  p.choices = {5, 9, 15};
  for (int i = 0; i < 200; ++i) {
    const Value v = random_value(p, rng);
    EXPECT_TRUE(v.scalar == 5 || v.scalar == 9 || v.scalar == 15);
  }
}

TEST(RandomValue, FlagsSubsetOfChoices) {
  util::Rng rng(3);
  ParamDesc p;
  p.kind = ArgKind::kFlags;
  p.choices = {1, 2, 8};
  for (int i = 0; i < 200; ++i) {
    const Value v = random_value(p, rng);
    EXPECT_EQ(v.scalar & ~0xbull, 0u);
  }
}

TEST(RandomValue, BlobRespectsMaxLen) {
  util::Rng rng(4);
  ParamDesc p;
  p.kind = ArgKind::kBlob;
  p.max_len = 16;
  bool saw_max = false, saw_short = false;
  for (int i = 0; i < 500; ++i) {
    const Value v = random_value(p, rng);
    EXPECT_LE(v.bytes.size(), 16u);
    saw_max = saw_max || v.bytes.size() == 16;
    saw_short = saw_short || v.bytes.size() < 4;
  }
  EXPECT_TRUE(saw_max);
  EXPECT_TRUE(saw_short);
}

TEST(RandomValue, HandleStartsUnresolved) {
  util::Rng rng(5);
  ParamDesc p;
  p.kind = ArgKind::kHandle;
  p.handle_type = "fd_x";
  EXPECT_EQ(random_value(p, rng).ref, Value::kNoRef);
}

TEST(RandomValue, BoolIsBinary) {
  util::Rng rng(6);
  ParamDesc p;
  p.kind = ArgKind::kBool;
  for (int i = 0; i < 100; ++i) EXPECT_LE(random_value(p, rng).scalar, 1u);
}

TEST(MutateValue, ScalarChangesEventually) {
  util::Rng rng(7);
  const ParamDesc p = scalar(0, 1000000);
  Value v = random_value(p, rng);
  const uint64_t orig = v.scalar;
  bool changed = false;
  for (int i = 0; i < 50 && !changed; ++i) {
    mutate_value(p, v, rng);
    changed = v.scalar != orig;
  }
  EXPECT_TRUE(changed);
}

TEST(MutateValue, MostlyStaysInRange) {
  util::Rng rng(8);
  const ParamDesc p = scalar(100, 200);
  Value v = random_value(p, rng);
  int out_of_range = 0;
  for (int i = 0; i < 1000; ++i) {
    mutate_value(p, v, rng);
    if (v.scalar < 100 || v.scalar > 200) ++out_of_range;
  }
  // Deliberately allowed to escape occasionally, but rarely.
  EXPECT_LT(out_of_range, 400);
}

TEST(MutateValue, BlobGrowShrinkFlip) {
  util::Rng rng(9);
  ParamDesc p;
  p.kind = ArgKind::kBlob;
  p.max_len = 32;
  Value v = random_value(p, rng);
  for (int i = 0; i < 500; ++i) {
    mutate_value(p, v, rng);
    EXPECT_LE(v.bytes.size(), 32u);
  }
}

TEST(MutateValue, HandleRefUntouched) {
  util::Rng rng(10);
  ParamDesc p;
  p.kind = ArgKind::kHandle;
  Value v;
  v.ref = 3;
  for (int i = 0; i < 50; ++i) mutate_value(p, v, rng);
  EXPECT_EQ(v.ref, 3);
}

TEST(SanitizeValue, ClampsBlobLength) {
  util::Rng rng(11);
  ParamDesc p;
  p.kind = ArgKind::kBlob;
  p.max_len = 4;
  Value v;
  v.bytes.assign(100, 7);
  sanitize_value(p, v, rng);
  EXPECT_EQ(v.bytes.size(), 4u);
}

TEST(BoundaryScalar, HitsEdges) {
  util::Rng rng(12);
  bool saw_min = false, saw_max = false;
  for (int i = 0; i < 300; ++i) {
    const uint64_t b = boundary_scalar(5, 500, rng);
    EXPECT_GE(b, 5u);
    EXPECT_LE(b, 500u);
    saw_min = saw_min || b == 5;
    saw_max = saw_max || b == 500;
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(BoundaryScalar, DegenerateRange) {
  util::Rng rng(13);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(boundary_scalar(7, 7, rng), 7u);
}

}  // namespace
}  // namespace df::dsl
