# Fault-recovery bench smoke test (run via cmake -P from ctest): run
# bench_fault_recovery at a tiny per-device budget, then validate the
# emitted BENCH_fault_recovery.json (including the fault_recovery section:
# per-rate determinism, fault accounting, recovery latency) with
# scripts/check_bench_json.py. The tiny budget is below saturation, so the
# zero-lost-bugs contract is reported but not enforced here — the full
# default-budget bench run enforces it.
# Inputs: BENCH, PYTHON, CHECKER, OUTDIR.

file(MAKE_DIRECTORY ${OUTDIR})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          DF_FLEET_EXECS=512 DF_BENCH_JSON_DIR=${OUTDIR}
          ${BENCH}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_fault_recovery failed (rc=${bench_rc}): "
                      "non-deterministic fault campaign or JSON write "
                      "failure")
endif()

set(OUT ${OUTDIR}/BENCH_fault_recovery.json)
if(NOT EXISTS ${OUT})
  message(FATAL_ERROR "bench_fault_recovery did not write ${OUT}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (rc=${check_rc})")
endif()
