# A lint-clean attach/detach cycle on the USB-C PD controller.
r0 = openat$rt1711()
ioctl$RT1711_ATTACH(r0, 0x1)
ioctl$RT1711_DETACH(r0)
close$rt1711(r0)
