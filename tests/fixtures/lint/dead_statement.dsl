# The rt1711 fd is produced but never consumed: dead-statement warning on
# call #0. The hci socket is used, so only one finding is expected.
r0 = openat$rt1711()
r1 = socket$hci()
bind$hci(r1, 0x1)
