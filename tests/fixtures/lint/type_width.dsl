# Seeded type-width mismatch: bind$hci's dev id is a u8 (range 0..1);
# 0x1ff does not fit the declared width.
r0 = socket$hci()
bind$hci(r0, 0x1ff)
