# Seeded use-after-close: r0 is destroyed by the close before the status
# query executes — the use-after-close pass must flag call #2.
r0 = openat$rt1711()
close$rt1711(r0)
ioctl$RT1711_GET_STATUS(r0)
