#include "hal/binder.h"

#include <gtest/gtest.h>

namespace df::hal {
namespace {

class FakeBinder final : public IBinder {
 public:
  TxResult transact(uint32_t code, Parcel& data) override {
    ++calls;
    last_code = code;
    last_size = data.size();
    TxResult res;
    if (code == 99) res.status = kStatusUnknownTransaction;
    res.reply.write_u32(code * 2);
    return res;
  }
  std::string_view descriptor() const override { return "fake"; }

  int calls = 0;
  uint32_t last_code = 0;
  size_t last_size = 0;
};

InterfaceDesc fake_iface() {
  InterfaceDesc d;
  d.service = "fake";
  d.methods = {
      {1, "ping", {}, ""},
      {2, "open", {{ArgKind::kU32, "id", 0, 3, {}, 0, ""}}, "session"},
  };
  return d;
}

TEST(ServiceManager, RegisterAndList) {
  ServiceManager sm;
  sm.add_service("b.second", std::make_shared<FakeBinder>(), fake_iface());
  sm.add_service("a.first", std::make_shared<FakeBinder>(), fake_iface());
  const auto names = sm.list_services();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.first");  // lshal-style sorted listing
  EXPECT_EQ(names[1], "b.second");
}

TEST(ServiceManager, GetServiceAndInterface) {
  ServiceManager sm;
  auto binder = std::make_shared<FakeBinder>();
  sm.add_service("svc", binder, fake_iface());
  EXPECT_EQ(sm.get_service("svc"), binder);
  EXPECT_EQ(sm.get_service("nope"), nullptr);
  const InterfaceDesc* iface = sm.get_interface("svc");
  ASSERT_NE(iface, nullptr);
  EXPECT_EQ(iface->methods.size(), 2u);
  EXPECT_EQ(sm.get_interface("nope"), nullptr);
}

TEST(ServiceManager, CallRoutesAndReplies) {
  ServiceManager sm;
  auto binder = std::make_shared<FakeBinder>();
  sm.add_service("svc", binder, fake_iface());
  Parcel args;
  args.write_u32(5);
  TxResult res = sm.call("svc", 2, args);
  EXPECT_EQ(res.status, kStatusOk);
  res.reply.rewind();
  EXPECT_EQ(res.reply.read_u32(), 4u);
  EXPECT_EQ(binder->calls, 1);
  EXPECT_EQ(binder->last_code, 2u);
}

TEST(ServiceManager, CallUnknownServiceIsDeadObject) {
  ServiceManager sm;
  Parcel args;
  EXPECT_EQ(sm.call("ghost", 1, args).status, kStatusDeadObject);
}

TEST(ServiceManager, ObserversSeeTransactions) {
  ServiceManager sm;
  sm.add_service("svc", std::make_shared<FakeBinder>(), fake_iface());
  std::vector<TxRecord> seen;
  const int id = sm.attach_observer([&](const TxRecord& r) { seen.push_back(r); });
  Parcel args;
  args.write_u32(1);
  sm.call("svc", 2, args);
  sm.call("svc", 99, args);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].service, "svc");
  EXPECT_EQ(seen[0].code, 2u);
  EXPECT_EQ(seen[0].data_size, 4u);
  EXPECT_EQ(seen[1].status, kStatusUnknownTransaction);
  sm.detach_observer(id);
  sm.call("svc", 1, args);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(ServiceManager, RemoveService) {
  ServiceManager sm;
  sm.add_service("svc", std::make_shared<FakeBinder>(), fake_iface());
  sm.remove_service("svc");
  EXPECT_TRUE(sm.list_services().empty());
}

TEST(InterfaceDesc, FindMethod) {
  const InterfaceDesc d = fake_iface();
  EXPECT_NE(d.find_method(1u), nullptr);
  EXPECT_EQ(d.find_method(7u), nullptr);
  ASSERT_NE(d.find_method("open"), nullptr);
  EXPECT_EQ(d.find_method("open")->returns_handle, "session");
  EXPECT_EQ(d.find_method("nope"), nullptr);
}

}  // namespace
}  // namespace df::hal
