// Behavioural tests for every HAL service, exercised through Binder
// transactions against fully assembled devices.
#include <gtest/gtest.h>

#include "device/catalog.h"
#include "hal/hal_service.h"
#include "hal/services/audio_hal.h"
#include "hal/services/bt_hal.h"
#include "hal/services/camera_hal.h"
#include "hal/services/graphics_hal.h"
#include "hal/services/media_hal.h"

namespace df::hal {
namespace {

namespace svc = services;

class HalServicesTest : public ::testing::Test {
 protected:
  void use_device(const char* id) { dev_ = device::make_device(id, 1); }

  TxResult call(std::string_view service, uint32_t code,
                std::initializer_list<uint32_t> u32s = {}) {
    Parcel p;
    for (uint32_t v : u32s) p.write_u32(v);
    return dev_->service_manager().call(service, code, p);
  }
  uint32_t reply_u32(TxResult& r) {
    r.reply.rewind();
    return r.reply.read_u32();
  }

  std::unique_ptr<device::Device> dev_;
};

// --- interface metadata sanity across every service -------------------------

TEST_F(HalServicesTest, AllInterfacesWellFormed) {
  for (const auto& spec : device::device_table()) {
    use_device(spec.id.c_str());
    for (const auto& s : dev_->services()) {
      const InterfaceDesc d = s->interface();
      EXPECT_FALSE(d.methods.empty()) << d.service;
      std::set<uint32_t> codes;
      for (const auto& m : d.methods) {
        EXPECT_TRUE(codes.insert(m.code).second)
            << d.service << " duplicate code " << m.code;
        EXPECT_FALSE(m.name.empty());
        for (const auto& a : m.args) {
          if (a.kind == ArgKind::kEnum || a.kind == ArgKind::kFlags) {
            EXPECT_FALSE(a.choices.empty()) << d.service << "." << m.name;
          }
          if (a.kind == ArgKind::kHandle) {
            EXPECT_FALSE(a.handle_type.empty()) << d.service << "." << m.name;
          }
        }
      }
      // Every consumed handle type has a producer in the same interface.
      for (const auto& m : d.methods) {
        for (const auto& a : m.args) {
          if (a.kind != ArgKind::kHandle) continue;
          bool produced = false;
          for (const auto& pm : d.methods) {
            produced = produced || pm.returns_handle == a.handle_type;
          }
          EXPECT_TRUE(produced) << d.service << "." << m.name;
        }
      }
    }
  }
}

TEST_F(HalServicesTest, UsageProfilesReferenceRealMethods) {
  use_device("A1");
  for (const auto& s : dev_->services()) {
    const InterfaceDesc d = s->interface();
    for (const auto& uw : s->app_usage_profile()) {
      EXPECT_NE(d.find_method(uw.code), nullptr) << d.service;
      EXPECT_GT(uw.weight, 0.0);
    }
  }
}

TEST_F(HalServicesTest, UnknownTransactionStatus) {
  use_device("A1");
  auto res = call("android.hardware.light@sim", 0x7777);
  EXPECT_EQ(res.status, kStatusUnknownTransaction);
}

// --- graphics ---------------------------------------------------------------

TEST_F(HalServicesTest, GraphicsLayerLifecycle) {
  use_device("A1");
  const char* g = "android.hardware.graphics.composer@sim";
  auto created = call(g, svc::GraphicsHal::kCreateLayer, {640, 480, 1});
  ASSERT_EQ(created.status, kStatusOk);
  const uint32_t layer = reply_u32(created);
  EXPECT_EQ(call(g, svc::GraphicsHal::kSetLayerBuffer, {layer, 2560, 3}).status,
            kStatusOk);
  auto comp = call(g, svc::GraphicsHal::kComposite);
  EXPECT_EQ(comp.status, kStatusOk);
  EXPECT_EQ(reply_u32(comp), 1u);
  EXPECT_EQ(call(g, svc::GraphicsHal::kDestroyLayer, {layer}).status,
            kStatusOk);
  EXPECT_EQ(call(g, svc::GraphicsHal::kDestroyLayer, {layer}).status,
            kStatusBadValue);
}

TEST_F(HalServicesTest, GraphicsCompositeWithoutBuffersRejected) {
  use_device("A1");
  const char* g = "android.hardware.graphics.composer@sim";
  EXPECT_EQ(call(g, svc::GraphicsHal::kComposite).status,
            kStatusInvalidOperation);
}

TEST_F(HalServicesTest, GraphicsOverflowStrideCrashesOnA1) {
  use_device("A1");
  const char* g = "android.hardware.graphics.composer@sim";
  auto created = call(g, svc::GraphicsHal::kCreateLayer, {64, 4096, 1});
  const uint32_t layer = reply_u32(created);
  // stride * height wraps 32 bits but lands under the 256 MiB check.
  EXPECT_EQ(
      call(g, svc::GraphicsHal::kSetLayerBuffer, {layer, 0x40000000u, 0})
          .status,
      kStatusOk);
  EXPECT_EQ(call(g, svc::GraphicsHal::kComposite).status, kStatusDeadObject);
  auto* hal = dev_->find_service(g);
  ASSERT_NE(hal, nullptr);
  EXPECT_TRUE(hal->dead());
  ASSERT_EQ(hal->crashes().size(), 1u);
  EXPECT_EQ(hal->crashes()[0].signal, "SIGSEGV");
  EXPECT_EQ(hal->crashes()[0].site, "gralloc_blit");
}

TEST_F(HalServicesTest, GraphicsFixedBuildRejectsOverflowStride) {
  use_device("B");  // graphics HAL without the planted bug
  const char* g = "android.hardware.graphics.composer@sim";
  auto created = call(g, svc::GraphicsHal::kCreateLayer, {64, 4096, 1});
  const uint32_t layer = reply_u32(created);
  EXPECT_EQ(
      call(g, svc::GraphicsHal::kSetLayerBuffer, {layer, 0x40000000u, 0})
          .status,
      kStatusBadValue);
  EXPECT_EQ(call(g, svc::GraphicsHal::kComposite).status,
            kStatusInvalidOperation);
}

TEST_F(HalServicesTest, CrashedServiceRejectsUntilRestart) {
  use_device("A1");
  const char* g = "android.hardware.graphics.composer@sim";
  auto created = call(g, svc::GraphicsHal::kCreateLayer, {64, 4096, 1});
  const uint32_t layer = reply_u32(created);
  call(g, svc::GraphicsHal::kSetLayerBuffer, {layer, 0x40000000u, 0});
  call(g, svc::GraphicsHal::kComposite);
  // Dead process: everything bounces.
  EXPECT_EQ(call(g, svc::GraphicsHal::kGetDisplayInfo).status,
            kStatusDeadObject);
  dev_->restart_dead_services();
  auto* hal = dev_->find_service(g);
  EXPECT_FALSE(hal->dead());
  // Native state was reset: the old layer is gone.
  EXPECT_EQ(call(g, svc::GraphicsHal::kDestroyLayer, {layer}).status,
            kStatusBadValue);
  EXPECT_EQ(call(g, svc::GraphicsHal::kGetDisplayInfo).status, kStatusOk);
}

// --- media --------------------------------------------------------------------

TEST_F(HalServicesTest, MediaSessionLifecycle) {
  use_device("A2");
  const char* m = "android.hardware.media.codec@sim";
  auto created = call(m, svc::MediaHal::kCreateSession, {svc::MediaHal::kCodecH264});
  ASSERT_EQ(created.status, kStatusOk);
  const uint32_t s = reply_u32(created);
  EXPECT_EQ(call(m, svc::MediaHal::kConfigure, {s, 1920, 1080, 4000}).status,
            kStatusOk);
  EXPECT_EQ(call(m, svc::MediaHal::kStart, {s}).status, kStatusOk);
  EXPECT_EQ(call(m, svc::MediaHal::kStart, {s}).status,
            kStatusInvalidOperation);
  EXPECT_EQ(call(m, svc::MediaHal::kStop, {s}).status, kStatusOk);
  EXPECT_EQ(call(m, svc::MediaHal::kReleaseSession, {s}).status, kStatusOk);
  EXPECT_EQ(call(m, svc::MediaHal::kStart, {s}).status, kStatusBadValue);
}

TEST_F(HalServicesTest, MediaHevcOverflowCrashesOnA2) {
  use_device("A2");
  const char* m = "android.hardware.media.codec@sim";
  auto created =
      call(m, svc::MediaHal::kCreateSession, {svc::MediaHal::kCodecHevc});
  const uint32_t s = reply_u32(created);
  // (w*256)*h*3/2 wraps 32 bits for these dims.
  EXPECT_EQ(call(m, svc::MediaHal::kConfigure, {s, 60000, 60000, 500}).status,
            kStatusOk);
  EXPECT_EQ(
      call(m, svc::MediaHal::kQueueInput, {s, 0x60000000u}).status,
      kStatusDeadObject);
  auto* hal = dev_->find_service(m);
  ASSERT_EQ(hal->crashes().size(), 1u);
  EXPECT_EQ(hal->crashes()[0].signal, "heap-buffer-overflow");
}

TEST_F(HalServicesTest, MediaNonHevcValidatesDims) {
  use_device("A2");
  const char* m = "android.hardware.media.codec@sim";
  auto created =
      call(m, svc::MediaHal::kCreateSession, {svc::MediaHal::kCodecVp9});
  const uint32_t s = reply_u32(created);
  EXPECT_EQ(call(m, svc::MediaHal::kConfigure, {s, 60000, 60000, 500}).status,
            kStatusBadValue);
}

TEST_F(HalServicesTest, MediaTranscodeFeedbackModeHangsKernelOnA2) {
  use_device("A2");
  const char* m = "android.hardware.media.codec@sim";
  auto created =
      call(m, svc::MediaHal::kCreateSession, {svc::MediaHal::kCodecH264});
  const uint32_t s = reply_u32(created);
  call(m, svc::MediaHal::kConfigure, {s, 640, 480, 500});
  call(m, svc::MediaHal::kStart, {s});
  call(m, svc::MediaHal::kTranscode, {s, 3, 2});  // feedback pipeline
  EXPECT_TRUE(dev_->kernel().panicked());
  const auto& ring = dev_->kernel().dmesg().ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().title, "Infinite Loop in gpu_mali_job_loop");
}

// --- camera -------------------------------------------------------------------

TEST_F(HalServicesTest, CameraCaptureFlow) {
  use_device("C1");
  const char* c = "android.hardware.camera.provider@sim";
  auto opened = call(c, svc::CameraHal::kOpenCamera, {0});
  const uint32_t cam = reply_u32(opened);
  EXPECT_EQ(
      call(c, svc::CameraHal::kConfigureStreams, {cam, 2, 1280, 720}).status,
      kStatusOk);
  auto cap = call(c, svc::CameraHal::kCapture, {cam, 3});
  EXPECT_EQ(cap.status, kStatusOk);
  EXPECT_EQ(reply_u32(cap), 3u);
  EXPECT_EQ(call(c, svc::CameraHal::kCloseCamera, {cam}).status, kStatusOk);
}

TEST_F(HalServicesTest, CameraCaptureAfterStopStreamsCrashesOnC1) {
  use_device("C1");
  const char* c = "android.hardware.camera.provider@sim";
  auto opened = call(c, svc::CameraHal::kOpenCamera, {0});
  const uint32_t cam = reply_u32(opened);
  call(c, svc::CameraHal::kConfigureStreams, {cam, 2, 1280, 720});
  EXPECT_EQ(call(c, svc::CameraHal::kStopStreams, {cam}).status, kStatusOk);
  EXPECT_EQ(call(c, svc::CameraHal::kCapture, {cam, 1}).status,
            kStatusDeadObject);
  auto* hal = dev_->find_service(c);
  ASSERT_EQ(hal->crashes().size(), 1u);
  EXPECT_EQ(hal->crashes()[0].site, "camera3_process_capture_request");
}

TEST_F(HalServicesTest, CameraFixedBuildSafeAfterStopStreams) {
  use_device("E");  // camera HAL without the planted bug
  const char* c = "android.hardware.camera.provider@sim";
  auto opened = call(c, svc::CameraHal::kOpenCamera, {0});
  const uint32_t cam = reply_u32(opened);
  call(c, svc::CameraHal::kConfigureStreams, {cam, 2, 1280, 720});
  call(c, svc::CameraHal::kStopStreams, {cam});
  EXPECT_EQ(call(c, svc::CameraHal::kCapture, {cam, 1}).status,
            kStatusInvalidOperation);
  EXPECT_TRUE(dev_->find_service(c)->crashes().empty());
}

TEST_F(HalServicesTest, CameraZslEmptyConfigCrashPathOnC1) {
  use_device("C1");
  const char* c = "android.hardware.camera.provider@sim";
  auto opened = call(c, svc::CameraHal::kOpenCamera, {0});
  const uint32_t cam = reply_u32(opened);
  call(c, svc::CameraHal::kSetParam, {cam, 0, 1});  // zsl on
  EXPECT_EQ(
      call(c, svc::CameraHal::kConfigureStreams, {cam, 0, 640, 480}).status,
      kStatusOk);
  EXPECT_EQ(call(c, svc::CameraHal::kCapture, {cam, 1}).status,
            kStatusDeadObject);
}

// --- bluetooth ------------------------------------------------------------------

TEST_F(HalServicesTest, BtEnableDisableCycle) {
  use_device("D");
  const char* b = "android.hardware.bluetooth@sim";
  EXPECT_EQ(call(b, svc::BtHal::kDisable).status, kStatusInvalidOperation);
  EXPECT_EQ(call(b, svc::BtHal::kEnable).status, kStatusOk);
  EXPECT_EQ(call(b, svc::BtHal::kEnable).status, kStatusInvalidOperation);
  EXPECT_EQ(call(b, svc::BtHal::kDisable).status, kStatusOk);
}

TEST_F(HalServicesTest, BtProfileLoopbackAndCleanupUafOnD) {
  use_device("D");
  const char* b = "android.hardware.bluetooth@sim";
  auto l = call(b, svc::BtHal::kListenProfile, {25});
  ASSERT_EQ(l.status, kStatusOk);
  const uint32_t listener = reply_u32(l);
  auto c = call(b, svc::BtHal::kConnectProfile, {25});
  ASSERT_EQ(c.status, kStatusOk);
  auto a = call(b, svc::BtHal::kAcceptProfile, {listener});
  ASSERT_EQ(a.status, kStatusOk);
  // cleanup() tears listeners down before children -> kernel UAF on D.
  EXPECT_EQ(call(b, svc::BtHal::kCleanup).status, kStatusOk);
  const auto& ring = dev_->kernel().dmesg().ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().title,
            "KASAN: slab-use-after-free Read in bt_accept_unlink");
}

TEST_F(HalServicesTest, BtCodecReadViaHalTriggersKasanOnA2) {
  use_device("A2");
  const char* b = "android.hardware.bluetooth@sim";
  ASSERT_EQ(call(b, svc::BtHal::kEnable).status, kStatusOk);
  Parcel p;
  p.write_u32(40);  // count beyond the 8-entry firmware capability
  p.write_blob({});
  EXPECT_EQ(dev_->service_manager().call(b, svc::BtHal::kSetCodecs, p).status,
            kStatusOk);
  call(b, svc::BtHal::kReadCodecs);
  const auto& ring = dev_->kernel().dmesg().ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().title,
            "KASAN: invalid-access in hci_read_supported_codecs");
}

// --- audio ---------------------------------------------------------------------

TEST_F(HalServicesTest, AudioOutputLifecycle) {
  use_device("C2");
  const char* a = "android.hardware.audio@sim";
  auto opened = call(a, svc::AudioHal::kOpenOutput, {48000, 2, 0});
  ASSERT_EQ(opened.status, kStatusOk);
  const uint32_t stream = reply_u32(opened);
  Parcel w;
  w.write_u32(stream);
  w.write_blob(std::vector<uint8_t>(256, 0));
  EXPECT_EQ(dev_->service_manager().call(a, svc::AudioHal::kWrite, w).status,
            kStatusOk);
  EXPECT_EQ(call(a, svc::AudioHal::kStandby, {stream}).status, kStatusOk);
  EXPECT_EQ(call(a, svc::AudioHal::kCloseOutput, {stream}).status, kStatusOk);
  EXPECT_EQ(call(a, svc::AudioHal::kStandby, {stream}).status,
            kStatusBadValue);
}

TEST_F(HalServicesTest, AudioRejectsBadParams) {
  use_device("C2");
  const char* a = "android.hardware.audio@sim";
  EXPECT_EQ(call(a, svc::AudioHal::kOpenOutput, {12345, 2, 0}).status,
            kStatusBadValue);  // unsupported rate rejected by the driver
  EXPECT_EQ(call(a, svc::AudioHal::kOpenOutput, {48000, 0, 0}).status,
            kStatusBadValue);
  EXPECT_EQ(call(a, svc::AudioHal::kSetVolume, {101}).status,
            kStatusBadValue);
}

// --- wifi ---------------------------------------------------------------------

TEST_F(HalServicesTest, WifiConnectFlowScansImplicitly) {
  use_device("C2");
  const char* w = "android.hardware.wifi@sim";
  // The supplicant needs a programmed rate table before associating.
  Parcel rm;
  rm.write_u32(3);
  rm.write_blob({{0, 1, 2}});
  EXPECT_EQ(dev_->service_manager()
                .call(w, /*setRateMask*/ 5, rm)
                .status,
            kStatusOk);
  // connect() without an explicit scan: the HAL scans internally.
  EXPECT_EQ(call(w, 2, {1}).status, kStatusOk);
  auto link = call(w, 6);  // getLinkInfo
  EXPECT_EQ(link.status, kStatusOk);
  EXPECT_EQ(reply_u32(link), 1u);  // associated
  EXPECT_EQ(call(w, 3).status, kStatusOk);  // disconnect
}

TEST_F(HalServicesTest, WifiRateMaskTranslatedToValidPhyRates) {
  use_device("C2");
  const char* w = "android.hardware.wifi@sim";
  // Arbitrary index bytes must still produce a kernel-accepted table.
  Parcel rm;
  rm.write_u32(8);
  rm.write_blob({{0xff, 0x7e, 0x01, 0x33, 0x99, 0x00, 0x55, 0xaa}});
  EXPECT_EQ(dev_->service_manager().call(w, 5, rm).status, kStatusOk);
}

TEST_F(HalServicesTest, WifiEmptyRateUpdateWarnsOnC2) {
  use_device("C2");
  const char* w = "android.hardware.wifi@sim";
  call(w, 1);          // scan
  call(w, 4, {2});     // setPowerSave(11b compat)
  Parcel rm1;
  rm1.write_u32(2);
  rm1.write_blob({{1, 2}});
  dev_->service_manager().call(w, 5, rm1);
  Parcel rm0;
  rm0.write_u32(0);
  rm0.write_blob({});
  EXPECT_EQ(dev_->service_manager().call(w, 5, rm0).status, kStatusOk);
  call(w, 2, {0});  // connect -> rate_control_rate_init over zero rates
  const auto& ring = dev_->kernel().dmesg().ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().title, "WARNING in rate_control_rate_init");
}

TEST_F(HalServicesTest, WifiEmptyUpdateSafeOnFixedFirmware) {
  use_device("C1");  // wifi driver without the planted bug
  const char* w = "android.hardware.wifi@sim";
  call(w, 1);
  call(w, 4, {2});
  Parcel rm1;
  rm1.write_u32(2);
  rm1.write_blob({{1, 2}});
  dev_->service_manager().call(w, 5, rm1);
  Parcel rm0;
  rm0.write_u32(0);
  rm0.write_blob({});
  EXPECT_EQ(dev_->service_manager().call(w, 5, rm0).status, kStatusBadValue);
  call(w, 2, {0});
  EXPECT_TRUE(dev_->kernel().dmesg().ring().empty());
}

// --- power ---------------------------------------------------------------------

TEST_F(HalServicesTest, PowerUsbBringUpDrivesTcpc) {
  use_device("A1");
  const char* p = "android.hardware.power@sim";
  EXPECT_EQ(call(p, 3).status, kStatusOk);               // usbInit
  EXPECT_EQ(call(p, 3).status, kStatusInvalidOperation); // double init
  EXPECT_EQ(call(p, 4, {1}).status, kStatusOk);          // usbConnect
  EXPECT_EQ(call(p, 5, {9000, 3000}).status, kStatusOk); // fastCharge 9V
  EXPECT_EQ(call(p, 6, {1}).status, kStatusOk);          // role swap ok
  // Second swap to the held role: rejected, and on A1 it WARNs.
  EXPECT_EQ(call(p, 6, {1}).status, kStatusBadValue);
  const auto& ring = dev_->kernel().dmesg().ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().title, "WARNING in tcpc_role_swap");
}

TEST_F(HalServicesTest, PowerOpsRequireUsbInit) {
  use_device("A1");
  const char* p = "android.hardware.power@sim";
  EXPECT_EQ(call(p, 4, {1}).status, kStatusInvalidOperation);
  EXPECT_EQ(call(p, 5, {9000, 3000}).status, kStatusInvalidOperation);
  EXPECT_EQ(call(p, 6, {1}).status, kStatusInvalidOperation);
  EXPECT_EQ(call(p, 7).status, kStatusInvalidOperation);
  // Pure-userspace knobs work regardless.
  EXPECT_EQ(call(p, 1, {2}).status, kStatusOk);  // setBoost
  EXPECT_EQ(call(p, 2, {3}).status, kStatusOk);  // setMode
}

TEST_F(HalServicesTest, PowerTypecResetPokesRt1711) {
  use_device("A1");
  const char* p = "android.hardware.power@sim";
  call(p, 3);       // usbInit (also configures rt1711 CC pins)
  call(p, 4, {1});  // usbConnect attaches the rt1711 port
  call(p, 8);       // typecReset -> re-probe while attached -> A1 bug
  const auto& ring = dev_->kernel().dmesg().ring();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().title, "WARNING in rt1711_i2c_probe");
}

// --- light ---------------------------------------------------------------------

TEST_F(HalServicesTest, LightIsPureUserspace) {
  use_device("C2");
  const char* l = "android.hardware.light@sim";
  uint64_t syscalls = 0;
  const int tp = dev_->kernel().attach_tracepoint(
      [&](const kernel::Task&, const kernel::SyscallReq&,
          const kernel::SyscallRes&) { ++syscalls; });
  EXPECT_EQ(call(l, 1, {0, 0xff0000, 1}).status, kStatusOk);
  auto sup = call(l, 2);
  EXPECT_EQ(reply_u32(sup), 4u);
  EXPECT_EQ(call(l, 3, {2, 100, 100}).status, kStatusOk);
  EXPECT_EQ(call(l, 1, {9, 0, 0}).status, kStatusBadValue);
  EXPECT_EQ(syscalls, 0u);  // invisible to any kernel-side observer
  dev_->kernel().detach_tracepoint(tp);
}

// --- HAL process identity ---------------------------------------------------------

TEST_F(HalServicesTest, HalSyscallsRunOnHalTasks) {
  use_device("A1");
  int hal_syscalls = 0;
  const int tp = dev_->kernel().attach_tracepoint(
      [&](const kernel::Task& t, const kernel::SyscallReq&,
          const kernel::SyscallRes&) {
        if (t.origin == kernel::TaskOrigin::kHal) ++hal_syscalls;
      });
  call("android.hardware.graphics.composer@sim",
       svc::GraphicsHal::kGetDisplayInfo);
  EXPECT_GT(hal_syscalls, 0);
  dev_->kernel().detach_tracepoint(tp);
}

}  // namespace
}  // namespace df::hal
