#include "hal/parcel.h"

#include <gtest/gtest.h>

namespace df::hal {
namespace {

TEST(Parcel, ScalarRoundTrip) {
  Parcel p;
  p.write_u32(0xdeadbeef);
  p.write_i32(-42);
  p.write_u64(0x123456789abcdef0ull);
  p.write_i64(-7);
  p.write_bool(true);
  p.rewind();
  EXPECT_EQ(p.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(p.read_i32(), -42);
  EXPECT_EQ(p.read_u64(), 0x123456789abcdef0ull);
  EXPECT_EQ(p.read_i64(), -7);
  EXPECT_TRUE(p.read_bool());
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(p.remaining(), 0u);
}

TEST(Parcel, StringRoundTrip) {
  Parcel p;
  p.write_string("android.hardware.graphics");
  p.write_string("");
  p.rewind();
  EXPECT_EQ(p.read_string(), "android.hardware.graphics");
  EXPECT_EQ(p.read_string(), "");
  EXPECT_TRUE(p.ok());
}

TEST(Parcel, BlobRoundTrip) {
  Parcel p;
  const std::vector<uint8_t> blob = {0x00, 0xff, 0x7f, 0x80};
  p.write_blob(blob);
  p.rewind();
  EXPECT_EQ(p.read_blob(), blob);
}

TEST(Parcel, UnderflowLatchesNotOk) {
  Parcel p;
  p.write_u32(1);
  p.rewind();
  p.read_u64();  // 8 bytes from a 4-byte parcel
  EXPECT_FALSE(p.ok());
  // Subsequent reads return zero values.
  EXPECT_EQ(p.read_u32(), 0u);
}

TEST(Parcel, TruncatedStringFails) {
  // Length prefix claims 100 bytes, only 2 present.
  Parcel p;
  p.write_u32(100);
  p.write_u32(0);  // 4 bytes of "content"
  p.rewind();
  EXPECT_EQ(p.read_string(), "");
  EXPECT_FALSE(p.ok());
}

TEST(Parcel, RewindRestoresOk) {
  Parcel p;
  p.write_u32(7);
  p.rewind();
  p.read_u64();
  EXPECT_FALSE(p.ok());
  p.rewind();
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(p.read_u32(), 7u);
}

TEST(Parcel, ConstructFromBytes) {
  Parcel a;
  a.write_u32(0x01020304);
  Parcel b(a.bytes());
  EXPECT_EQ(b.read_u32(), 0x01020304u);
}

TEST(Parcel, LittleEndianLayout) {
  Parcel p;
  p.write_u32(0x01020304);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.bytes()[0], 0x04);
  EXPECT_EQ(p.bytes()[3], 0x01);
}

TEST(Parcel, MixedSequence) {
  Parcel p;
  p.write_u32(3);
  p.write_string("cam");
  p.write_blob({{1, 2}});
  p.write_u64(9);
  p.rewind();
  EXPECT_EQ(p.read_u32(), 3u);
  EXPECT_EQ(p.read_string(), "cam");
  EXPECT_EQ(p.read_blob().size(), 2u);
  EXPECT_EQ(p.read_u64(), 9u);
  EXPECT_TRUE(p.ok());
}

}  // namespace
}  // namespace df::hal
