// Integration: every Table II bug has a deterministic DSL reproducer that
// executes through the real broker/executor stack on its device — the same
// path the fuzzer uses. This pins down the full cross-layer plumbing.
#include <gtest/gtest.h>

#include "core/descriptions.h"
#include "core/exec/broker.h"
#include "core/fuzz/crash.h"
#include "device/catalog.h"
#include "dsl/parse.h"

namespace df::core {
namespace {

struct Repro {
  const char* device;
  const char* program;
  const char* expected_title;  // normalized
  const char* component;       // "Kernel" or "HAL"
};

const Repro kRepros[] = {
    // #1 A1: rt1711 probe WARN (the shallow one Syzkaller also finds).
    {"A1",
     "r0 = openat$rt1711()\n"
     "ioctl$RT1711_ATTACH(r0, 0x2)\n"
     "ioctl$RT1711_RESET(r0)\n",
     "WARNING in rt1711_i2c_probe", "Kernel"},
    // #2 A1: Graphics HAL 32-bit stride overflow.
    {"A1",
     "r0 = hal$graphics.createLayer(0x40, 0x1000, 0x1)\n"
     "hal$graphics.setLayerBuffer(r0, 0x40000000, 0x0)\n"
     "hal$graphics.composite()\n",
     "Native crash in Graphics HAL", "HAL"},
    // #3 A1: lockdep invalid subclass via sensors batching.
    {"A1",
     "r0 = hal$sensors.activate(0x2, 0x1)\n"
     "hal$sensors.setDelay(0x2, 0x1f4)\n"
     "hal$sensors.poll(0x10)\n"
     "hal$sensors.batch(0x2, 0x40, 0xc)\n",
     "BUG: looking up invalid subclass", "Kernel"},
    // #4 A1: tcpc repeat role-swap with HV contract.
    {"A1",
     "hal$power.usbInit()\n"
     "hal$power.usbConnect(0x1)\n"
     "hal$power.fastCharge(0x2328, 0xbb8)\n"
     "hal$power.usbRoleSwap(0x1)\n"
     "hal$power.usbRoleSwap(0x1)\n",
     "WARNING in tcpc_role_swap", "Kernel"},
    // #5 A2: mali job-loop hang via the media feedback pipeline.
    {"A2",
     "r0 = hal$media.createSession(0x0)\n"
     "hal$media.configure(r0, 0x280, 0x1e0, 0x1f4)\n"
     "hal$media.start(r0)\n"
     "hal$media.transcode(r0, 0x3, 0x2)\n",
     "Infinite Loop in gpu_mali_job_loop", "Kernel"},
    // #6 A2: Media HAL HEVC 32-bit frame-size overflow.
    {"A2",
     "r0 = hal$media.createSession(0x1)\n"
     "hal$media.configure(r0, 0xea60, 0xea60, 0x1f4)\n"
     "hal$media.queueInput(r0, 0x60000000)\n",
     "Native crash in Media HAL", "HAL"},
    // #7 A2: HCI codec table OOB read.
    {"A2",
     "hal$bluetooth.enable()\n"
     "hal$bluetooth.setCodecs(0x28, blob\"\")\n"
     "hal$bluetooth.readCodecs()\n",
     "KASAN: invalid-access in hci_read_supported_codecs", "Kernel"},
    // #8 B: l2cap disconnect while connecting (Syzkaller-findable too).
    {"B",
     "r0 = hal$bluetooth.connectProfile(0x19)\n"
     "hal$bluetooth.disconnectProfile(r0)\n",
     "WARNING in l2cap_send_disconn_req", "Kernel"},
    // #9 C1: Camera HAL capture after stream teardown.
    {"C1",
     "r0 = hal$camera.openCamera(0x0)\n"
     "hal$camera.configureStreams(r0, 0x2, 0x500, 0x2d0)\n"
     "hal$camera.stopStreams(r0)\n"
     "hal$camera.capture(r0, 0x1)\n",
     "Native crash in Camera HAL", "HAL"},
    // #10 C2: empty rate-table update then associate.
    {"C2",
     "hal$wifi.scan()\n"
     "hal$wifi.setPowerSave(0x2)\n"
     "hal$wifi.setRateMask(0x4, blob\"01020304\")\n"
     "hal$wifi.setRateMask(0x0, blob\"\")\n"
     "hal$wifi.connect(0x0)\n",
     "WARNING in rate_control_rate_init", "Kernel"},
    // #11 D: accept-queue UAF via cleanup ordering.
    {"D",
     "r0 = hal$bluetooth.listenProfile(0x19)\n"
     "r1 = hal$bluetooth.connectProfile(0x19)\n"
     "r2 = hal$bluetooth.acceptProfile(r0)\n"
     "hal$bluetooth.cleanup()\n",
     "KASAN: slab-use-after-free Read in bt_accept_unlink", "Kernel"},
    // #12 E: VRAW full-res reconfigure while streaming, then querycap.
    {"E",
     "r0 = hal$camera.openCamera(0x0)\n"
     "hal$camera.configureStreams(r0, 0x2, 0x280, 0x1e0)\n"
     "hal$camera.capture(r0, 0x1)\n"
     "hal$camera.setVendorFormat(r0, 0x3)\n"
     "hal$camera.getCapabilities(r0)\n",
     "WARNING in v4l_querycap", "Kernel"},
};

class BugReproTest : public ::testing::TestWithParam<Repro> {};

TEST_P(BugReproTest, ReproducesOnItsDevice) {
  const Repro& r = GetParam();
  auto dev = device::make_device(r.device, 1);
  ASSERT_NE(dev, nullptr);
  dsl::CallTable table;
  add_syscall_descriptions(table, *dev);
  for (const auto& svc : dev->services()) {
    std::vector<std::pair<uint32_t, double>> w;
    for (const auto& uw : svc->app_usage_profile()) {
      w.emplace_back(uw.code, uw.weight);
    }
    add_hal_interface(table, svc->descriptor(), svc->interface(), w);
  }
  const trace::SpecTable spec = make_spec_table(table);
  Broker broker(*dev, spec);

  std::string err;
  auto prog = dsl::parse_program(r.program, table, &err);
  ASSERT_TRUE(prog.has_value()) << err;
  const ExecResult res = broker.execute(*prog);
  ASSERT_TRUE(res.any_bug()) << r.expected_title;

  std::string got;
  if (!res.kernel_reports.empty()) {
    got = normalize_title(res.kernel_reports.back().title);
  }
  if (!res.hal_crashes.empty()) {
    got = hal_crash_title(res.hal_crashes.back().service);
  }
  EXPECT_EQ(got, r.expected_title);
  EXPECT_TRUE(res.rebooted);  // harness policy: reboot on any bug
}

TEST_P(BugReproTest, TitleMatchesPlantedBugList) {
  const Repro& r = GetParam();
  bool listed = false;
  for (const auto& b : device::planted_bugs()) {
    if (b.device_id == r.device &&
        normalize_title(r.expected_title).rfind(normalize_title(b.title), 0) ==
            0) {
      listed = true;
      EXPECT_EQ(b.component == "HAL" ? "HAL" : "Kernel", r.component);
    }
  }
  EXPECT_TRUE(listed) << r.expected_title;
}

INSTANTIATE_TEST_SUITE_P(
    AllTwelve, BugReproTest, ::testing::ValuesIn(kRepros),
    [](const ::testing::TestParamInfo<Repro>& info) {
      std::string name = std::string(info.param.device) + "_" +
                         std::to_string(info.index);
      return name;
    });

}  // namespace
}  // namespace df::core
