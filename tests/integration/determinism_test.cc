// Integration: the whole stack is bit-for-bit reproducible from a seed —
// the property every experiment in EXPERIMENTS.md leans on.
#include <gtest/gtest.h>

#include "baseline/difuze.h"
#include "baseline/syzkaller.h"
#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "dsl/fmt.h"

namespace df {
namespace {

TEST(Determinism, FullEngineCampaignReplays) {
  auto run = [](uint64_t seed) {
    auto dev = device::make_device("A1", seed);
    core::EngineConfig cfg;
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    eng.run(2500);
    std::string fingerprint;
    fingerprint += std::to_string(eng.kernel_coverage()) + "/";
    fingerprint += std::to_string(eng.total_coverage()) + "/";
    fingerprint += std::to_string(eng.corpus().size()) + "/";
    fingerprint += std::to_string(eng.relations().edge_count()) + "/";
    for (const auto& b : eng.crashes().bugs()) {
      fingerprint += b.title + "@" + std::to_string(b.first_exec) + ";";
    }
    return fingerprint;
  };
  EXPECT_EQ(run(17), run(17));
  EXPECT_NE(run(17), run(18));
}

TEST(Determinism, CorpusContentsReplay) {
  auto corpus_text = [](uint64_t seed) {
    auto dev = device::make_device("C2", seed);
    core::EngineConfig cfg;
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    eng.run(1200);
    std::string all;
    for (size_t i = 0; i < eng.corpus().size(); ++i) {
      all += dsl::format_program(eng.corpus().at(i).prog);
      all += "---\n";
    }
    return all;
  };
  EXPECT_EQ(corpus_text(23), corpus_text(23));
}

TEST(Determinism, BaselinesReplay) {
  auto syz_cov = [](uint64_t seed) {
    auto dev = device::make_device("B", seed);
    baseline::SyzkallerFuzzer syz(*dev, seed);
    syz.run(1500);
    return syz.kernel_coverage();
  };
  EXPECT_EQ(syz_cov(5), syz_cov(5));

  auto difuze_cov = [](uint64_t seed) {
    auto dev = device::make_device("B", seed);
    baseline::DifuzeFuzzer difuze(*dev, seed);
    difuze.run(1500);
    return difuze.kernel_coverage();
  };
  EXPECT_EQ(difuze_cov(5), difuze_cov(5));
}

TEST(Determinism, DeviceStateMachinesArePure) {
  // Same syscall sequence -> same coverage on two instances.
  auto trace = [](uint64_t seed) {
    auto dev = device::make_device("A1", seed);
    auto& k = dev->kernel();
    const auto task = k.create_task(kernel::TaskOrigin::kNative, "t");
    k.kcov_enable(task);
    kernel::SyscallReq open;
    open.nr = kernel::Sys::kOpenAt;
    open.path = "/dev/tcpc";
    const auto fd = static_cast<int32_t>(k.syscall(task, open).ret);
    for (uint64_t code : {0x5470ull, 0x5471ull, 0x5472ull, 0x5476ull}) {
      kernel::SyscallReq req;
      req.nr = kernel::Sys::kIoctl;
      req.fd = fd;
      req.arg = code;
      kernel::put_u32(req.data, 2);
      k.syscall(task, req);
    }
    return k.kcov_collect(task);
  };
  EXPECT_EQ(trace(1), trace(1));
  EXPECT_EQ(trace(1), trace(99));  // device seed does not leak into fops
}

}  // namespace
}  // namespace df
