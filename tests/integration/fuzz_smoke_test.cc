// Integration: short end-to-end fuzzing campaigns behave as the evaluation
// expects — DroidFuzz finds cross-boundary bugs, Syzkaller stays blind to
// the HAL, and the comparative coverage ordering holds.
#include <gtest/gtest.h>

#include "baseline/difuze.h"
#include "baseline/syzkaller.h"
#include "core/fuzz/engine.h"
#include "device/catalog.h"

namespace df {
namespace {

TEST(FuzzSmoke, DroidFuzzFindsShallowBugsOnEveryAffectedDevice) {
  // Each (device, bug) pair here is reliably discoverable within a small
  // budget across seeds; the deep ones are exercised by the benches.
  struct Expect {
    const char* device;
    const char* title;
    uint64_t budget;
  };
  const Expect expects[] = {
      {"A1", "WARNING in rt1711_i2c_probe", 6000},
      {"B", "WARNING in l2cap_send_disconn_req", 8000},
      {"E", "WARNING in v4l_querycap", 12000},
  };
  for (const auto& e : expects) {
    auto dev = device::make_device(e.device, 3);
    core::EngineConfig cfg;
    cfg.seed = 3;
    core::Engine eng(*dev, cfg);
    eng.run(e.budget);
    EXPECT_NE(eng.crashes().find(e.title), nullptr)
        << e.device << " " << e.title;
  }
}

TEST(FuzzSmoke, DroidFuzzFindsHalCrashSyzkallerCannot) {
  auto d1 = device::make_device("C1", 3);
  core::EngineConfig cfg;
  cfg.seed = 3;
  core::Engine df(*d1, cfg);
  df.run(20000);
  EXPECT_NE(df.crashes().find("Native crash in Camera HAL"), nullptr);

  auto d2 = device::make_device("C1", 3);
  baseline::SyzkallerFuzzer syz(*d2, 3);
  syz.run(20000);
  EXPECT_EQ(syz.crashes().find("Native crash in Camera HAL"), nullptr);
}

TEST(FuzzSmoke, CoverageOrderingHoldsAcrossDevices) {
  // DroidFuzz beats both baselines on kernel coverage at equal budget
  // (the Fig. 4/5 shape at miniature scale). Syzkaller-vs-Difuze ordering
  // is only asserted on the driver-rich A1, where feedback has room to pay
  // off within the small budget.
  const uint64_t budget = 4000;
  for (const char* id : {"A1", "C2"}) {
    auto d1 = device::make_device(id, 11);
    core::EngineConfig cfg;
    cfg.seed = 11;
    core::Engine df(*d1, cfg);
    df.run(budget);

    auto d2 = device::make_device(id, 11);
    baseline::SyzkallerFuzzer syz(*d2, 11);
    syz.run(budget);

    auto d3 = device::make_device(id, 11);
    baseline::DifuzeFuzzer difuze(*d3, 11);
    difuze.run(budget);

    EXPECT_GT(df.kernel_coverage(), syz.kernel_coverage()) << id;
    EXPECT_GT(df.kernel_coverage(), difuze.kernel_coverage()) << id;
    if (std::string(id) == "A1") {
      EXPECT_GT(syz.kernel_coverage(), difuze.kernel_coverage());
    }
  }
}

TEST(FuzzSmoke, AblationsLandBetweenFullAndSyzkaller) {
  const uint64_t budget = 6000;
  auto mk = [&](core::EngineConfig cfg) {
    auto dev = device::make_device("A2", 13);
    cfg.seed = 13;
    core::Engine eng(*dev, cfg);
    eng.run(budget);
    return eng.kernel_coverage();
  };
  core::EngineConfig full;
  core::EngineConfig norel;
  norel.gen.use_relations = false;
  norel.learn_relations = false;
  core::EngineConfig nohcov;
  nohcov.hal_feedback = false;

  const size_t cov_full = mk(full);
  const size_t cov_norel = mk(norel);
  const size_t cov_nohcov = mk(nohcov);

  auto dev = device::make_device("A2", 13);
  baseline::SyzkallerFuzzer syz(*dev, 13);
  syz.run(budget);

  // Table III shape: both ablations above Syzkaller; full config at/above
  // the ablations (allow small-sample slack on the inner comparisons).
  EXPECT_GT(cov_norel, syz.kernel_coverage());
  EXPECT_GT(cov_nohcov, syz.kernel_coverage());
  EXPECT_GT(cov_full * 10, cov_norel * 9);
  EXPECT_GT(cov_full * 10, cov_nohcov * 9);
}

TEST(FuzzSmoke, RebootsDoNotWedgeTheCampaign) {
  // A1 reboots constantly once the rt1711 WARN is learned; the campaign
  // must keep making progress regardless.
  auto dev = device::make_device("A1", 3);
  core::EngineConfig cfg;
  cfg.seed = 3;
  core::Engine eng(*dev, cfg);
  eng.run(8000);
  EXPECT_GT(dev->kernel().reboot_count(), 10u);
  EXPECT_GT(eng.corpus().size(), 100u);
  EXPECT_EQ(eng.executions(), 8000u);
}

}  // namespace
}  // namespace df
