#include "kernel/dmesg.h"

#include <gtest/gtest.h>

namespace df::kernel {
namespace {

TEST(Dmesg, WarningFormatAndNonFatal) {
  Dmesg d;
  d.warn("rt1711_i2c", "rt1711_i2c_probe", "details");
  ASSERT_EQ(d.ring().size(), 1u);
  EXPECT_EQ(d.ring()[0].title, "WARNING in rt1711_i2c_probe");
  EXPECT_FALSE(d.ring()[0].fatal);
  EXPECT_FALSE(d.panicked());
}

TEST(Dmesg, BugIsFatal) {
  Dmesg d;
  d.bug("lockdep", "looking up invalid subclass: 12");
  EXPECT_EQ(d.ring()[0].title, "BUG: looking up invalid subclass: 12");
  EXPECT_TRUE(d.panicked());
}

TEST(Dmesg, KasanTitleMatchesRealFormat) {
  Dmesg d;
  d.kasan("l2cap", "slab-use-after-free Read", "bt_accept_unlink");
  EXPECT_EQ(d.ring()[0].title,
            "KASAN: slab-use-after-free Read in bt_accept_unlink");
  EXPECT_TRUE(d.panicked());
}

TEST(Dmesg, HangTitle) {
  Dmesg d;
  d.hang("gpu_mali", "gpu_mali_job_loop");
  EXPECT_EQ(d.ring()[0].title, "Infinite Loop in gpu_mali_job_loop");
  EXPECT_TRUE(d.panicked());
}

TEST(Dmesg, PanicTitle) {
  Dmesg d;
  d.panic("core", "attempted to kill init");
  EXPECT_EQ(d.ring()[0].title, "Kernel panic: attempted to kill init");
}

TEST(Dmesg, SequenceNumbersMonotonic) {
  Dmesg d;
  d.warn("a", "f1");
  d.warn("a", "f2");
  d.warn("a", "f3");
  EXPECT_EQ(d.ring()[0].seq, 0u);
  EXPECT_EQ(d.ring()[2].seq, 2u);
  EXPECT_EQ(d.next_seq(), 3u);
}

TEST(Dmesg, SinceFiltersBySeq) {
  Dmesg d;
  d.warn("a", "f1");
  const uint64_t cursor = d.next_seq();
  d.warn("a", "f2");
  const auto recent = d.since(cursor);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].title, "WARNING in f2");
}

TEST(Dmesg, RingEvictsOldestButKeepsSeq) {
  Dmesg d(4);
  for (int i = 0; i < 10; ++i) d.warn("a", "f" + std::to_string(i));
  EXPECT_EQ(d.ring().size(), 4u);
  EXPECT_EQ(d.ring().front().seq, 6u);
  EXPECT_EQ(d.next_seq(), 10u);
}

TEST(Dmesg, ClearPanicKeepsRing) {
  Dmesg d;
  d.bug("x", "b");
  d.clear_panic();
  EXPECT_FALSE(d.panicked());
  EXPECT_EQ(d.ring().size(), 1u);
}

TEST(Dmesg, ClearKeepsSeqCounter) {
  Dmesg d;
  d.warn("a", "f");
  d.clear();
  EXPECT_TRUE(d.ring().empty());
  d.warn("a", "g");
  EXPECT_EQ(d.ring()[0].seq, 1u);  // campaign-global numbering
}

TEST(Dmesg, KindNames) {
  EXPECT_STREQ(report_kind_name(ReportKind::kWarning), "WARNING");
  EXPECT_STREQ(report_kind_name(ReportKind::kKasan), "KASAN");
  EXPECT_STREQ(report_kind_name(ReportKind::kHang), "HANG");
}

}  // namespace
}  // namespace df::kernel
