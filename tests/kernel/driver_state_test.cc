// State-machine introspection: drivers report protocol-state entries and
// transitions through Driver::enter_state(); the base class keeps
// campaign-cumulative visit counts and a transition matrix that survive
// reboots (the driver-state coverage surfaced in BENCH_*.json and crash
// provenance reports).
#include <gtest/gtest.h>

#include "kernel/drivers/ion_alloc.h"
#include "kernel/drivers/rt1711_i2c.h"
#include "tests/kernel/driver_test_util.h"

namespace df::kernel {
namespace {

using drivers::IonDriver;
using drivers::Rt1711Driver;

class DriverStateTest : public ::testing::Test {
 protected:
  testutil::DriverHarness h;
};

TEST_F(DriverStateTest, BootSeedsInitialStateWithoutATransition) {
  Rt1711Driver* drv = h.install<Rt1711Driver>();
  h.boot();
  ASSERT_EQ(drv->state_visits().size(), 3u);
  EXPECT_EQ(drv->current_state(), 0u);
  EXPECT_EQ(drv->state_visits()[0], 1u);  // boot entry into "idle"
  EXPECT_EQ(drv->states_visited(), 1u);
  EXPECT_EQ(drv->transitions_observed(), 0u);
}

TEST_F(DriverStateTest, ExplicitStateDriverTracksProtocolTransitions) {
  Rt1711Driver* drv = h.install<Rt1711Driver>();
  h.boot();
  const int32_t fd = h.open("/dev/rt1711");
  ASSERT_GE(fd, 0);

  ASSERT_EQ(h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({1})).ret, 0);
  EXPECT_EQ(drv->current_state(), 1u);  // attached
  ASSERT_EQ(h.ioctl(fd, Rt1711Driver::kIocAlert, h.u32s({1})).ret, 0);
  EXPECT_EQ(drv->current_state(), 2u);  // alerting

  const auto& m = drv->state_matrix();
  const size_t n = drv->state_visits().size();
  EXPECT_EQ(m[0 * n + 1], 1u);  // idle -> attached
  EXPECT_EQ(m[1 * n + 2], 1u);  // attached -> alerting
  EXPECT_EQ(m[0 * n + 2], 0u);  // never skipped a step
  EXPECT_EQ(drv->states_visited(), 3u);
  EXPECT_EQ(drv->transitions_observed(), 2u);
}

TEST_F(DriverStateTest, FlagGatedDriverDerivesStateAfterEachOp) {
  IonDriver* drv = h.install<IonDriver>();
  h.boot();
  const int32_t fd = h.open("/dev/ion");
  ASSERT_GE(fd, 0);

  const auto alloc = h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({64, 1}));
  ASSERT_EQ(alloc.ret, 0);
  EXPECT_EQ(drv->current_state(), 1u);  // allocated
  const uint32_t id = le_u32(alloc.out, 0);
  ASSERT_EQ(h.ioctl(fd, IonDriver::kIocShare, h.u32s({id})).ret, 0);
  EXPECT_EQ(drv->current_state(), 2u);  // shared
  ASSERT_EQ(h.ioctl(fd, IonDriver::kIocFree, h.u32s({id})).ret, 0);
  EXPECT_EQ(drv->current_state(), 0u);  // empty again

  const size_t n = drv->state_visits().size();
  EXPECT_EQ(drv->state_matrix()[0 * n + 1], 1u);
  EXPECT_EQ(drv->state_matrix()[1 * n + 2], 1u);
  EXPECT_EQ(drv->state_matrix()[2 * n + 0], 1u);
}

TEST_F(DriverStateTest, ReenteringAStateCountsAVisitNotATransition) {
  IonDriver* drv = h.install<IonDriver>();
  h.boot();
  const int32_t fd = h.open("/dev/ion");
  const uint64_t visits_before = drv->state_visits()[0];
  h.ioctl(fd, IonDriver::kIocQuery);  // no allocator movement
  EXPECT_EQ(drv->state_visits()[0], visits_before + 1);
  EXPECT_EQ(drv->transitions_observed(), 0u);
}

TEST_F(DriverStateTest, TalliesSurviveRebootButCurrentStateResets) {
  Rt1711Driver* drv = h.install<Rt1711Driver>();
  h.boot();
  int32_t fd = h.open("/dev/rt1711");
  ASSERT_EQ(h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({2})).ret, 0);
  ASSERT_EQ(drv->current_state(), 1u);
  const uint64_t idle_visits = drv->state_visits()[0];

  h.kernel.reboot();
  h.task = h.kernel.create_task(TaskOrigin::kNative, "t");
  // Campaign-cumulative: the attach visit and transition are retained; the
  // reboot re-enters state 0 as a visit, not a transition.
  EXPECT_EQ(drv->current_state(), 0u);
  EXPECT_EQ(drv->state_visits()[1], 1u);
  EXPECT_EQ(drv->state_visits()[0], idle_visits + 1);
  const size_t n = drv->state_visits().size();
  EXPECT_EQ(drv->state_matrix()[0 * n + 1], 1u);
  EXPECT_EQ(drv->transitions_observed(), 1u);
}

TEST_F(DriverStateTest, DriversWithoutAStateMachineStayEmpty) {
  class PlainDriver final : public Driver {
   public:
    std::string_view name() const override { return "plain"; }
    std::vector<std::string> nodes() const override {
      return {"/dev/plain"};
    }
  };
  PlainDriver* drv = h.install<PlainDriver>();
  h.boot();
  EXPECT_TRUE(drv->state_visits().empty());
  EXPECT_TRUE(drv->state_matrix().empty());
  EXPECT_EQ(drv->states_visited(), 0u);
  EXPECT_EQ(drv->transitions_observed(), 0u);
}

}  // namespace
}  // namespace df::kernel
