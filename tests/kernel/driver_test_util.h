// Shared helpers for driver-level tests: a booted kernel + one native task
// and terse syscall wrappers.
#pragma once

#include <gtest/gtest.h>

#include "kernel/kernel.h"

namespace df::kernel::testutil {

class DriverHarness {
 public:
  DriverHarness() = default;

  template <typename D, typename... Args>
  D* install(Args&&... args) {
    auto drv = std::make_unique<D>(std::forward<Args>(args)...);
    D* raw = drv.get();
    kernel.register_driver(std::move(drv));
    return raw;
  }

  void boot() {
    kernel.boot();
    task = kernel.create_task(TaskOrigin::kNative, "t");
  }

  int32_t open(const std::string& path, uint64_t flags = 0) {
    SyscallReq req;
    req.nr = Sys::kOpenAt;
    req.path = path;
    req.arg = flags;
    return static_cast<int32_t>(kernel.syscall(task, req).ret);
  }

  int64_t close(int32_t fd) {
    SyscallReq req;
    req.nr = Sys::kClose;
    req.fd = fd;
    return kernel.syscall(task, req).ret;
  }

  SyscallRes ioctl(int32_t fd, uint64_t code,
                   std::vector<uint8_t> data = {}) {
    SyscallReq req;
    req.nr = Sys::kIoctl;
    req.fd = fd;
    req.arg = code;
    req.data = std::move(data);
    return kernel.syscall(task, req);
  }

  SyscallRes read(int32_t fd, size_t n) {
    SyscallReq req;
    req.nr = Sys::kRead;
    req.fd = fd;
    req.size = n;
    return kernel.syscall(task, req);
  }

  int64_t write(int32_t fd, std::vector<uint8_t> data) {
    SyscallReq req;
    req.nr = Sys::kWrite;
    req.fd = fd;
    req.data = std::move(data);
    return kernel.syscall(task, req).ret;
  }

  int32_t socket(uint64_t family, uint64_t type, uint64_t proto) {
    SyscallReq req;
    req.nr = Sys::kSocket;
    req.arg = family;
    req.arg2 = type;
    req.arg3 = proto;
    return static_cast<int32_t>(kernel.syscall(task, req).ret);
  }

  int64_t bind(int32_t fd, std::vector<uint8_t> addr) {
    SyscallReq req;
    req.nr = Sys::kBind;
    req.fd = fd;
    req.data = std::move(addr);
    return kernel.syscall(task, req).ret;
  }

  int64_t connect(int32_t fd, std::vector<uint8_t> addr) {
    SyscallReq req;
    req.nr = Sys::kConnect;
    req.fd = fd;
    req.data = std::move(addr);
    return kernel.syscall(task, req).ret;
  }

  int64_t listen(int32_t fd, uint64_t backlog) {
    SyscallReq req;
    req.nr = Sys::kListen;
    req.fd = fd;
    req.arg = backlog;
    return kernel.syscall(task, req).ret;
  }

  int32_t accept(int32_t fd) {
    SyscallReq req;
    req.nr = Sys::kAccept;
    req.fd = fd;
    return static_cast<int32_t>(kernel.syscall(task, req).ret);
  }

  int64_t sendmsg(int32_t fd, std::vector<uint8_t> data) {
    SyscallReq req;
    req.nr = Sys::kSendmsg;
    req.fd = fd;
    req.data = std::move(data);
    return kernel.syscall(task, req).ret;
  }

  SyscallRes recvmsg(int32_t fd, size_t n) {
    SyscallReq req;
    req.nr = Sys::kRecvmsg;
    req.fd = fd;
    req.size = n;
    return kernel.syscall(task, req);
  }

  // Last dmesg title, or "" when the log is empty.
  std::string last_report() const {
    const auto& ring = kernel.dmesg().ring();
    return ring.empty() ? "" : ring.back().title;
  }

  static std::vector<uint8_t> u32s(std::initializer_list<uint32_t> vals) {
    std::vector<uint8_t> out;
    for (uint32_t v : vals) put_u32(out, v);
    return out;
  }

  Kernel kernel;
  TaskId task = 0;
};

}  // namespace df::kernel::testutil
