// Tests for the Bluetooth stack: bt_hci (Table II #7 codec OOB) and l2cap
// (Table II #8 disconnect WARN, #11 accept-queue UAF).
#include <gtest/gtest.h>

#include "kernel/drivers/bt_hci.h"
#include "kernel/drivers/l2cap.h"
#include "tests/kernel/driver_test_util.h"

namespace df::kernel {
namespace {

using drivers::BtHciBugs;
using drivers::BtHciDriver;
using drivers::L2capBugs;
using drivers::L2capDriver;
using testutil::DriverHarness;

std::vector<uint8_t> hci_pkt(uint16_t opcode,
                             const std::vector<uint8_t>& params = {}) {
  std::vector<uint8_t> pkt;
  pkt.reserve(4 + params.size());
  pkt.push_back(0x01);
  pkt.push_back(static_cast<uint8_t>(opcode & 0xff));
  pkt.push_back(static_cast<uint8_t>(opcode >> 8));
  pkt.push_back(static_cast<uint8_t>(params.size()));
  pkt.insert(pkt.end(), params.begin(), params.end());
  return pkt;
}

class BtHciTest : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<BtHciDriver>(BtHciBugs{.codec_oob = buggy});
    h.boot();
    fd = h.socket(kAfBluetooth, kSockRaw, kBtProtoHci);
    ASSERT_GE(fd, 0);
  }
  void bring_up() {
    ASSERT_EQ(h.bind(fd, {0}), 0);
    ASSERT_EQ(h.ioctl(fd, BtHciDriver::kIocDevUp).ret, 0);
    // Unlock vendor commands via a valid transport baudrate.
    ASSERT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetBaudrate,
                                    {0x00, 0x10, 0x0e, 0x00})),
              0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(BtHciTest, BindValidatesAdapter) {
  init(true);
  EXPECT_EQ(h.bind(fd, {5}), err::kENODEV);
  EXPECT_EQ(h.bind(fd, {0}), 0);
  EXPECT_EQ(h.bind(fd, {0}), err::kEINVAL);  // double bind
}

TEST_F(BtHciTest, CommandsRequireAdapterUp) {
  init(true);
  h.bind(fd, {0});
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpReset)), err::kENODEV);
  EXPECT_EQ(h.ioctl(fd, BtHciDriver::kIocDevUp).ret, 0);
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpReset)), 0);
}

TEST_F(BtHciTest, DevUpIsExclusive) {
  init(true);
  h.bind(fd, {0});
  h.ioctl(fd, BtHciDriver::kIocDevUp);
  EXPECT_EQ(h.ioctl(fd, BtHciDriver::kIocDevUp).ret, err::kEBUSY);
}

TEST_F(BtHciTest, FramingValidated) {
  init(true);
  bring_up();
  EXPECT_EQ(h.sendmsg(fd, {0x02, 0x01, 0x0c}), err::kEINVAL);  // wrong type
  EXPECT_EQ(h.sendmsg(fd, {0x01}), err::kEINVAL);              // truncated
  // plen beyond payload.
  EXPECT_EQ(h.sendmsg(fd, {0x01, 0x01, 0x0c, 0x08}), err::kEINVAL);
}

TEST_F(BtHciTest, CommandCompleteEventDelivered) {
  init(true);
  bring_up();
  h.sendmsg(fd, hci_pkt(BtHciDriver::kOpReadLocalVersion));
  // Drain the baudrate + read-version events.
  auto ev = h.recvmsg(fd, 64);
  EXPECT_GT(ev.ret, 0);
  EXPECT_EQ(ev.out[0], 0x04);  // event packet
  EXPECT_EQ(ev.out[1], 0x0e);  // command complete
}

TEST_F(BtHciTest, RecvWithNoEventsIsEagain) {
  init(true);
  h.bind(fd, {0});
  EXPECT_EQ(h.recvmsg(fd, 64).ret, err::kEAGAIN);
}

TEST_F(BtHciTest, VendorCommandsLockedWithoutBaudrate) {
  init(true);
  h.bind(fd, {0});
  h.ioctl(fd, BtHciDriver::kIocDevUp);
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetCodecTable, {12})),
            err::kEPERM);
}

TEST_F(BtHciTest, InvalidBaudrateDoesNotUnlock) {
  init(true);
  h.bind(fd, {0});
  h.ioctl(fd, BtHciDriver::kIocDevUp);
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetBaudrate,
                                  {0x39, 0x30, 0x00, 0x00})),
            err::kEINVAL);
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetCodecTable, {4})),
            err::kEPERM);
}

TEST_F(BtHciTest, CodecCountWithinCapacityIsSafe) {
  init(true);
  bring_up();
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetCodecTable, {8})), 0);
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpReadCodecs)), 0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(BtHciTest, OversizedCodecCountTriggersKasanWhenBuggy) {
  init(true);
  bring_up();
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetCodecTable, {20})), 0);
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpReadCodecs)), err::kEFAULT);
  EXPECT_EQ(h.last_report(),
            "KASAN: invalid-access in hci_read_supported_codecs");
  EXPECT_TRUE(h.kernel.panicked());
}

TEST_F(BtHciTest, FixedFirmwareRejectsOversizedCount) {
  init(false);
  bring_up();
  EXPECT_EQ(h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetCodecTable, {20})),
            err::kEINVAL);
  h.sendmsg(fd, hci_pkt(BtHciDriver::kOpReadCodecs));
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(BtHciTest, DevDownFreesCodecTableSafely) {
  init(true);
  bring_up();
  h.sendmsg(fd, hci_pkt(BtHciDriver::kOpVsSetCodecTable, {4}));
  EXPECT_EQ(h.ioctl(fd, BtHciDriver::kIocDevDown).ret, 0);
  EXPECT_EQ(h.last_report(), "");  // no double-free / leak report
  EXPECT_EQ(h.kernel.kasan().heap().live_count(), 0u);
}

class L2capTest : public ::testing::Test {
 protected:
  void init(L2capBugs bugs) {
    h.install<L2capDriver>(bugs);
    h.boot();
  }
  int32_t sock() { return h.socket(kAfBluetooth, kSockSeqpacket, kBtProtoL2cap); }
  static std::vector<uint8_t> psm_addr(uint16_t psm) {
    return {static_cast<uint8_t>(psm & 0xff), static_cast<uint8_t>(psm >> 8)};
  }
  DriverHarness h;
};

TEST_F(L2capTest, BindValidatesPsm) {
  init({});
  const int32_t s = sock();
  EXPECT_EQ(h.bind(s, psm_addr(2)), err::kEINVAL);      // even PSM
  EXPECT_EQ(h.bind(s, psm_addr(0x1001)), err::kEINVAL); // out of range
  EXPECT_EQ(h.bind(s, psm_addr(25)), 0);
  const int32_t s2 = sock();
  EXPECT_EQ(h.bind(s2, psm_addr(25)), err::kEADDRINUSE);
}

TEST_F(L2capTest, DisconnectWhileConnectingWarnsWhenBuggy) {
  init({.disconn_warn = true});
  const int32_t s = sock();
  // No listener on this PSM: the channel stays CONNECTING.
  EXPECT_EQ(h.connect(s, psm_addr(25)), 0);
  EXPECT_EQ(h.sendmsg(s, {L2capDriver::kCtlDisconnReq}), 0);
  EXPECT_EQ(h.last_report(), "WARNING in l2cap_send_disconn_req");
}

TEST_F(L2capTest, DisconnectWhileConnectingSilentWhenFixed) {
  init({});
  const int32_t s = sock();
  h.connect(s, psm_addr(25));
  h.sendmsg(s, {L2capDriver::kCtlDisconnReq});
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(L2capTest, LoopbackConnectionEstablishes) {
  init({});
  const int32_t listener = sock();
  ASSERT_EQ(h.bind(listener, psm_addr(25)), 0);
  ASSERT_EQ(h.listen(listener, 4), 0);
  const int32_t client = sock();
  ASSERT_EQ(h.connect(client, psm_addr(25)), 0);
  // Client must finish config before data.
  EXPECT_EQ(h.sendmsg(client, {0x10, 1, 2, 3}), err::kEPIPE);
  std::vector<uint8_t> cfg{L2capDriver::kCtlConfigReq};
  put_u32(cfg, 672);
  EXPECT_EQ(h.sendmsg(client, cfg), 0);
  EXPECT_EQ(h.sendmsg(client, {0x10, 1, 2, 3}), 4);
  const int32_t child = h.accept(listener);
  EXPECT_GE(child, 0);
}

TEST_F(L2capTest, AcceptWithoutPendingIsEagain) {
  init({});
  const int32_t listener = sock();
  h.bind(listener, psm_addr(25));
  h.listen(listener, 2);
  EXPECT_EQ(h.accept(listener), err::kEAGAIN);
}

TEST_F(L2capTest, BacklogLimitsPending) {
  init({});
  const int32_t listener = sock();
  h.bind(listener, psm_addr(25));
  h.listen(listener, 1);
  const int32_t c1 = sock();
  EXPECT_EQ(h.connect(c1, psm_addr(25)), 0);
  // Backlog full: the next connect degrades to a remote-style CONNECTING.
  const int32_t c2 = sock();
  EXPECT_EQ(h.connect(c2, psm_addr(25)), 0);
  EXPECT_GE(h.accept(listener), 0);
  EXPECT_EQ(h.accept(listener), err::kEAGAIN);
}

TEST_F(L2capTest, AcceptUnlinkUafOnCloseOrderWhenBuggy) {
  init({.accept_unlink_uaf = true});
  const int32_t listener = sock();
  h.bind(listener, psm_addr(25));
  h.listen(listener, 4);
  const int32_t client = sock();
  h.connect(client, psm_addr(25));
  const int32_t child = h.accept(listener);
  ASSERT_GE(child, 0);
  EXPECT_EQ(h.close(listener), 0);  // frees the accept queue
  EXPECT_EQ(h.close(child), 0);     // bt_accept_unlink touches freed queue
  EXPECT_EQ(h.last_report(),
            "KASAN: slab-use-after-free Read in bt_accept_unlink");
}

TEST_F(L2capTest, ReverseCloseOrderIsSafeEvenWhenBuggy) {
  init({.accept_unlink_uaf = true});
  const int32_t listener = sock();
  h.bind(listener, psm_addr(25));
  h.listen(listener, 4);
  const int32_t client = sock();
  h.connect(client, psm_addr(25));
  const int32_t child = h.accept(listener);
  EXPECT_EQ(h.close(child), 0);  // unlink while the queue is live
  EXPECT_EQ(h.close(listener), 0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(L2capTest, FixedKernelUnlinksAtAcceptTime) {
  init({});
  const int32_t listener = sock();
  h.bind(listener, psm_addr(25));
  h.listen(listener, 4);
  const int32_t client = sock();
  h.connect(client, psm_addr(25));
  const int32_t child = h.accept(listener);
  h.close(listener);
  h.close(child);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(L2capTest, SetsockoptValidation) {
  init({});
  const int32_t s = sock();
  SyscallReq req;
  req.nr = Sys::kSetsockopt;
  req.fd = s;
  req.arg = 6;   // SOL_L2CAP
  req.arg2 = 1;  // mtu
  put_u32(req.data, 16);  // below minimum
  EXPECT_EQ(h.kernel.syscall(h.task, req).ret, err::kEINVAL);
  req.data.clear();
  put_u32(req.data, 1024);
  EXPECT_EQ(h.kernel.syscall(h.task, req).ret, 0);
  req.arg = 1;  // wrong level
  EXPECT_EQ(h.kernel.syscall(h.task, req).ret, err::kEOPNOTSUPP);
}

TEST_F(L2capTest, MtuEnforcedOnData) {
  init({});
  const int32_t listener = sock();
  h.bind(listener, psm_addr(25));
  h.listen(listener, 4);
  const int32_t client = sock();
  h.connect(client, psm_addr(25));
  // Config with a tiny MTU.
  std::vector<uint8_t> cfg{L2capDriver::kCtlConfigReq};
  put_u32(cfg, 48);
  h.sendmsg(client, cfg);
  std::vector<uint8_t> big(64, 0x10);
  EXPECT_EQ(h.sendmsg(client, big), err::kEINVAL);
}

}  // namespace
}  // namespace df::kernel
