// Tests for the GPU-side drivers: gpu_mali (Table II #5 infinite loop),
// drm_gpu and ion_alloc.
#include <gtest/gtest.h>

#include "kernel/drivers/drm_gpu.h"
#include "kernel/drivers/gpu_mali.h"
#include "kernel/drivers/ion_alloc.h"
#include "tests/kernel/driver_test_util.h"

namespace df::kernel {
namespace {

using drivers::DrmGpuDriver;
using drivers::IonDriver;
using drivers::MaliBugs;
using drivers::MaliDriver;
using testutil::DriverHarness;

class MaliTest : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<MaliDriver>(MaliBugs{.job_loop = buggy});
    h.boot();
    fd = h.open("/dev/mali0");
    ASSERT_GE(fd, 0);
  }
  uint32_t create_ctx() {
    const auto res = h.ioctl(fd, MaliDriver::kIocCtxCreate);
    EXPECT_EQ(res.ret, 0);
    return le_u32(res.out, 0);
  }
  // Builds a submit payload: ctx, njobs, then {type, dep} records.
  std::vector<uint8_t> submit_payload(
      uint32_t ctx, std::vector<std::pair<uint32_t, uint32_t>> jobs) {
    std::vector<uint8_t> p;
    put_u32(p, ctx);
    put_u32(p, static_cast<uint32_t>(jobs.size()));
    for (auto [type, dep] : jobs) {
      put_u32(p, type);
      put_u32(p, dep);
    }
    return p;
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(MaliTest, CtxLifecycle) {
  init(false);
  const uint32_t c1 = create_ctx();
  const uint32_t c2 = create_ctx();
  EXPECT_NE(c1, c2);
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocCtxDestroy, h.u32s({c1})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocCtxDestroy, h.u32s({c1})).ret,
            err::kEINVAL);
}

TEST_F(MaliTest, CtxLimit) {
  init(false);
  for (int i = 0; i < 16; ++i) create_ctx();
  const auto res = h.ioctl(fd, MaliDriver::kIocCtxCreate);
  EXPECT_EQ(res.ret, err::kENOSPC);
}

TEST_F(MaliTest, SubmitRequiresMemPool) {
  init(false);
  const uint32_t ctx = create_ctx();
  const auto payload = submit_payload(ctx, {{MaliDriver::kJobVertex, 0}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret,
            err::kENOMEM);
}

TEST_F(MaliTest, LinearChainCompletes) {
  init(false);
  const uint32_t ctx = create_ctx();
  h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 64}));
  const auto payload = submit_payload(ctx, {{MaliDriver::kJobCompute, 0},
                                            {MaliDriver::kJobVertex, 1},
                                            {MaliDriver::kJobFragment, 2}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret, 0);
  const auto wait = h.ioctl(fd, MaliDriver::kIocJobWait, h.u32s({ctx}));
  EXPECT_EQ(le_u64(wait.out, 0), 3u);
}

TEST_F(MaliTest, CyclicChainHangsWatchdogWhenBuggy) {
  init(true);
  const uint32_t ctx = create_ctx();
  h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 64}));
  // job1 <- job2, job2 <- job1: cycle including a fragment job.
  const auto payload = submit_payload(ctx, {{MaliDriver::kJobVertex, 2},
                                            {MaliDriver::kJobFragment, 1}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret, err::kEINTR);
  EXPECT_EQ(h.last_report(), "Infinite Loop in gpu_mali_job_loop");
  EXPECT_TRUE(h.kernel.panicked());
}

TEST_F(MaliTest, SelfDependencyAlsoHangs) {
  init(true);
  const uint32_t ctx = create_ctx();
  h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 64}));
  const auto payload = submit_payload(ctx, {{MaliDriver::kJobFragment, 1}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret, err::kEINTR);
}

TEST_F(MaliTest, FixedDriverRejectsCycle) {
  init(false);
  const uint32_t ctx = create_ctx();
  h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 64}));
  const auto payload = submit_payload(ctx, {{MaliDriver::kJobVertex, 2},
                                            {MaliDriver::kJobFragment, 1}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret,
            err::kEINVAL);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(MaliTest, BuggyDriverWithoutFragmentStillChecks) {
  init(true);
  const uint32_t ctx = create_ctx();
  h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 64}));
  // Cycle of vertex jobs only: the vendor fast path is not taken.
  const auto payload = submit_payload(ctx, {{MaliDriver::kJobVertex, 2},
                                            {MaliDriver::kJobVertex, 1}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret,
            err::kEINVAL);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(MaliTest, SubmitValidatesJobType) {
  init(false);
  const uint32_t ctx = create_ctx();
  h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 64}));
  const auto payload = submit_payload(ctx, {{7, 0}});
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocJobSubmit, payload).ret,
            err::kEINVAL);
}

TEST_F(MaliTest, MemPoolValidation) {
  init(false);
  const uint32_t ctx = create_ctx();
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 0})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({ctx, 70000})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, MaliDriver::kIocMemPool, h.u32s({9999, 64})).ret,
            err::kEINVAL);
}

class DrmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h.install<DrmGpuDriver>();
    h.boot();
    fd = h.open("/dev/dri_card0");
    ASSERT_GE(fd, 0);
  }
  uint32_t create_bo(uint32_t pages) {
    const auto res = h.ioctl(fd, DrmGpuDriver::kIocCreateBo, h.u32s({pages}));
    EXPECT_EQ(res.ret, 0);
    return le_u32(res.out, 0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(DrmTest, BoLifecycle) {
  const uint32_t bo = create_bo(16);
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocMapBo, h.u32s({bo})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocDestroyBo, h.u32s({bo})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocMapBo, h.u32s({bo})).ret,
            err::kEINVAL);
}

TEST_F(DrmTest, SubmitRequiresMappedBos) {
  const uint32_t bo = create_bo(4);
  std::vector<uint8_t> sub;
  put_u32(sub, 0);  // pipe
  put_u32(sub, 1);  // count
  put_u32(sub, bo);
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocSubmit, sub).ret, err::kEFAULT);
  h.ioctl(fd, DrmGpuDriver::kIocMapBo, h.u32s({bo}));
  const auto res = h.ioctl(fd, DrmGpuDriver::kIocSubmit, sub);
  EXPECT_EQ(res.ret, 0);
  const uint32_t fence = le_u32(res.out, 0);
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocWait, h.u32s({fence})).ret, 0);
}

TEST_F(DrmTest, WaitRejectsUnknownFence) {
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocWait, h.u32s({55})).ret,
            err::kEINVAL);
}

TEST_F(DrmTest, GetCapBounds) {
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocGetCap, h.u32s({0})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, DrmGpuDriver::kIocGetCap, h.u32s({13})).ret,
            err::kEINVAL);
}

class IonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h.install<IonDriver>();
    h.boot();
    fd = h.open("/dev/ion");
    ASSERT_GE(fd, 0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(IonTest, AllocValidations) {
  EXPECT_EQ(h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({0, 1})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({4096, 0})).ret,
            err::kEINVAL);  // no heap
  EXPECT_EQ(h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({(96u << 20), 1})).ret,
            err::kEINVAL);  // too big
  const auto res = h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({4096, 0x3}));
  EXPECT_EQ(res.ret, 0);
  EXPECT_GT(le_u32(res.out, 0), 0u);
}

TEST_F(IonTest, FreeAndShare) {
  const auto a = h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({4096, 1}));
  const uint32_t id = le_u32(a.out, 0);
  const auto sh = h.ioctl(fd, IonDriver::kIocShare, h.u32s({id}));
  EXPECT_EQ(sh.ret, 0);
  EXPECT_EQ(le_u32(sh.out, 0) & 0x7fffffff, id);
  EXPECT_EQ(h.ioctl(fd, IonDriver::kIocFree, h.u32s({id})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, IonDriver::kIocFree, h.u32s({id})).ret, err::kEINVAL);
}

TEST_F(IonTest, QueryCountsLiveBuffers) {
  h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({4096, 1}));
  h.ioctl(fd, IonDriver::kIocAlloc, h.u32s({4096, 2}));
  const auto q = h.ioctl(fd, IonDriver::kIocQuery);
  EXPECT_EQ(le_u32(q.out, 0), 2u);
}

}  // namespace
}  // namespace df::kernel
