// Tests for v4l2_cam (Table II #12), audio_pcm, sensor_hub (Table II #3)
// and wifi_rate (Table II #10).
#include <gtest/gtest.h>

#include "kernel/drivers/audio_pcm.h"
#include "kernel/drivers/sensor_hub.h"
#include "kernel/drivers/v4l2_cam.h"
#include "kernel/drivers/wifi_rate.h"
#include "tests/kernel/driver_test_util.h"

namespace df::kernel {
namespace {

using drivers::AudioPcmDriver;
using drivers::SensorHubBugs;
using drivers::SensorHubDriver;
using drivers::V4l2Bugs;
using drivers::V4l2CamDriver;
using drivers::WifiRateBugs;
using drivers::WifiRateDriver;
using testutil::DriverHarness;

class V4l2Test : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<V4l2CamDriver>(V4l2Bugs{.querycap_warn = buggy});
    h.boot();
    fd = h.open("/dev/video0");
    ASSERT_GE(fd, 0);
  }
  void start_streaming(uint32_t w = 640, uint32_t p = 480) {
    ASSERT_EQ(h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
                      h.u32s({V4l2CamDriver::kFmtNv12, w, p}))
                  .ret,
              0);
    ASSERT_EQ(h.ioctl(fd, V4l2CamDriver::kIocReqbufs, h.u32s({4})).ret, 0);
    ASSERT_EQ(h.ioctl(fd, V4l2CamDriver::kIocQbuf, h.u32s({0})).ret, 0);
    ASSERT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOn).ret, 0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(V4l2Test, FormatNegotiation) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
                    h.u32s({0x12345678, 640, 480}))
                .ret,
            err::kEINVAL);  // unknown fourcc
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
                    h.u32s({V4l2CamDriver::kFmtYuyv, 0, 480}))
                .ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
                    h.u32s({V4l2CamDriver::kFmtYuyv, 5000, 480}))
                .ret,
            err::kEINVAL);
}

TEST_F(V4l2Test, EnumFmtListsFour) {
  init(true);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocEnumFmt, h.u32s({i})).ret, 0);
  }
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocEnumFmt, h.u32s({4})).ret,
            err::kEINVAL);
}

TEST_F(V4l2Test, StreamRequiresQueuedBuffers) {
  init(true);
  h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
          h.u32s({V4l2CamDriver::kFmtNv12, 640, 480}));
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOn).ret, err::kEINVAL);
  h.ioctl(fd, V4l2CamDriver::kIocReqbufs, h.u32s({2}));
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOn).ret, err::kEINVAL);
  h.ioctl(fd, V4l2CamDriver::kIocQbuf, h.u32s({0}));
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOn).ret, 0);
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOn).ret, err::kEBUSY);
}

TEST_F(V4l2Test, CaptureLoop) {
  init(true);
  start_streaming();
  h.ioctl(fd, V4l2CamDriver::kIocQbuf, h.u32s({1}));
  const auto dq = h.ioctl(fd, V4l2CamDriver::kIocDqbuf);
  EXPECT_EQ(dq.ret, 0);
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOff).ret, 0);
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocStreamOff).ret, err::kEINVAL);
}

TEST_F(V4l2Test, VrawFullResWhileStreamingDirtiesCaps) {
  init(true);
  start_streaming(640, 480);
  // Full-resolution (2x) VRAW request while streaming: EBUSY but dirty.
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
                    h.u32s({V4l2CamDriver::kFmtVraw, 1280, 960}))
                .ret,
            err::kEBUSY);
  EXPECT_EQ(h.ioctl(fd, V4l2CamDriver::kIocQuerycap).ret, 0);
  EXPECT_EQ(h.last_report(), "WARNING in v4l_querycap");
}

TEST_F(V4l2Test, WrongDimsDoNotDirtyCaps) {
  init(true);
  start_streaming(640, 480);
  h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
          h.u32s({V4l2CamDriver::kFmtVraw, 640, 480}));  // not 2x
  h.ioctl(fd, V4l2CamDriver::kIocQuerycap);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(V4l2Test, FixedFirmwareNeverWarns) {
  init(false);
  start_streaming(640, 480);
  h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
          h.u32s({V4l2CamDriver::kFmtVraw, 1280, 960}));
  h.ioctl(fd, V4l2CamDriver::kIocQuerycap);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(V4l2Test, WarnFiresOnceThenClears) {
  init(true);
  start_streaming();
  h.ioctl(fd, V4l2CamDriver::kIocSetFmt,
          h.u32s({V4l2CamDriver::kFmtVraw, 1280, 960}));
  h.ioctl(fd, V4l2CamDriver::kIocQuerycap);
  const size_t reports = h.kernel.dmesg().ring().size();
  h.ioctl(fd, V4l2CamDriver::kIocQuerycap);  // dirty flag consumed
  EXPECT_EQ(h.kernel.dmesg().ring().size(), reports);
}

class PcmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h.install<AudioPcmDriver>();
    h.boot();
    fd = h.open("/dev/snd_pcm");
    ASSERT_GE(fd, 0);
  }
  void to_running() {
    ASSERT_EQ(
        h.ioctl(fd, AudioPcmDriver::kIocHwParams, h.u32s({48000, 2, 0})).ret,
        0);
    ASSERT_EQ(h.ioctl(fd, AudioPcmDriver::kIocPrepare).ret, 0);
    ASSERT_EQ(h.ioctl(fd, AudioPcmDriver::kIocStart).ret, 0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(PcmTest, HwParamsValidation) {
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocHwParams, h.u32s({44000, 2, 0}))
                .ret,
            err::kEINVAL);  // non-standard rate
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocHwParams, h.u32s({48000, 0, 0}))
                .ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocHwParams, h.u32s({48000, 9, 0}))
                .ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocHwParams, h.u32s({48000, 2, 7}))
                .ret,
            err::kEINVAL);
}

TEST_F(PcmTest, LifecycleOrderEnforced) {
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocStart).ret, err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocPrepare).ret, err::kEINVAL);
  to_running();
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocStart).ret, err::kEINVAL);
}

TEST_F(PcmTest, WriteRequiresRunning) {
  EXPECT_EQ(h.write(fd, {1, 2, 3, 4}), err::kEPIPE);
  to_running();
  EXPECT_EQ(h.write(fd, {1, 2, 3, 4}), 4);
}

TEST_F(PcmTest, PauseResume) {
  to_running();
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocPause, h.u32s({1})).ret, 0);
  EXPECT_EQ(h.write(fd, {1, 2, 3, 4}), err::kEPIPE);
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocPause, h.u32s({0})).ret, 0);
  EXPECT_EQ(h.write(fd, {1, 2, 3, 4}), 4);
}

TEST_F(PcmTest, DrainReturnsToSetup) {
  to_running();
  h.write(fd, std::vector<uint8_t>(256, 0));
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocDrain).ret, 0);
  EXPECT_EQ(h.ioctl(fd, AudioPcmDriver::kIocPrepare).ret, 0);  // SETUP again
}

TEST_F(PcmTest, StatusReportsFrames) {
  to_running();
  h.write(fd, std::vector<uint8_t>(400, 0));  // 100 frames at 2ch s16
  const auto st = h.ioctl(fd, AudioPcmDriver::kIocStatus);
  EXPECT_EQ(le_u64(st.out, 4), 100u);
}

class SensorHubTest : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<SensorHubDriver>(SensorHubBugs{.lockdep_subclass = buggy});
    h.boot();
    fd = h.open("/dev/sensor_hub");
    ASSERT_GE(fd, 0);
  }
  void stream_sensor(uint32_t id, uint32_t hz) {
    ASSERT_EQ(h.ioctl(fd, SensorHubDriver::kIocEnable, h.u32s({id})).ret, 0);
    ASSERT_EQ(h.ioctl(fd, SensorHubDriver::kIocSetRate, h.u32s({id, hz})).ret,
              0);
    ASSERT_GT(h.read(fd, 64).ret, 0);  // drain one sample batch
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(SensorHubTest, EnableDisableLifecycle) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocEnable, h.u32s({16})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocEnable, h.u32s({3})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocEnable, h.u32s({3})).ret,
            err::kEBUSY);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocDisable, h.u32s({3})).ret, 0);
}

TEST_F(SensorHubTest, RateRequiresEnabled) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocSetRate, h.u32s({3, 100})).ret,
            err::kEINVAL);
}

TEST_F(SensorHubTest, ReadNeedsStreamingSensor) {
  init(true);
  EXPECT_EQ(h.read(fd, 64).ret, err::kEAGAIN);
  h.ioctl(fd, SensorHubDriver::kIocEnable, h.u32s({0}));
  h.ioctl(fd, SensorHubDriver::kIocSetRate, h.u32s({0, 50}));
  EXPECT_GT(h.read(fd, 64).ret, 0);
}

TEST_F(SensorHubTest, LockdepBugNeedsStreamingHighRate) {
  init(true);
  stream_sensor(2, 500);
  EXPECT_EQ(
      h.ioctl(fd, SensorHubDriver::kIocBatch, h.u32s({2, 64, 12})).ret,
      err::kEINVAL);
  EXPECT_EQ(h.last_report(), "BUG: looking up invalid subclass: 12 (lock sensor_hub->fifo_lock)");
  EXPECT_TRUE(h.kernel.panicked());
}

TEST_F(SensorHubTest, LowRateClampsSubclass) {
  init(true);
  stream_sensor(2, 100);  // below the chaining threshold
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocBatch, h.u32s({2, 64, 12})).ret,
            0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(SensorHubTest, NoReadNoChaining) {
  init(true);
  h.ioctl(fd, SensorHubDriver::kIocEnable, h.u32s({2}));
  h.ioctl(fd, SensorHubDriver::kIocSetRate, h.u32s({2, 500}));
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocBatch, h.u32s({2, 64, 12})).ret,
            0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(SensorHubTest, FixedDriverClampsAlways) {
  init(false);
  stream_sensor(2, 500);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocBatch, h.u32s({2, 64, 12})).ret,
            0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(SensorHubTest, SmallSubclassAlwaysFine) {
  init(true);
  stream_sensor(2, 500);
  EXPECT_EQ(h.ioctl(fd, SensorHubDriver::kIocBatch, h.u32s({2, 64, 7})).ret,
            0);
  EXPECT_EQ(h.last_report(), "");
}

class WifiTest : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<WifiRateDriver>(WifiRateBugs{.empty_rates_warn = buggy});
    h.boot();
    fd = h.open("/dev/wifi0");
    ASSERT_GE(fd, 0);
  }
  std::vector<uint8_t> rates(std::vector<uint16_t> rs) {
    std::vector<uint8_t> out;
    put_u32(out, static_cast<uint32_t>(rs.size()));
    for (uint16_t r : rs) put_u16(out, r);
    return out;
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(WifiTest, AssocNeedsScanAndRates) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocAssoc, h.u32s({0})).ret,
            err::kEINVAL);  // no scan
  h.ioctl(fd, WifiRateDriver::kIocScan);
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocAssoc, h.u32s({0})).ret,
            err::kEINVAL);  // no rates
  h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({2, 4, 11}));
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocAssoc, h.u32s({9})).ret,
            err::kEINVAL);  // bss out of range
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocAssoc, h.u32s({1})).ret, 0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(WifiTest, RateTableValidatedAgainstPhy) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({3})).ret,
            err::kEINVAL);  // not a supported rate
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({2, 108})).ret, 0);
}

TEST_F(WifiTest, EmptyUpdateWarnsOnAssocWhenBuggy) {
  init(true);
  h.ioctl(fd, WifiRateDriver::kIocScan);
  h.ioctl(fd, WifiRateDriver::kIocSetPower, h.u32s({2}));
  ASSERT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({2, 4})).ret, 0);
  // Empty *update* accepted on the buggy 11b-compat path.
  ASSERT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocAssoc, h.u32s({0})).ret, 0);
  EXPECT_EQ(h.last_report(), "WARNING in rate_control_rate_init");
}

TEST_F(WifiTest, EmptyTableRejectedWithoutPriorSet) {
  init(true);
  h.ioctl(fd, WifiRateDriver::kIocSetPower, h.u32s({2}));
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({})).ret,
            err::kEINVAL);
}

TEST_F(WifiTest, EmptyTableRejectedInNormalPowerMode) {
  init(true);
  h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({2, 4}));
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({})).ret,
            err::kEINVAL);
}

TEST_F(WifiTest, FixedDriverRejectsEmptyUpdate) {
  init(false);
  h.ioctl(fd, WifiRateDriver::kIocSetPower, h.u32s({2}));
  h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({2, 4}));
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({})).ret,
            err::kEINVAL);
}

TEST_F(WifiTest, DisassocAllowsRescan) {
  init(true);
  h.ioctl(fd, WifiRateDriver::kIocScan);
  h.ioctl(fd, WifiRateDriver::kIocSetRates, rates({2}));
  h.ioctl(fd, WifiRateDriver::kIocAssoc, h.u32s({0}));
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocScan).ret, err::kEBUSY);
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocDisassoc).ret, 0);
  EXPECT_EQ(h.ioctl(fd, WifiRateDriver::kIocScan).ret, 0);
}

}  // namespace
}  // namespace df::kernel
