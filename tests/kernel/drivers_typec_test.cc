// Tests for the Type-C drivers: rt1711_i2c (Table II #1) and tcpc_core
// (Table II #4), with the planted bugs both enabled and disabled.
#include <gtest/gtest.h>

#include "kernel/drivers/rt1711_i2c.h"
#include "kernel/drivers/tcpc_core.h"
#include "tests/kernel/driver_test_util.h"

namespace df::kernel {
namespace {

using drivers::Rt1711Bugs;
using drivers::Rt1711Driver;
using drivers::TcpcBugs;
using drivers::TcpcDriver;
using testutil::DriverHarness;

class Rt1711Test : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<Rt1711Driver>(Rt1711Bugs{.probe_warn = buggy});
    h.boot();
    fd = h.open("/dev/rt1711");
    ASSERT_GE(fd, 0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(Rt1711Test, AttachValidatesMode) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({0})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({4})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({2})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({1})).ret,
            err::kEBUSY);
}

TEST_F(Rt1711Test, DetachRequiresAttach) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocDetach).ret, err::kEINVAL);
  h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({1}));
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocDetach).ret, 0);
}

TEST_F(Rt1711Test, ResetWhileAttachedWarnsWhenBuggy) {
  init(true);
  h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({3}));
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocReset).ret, 0);
  EXPECT_EQ(h.last_report(), "WARNING in rt1711_i2c_probe");
  EXPECT_FALSE(h.kernel.panicked());  // WARN is non-fatal
}

TEST_F(Rt1711Test, ResetWhileIdleIsClean) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocReset).ret, 0);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(Rt1711Test, FixedFirmwareDoesNotWarn) {
  init(false);
  h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({3}));
  h.ioctl(fd, Rt1711Driver::kIocReset);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(Rt1711Test, VbusRequiresAttachAndRange) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocVbus, h.u32s({5000})).ret,
            err::kEINVAL);
  h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({1}));
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocVbus, h.u32s({5000})).ret, 0);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocVbus, h.u32s({25000})).ret,
            err::kEINVAL);
}

TEST_F(Rt1711Test, StatusReflectsState) {
  init(true);
  h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({2}));
  const auto res = h.ioctl(fd, Rt1711Driver::kIocGetStatus);
  ASSERT_EQ(res.ret, 0);
  ASSERT_GE(res.out.size(), 8u);
  EXPECT_EQ(le_u32(res.out, 0), 1u);  // kAttached
  EXPECT_EQ(le_u32(res.out, 4), 2u);  // mode
}

TEST_F(Rt1711Test, AlertFifoDrainsOnRead) {
  init(true);
  h.ioctl(fd, Rt1711Driver::kIocAttach, h.u32s({1}));
  h.ioctl(fd, Rt1711Driver::kIocAlert, h.u32s({0x5}));
  const auto r1 = h.read(fd, 16);
  EXPECT_GT(r1.ret, 0);
  EXPECT_EQ(le_u32(r1.out, 0), 0x5u);
  // Second read: FIFO empty again.
  EXPECT_EQ(h.read(fd, 16).ret, err::kEAGAIN);
}

TEST_F(Rt1711Test, SetCcValidatesPins) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocSetCc, h.u32s({4, 0})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, Rt1711Driver::kIocSetCc, h.u32s({3, 3})).ret, 0);
}

class TcpcTest : public ::testing::Test {
 protected:
  void init(bool buggy) {
    h.install<TcpcDriver>(TcpcBugs{.role_swap_warn = buggy});
    h.boot();
    fd = h.open("/dev/tcpc");
    ASSERT_GE(fd, 0);
  }
  // Runs the full bring-up needed by the planted bug: init, DRP mode,
  // alerts unmasked, partner connected, HV contract, one successful swap.
  void bring_up_to_swap() {
    EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocInit).ret, 0);
    EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({2})).ret, 0);
    EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocSetAlert, h.u32s({0x3f})).ret, 0);
    EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocConnect, h.u32s({1})).ret, 0);
    EXPECT_EQ(
        h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 3000})).ret,
        0);
    EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1})).ret, 0);
  }
  DriverHarness h;
  int32_t fd = -1;
};

TEST_F(TcpcTest, StateMachineOrderEnforced) {
  init(true);
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({2})).ret,
            err::kEINVAL);  // before INIT
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocInit).ret, 0);
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocInit).ret, err::kEBUSY);
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 1000})).ret,
            err::kEINVAL);  // before CONNECT
}

TEST_F(TcpcTest, PdTiersValidated) {
  init(true);
  h.ioctl(fd, TcpcDriver::kIocInit);
  h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({2}));
  h.ioctl(fd, TcpcDriver::kIocConnect, h.u32s({0}));
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({7000, 1000})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 0})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 5001})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({20000, 5000})).ret,
            0);
}

TEST_F(TcpcTest, RepeatSwapToHeldRoleWarnsWhenBuggy) {
  init(true);
  bring_up_to_swap();
  // Second swap to the now-held role trips the assert.
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.last_report(), "WARNING in tcpc_role_swap");
}

TEST_F(TcpcTest, NoWarnWithoutPriorSwap) {
  init(true);
  h.ioctl(fd, TcpcDriver::kIocInit);
  h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({2}));
  h.ioctl(fd, TcpcDriver::kIocSetAlert, h.u32s({0x3f}));
  h.ioctl(fd, TcpcDriver::kIocConnect, h.u32s({1}));
  h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 3000}));
  // Swap to the role already held (0 = sink after DRP init), no prior swap.
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({0})).ret,
            err::kEINVAL);
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(TcpcTest, NoWarnWithAlertsMasked) {
  init(true);
  h.ioctl(fd, TcpcDriver::kIocInit);
  h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({2}));
  h.ioctl(fd, TcpcDriver::kIocConnect, h.u32s({1}));
  h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 3000}));
  h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1}));
  h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1}));
  EXPECT_EQ(h.last_report(), "");  // PD alert bit not unmasked
}

TEST_F(TcpcTest, NoWarnOnFiveVoltContract) {
  init(true);
  h.ioctl(fd, TcpcDriver::kIocInit);
  h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({2}));
  h.ioctl(fd, TcpcDriver::kIocSetAlert, h.u32s({0x3f}));
  h.ioctl(fd, TcpcDriver::kIocConnect, h.u32s({1}));
  h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({5000, 3000}));
  h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1}));
  h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1}));
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(TcpcTest, FixedFirmwareNeverWarns) {
  init(false);
  bring_up_to_swap();
  h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({1}));
  EXPECT_EQ(h.last_report(), "");
}

TEST_F(TcpcTest, FixedRolePortRejectsSwap) {
  init(true);
  h.ioctl(fd, TcpcDriver::kIocInit);
  h.ioctl(fd, TcpcDriver::kIocSetMode, h.u32s({1}));  // source-only
  h.ioctl(fd, TcpcDriver::kIocConnect, h.u32s({1}));
  h.ioctl(fd, TcpcDriver::kIocPdNegotiate, h.u32s({9000, 3000}));
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocRoleSwap, h.u32s({0})).ret,
            err::kEOPNOTSUPP);
}

TEST_F(TcpcTest, DisconnectClearsContract) {
  init(true);
  bring_up_to_swap();
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocDisconnect).ret, 0);
  const auto st = h.ioctl(fd, TcpcDriver::kIocGetState);
  EXPECT_EQ(le_u32(st.out, 8), 0u);  // contract mv cleared
  EXPECT_EQ(h.ioctl(fd, TcpcDriver::kIocDisconnect).ret, err::kEINVAL);
}

TEST_F(TcpcTest, RebootResetsToUninit) {
  init(true);
  bring_up_to_swap();
  h.kernel.reboot();
  const int32_t fd2 = h.open("/dev/tcpc");
  EXPECT_EQ(h.ioctl(fd2, TcpcDriver::kIocSetMode, h.u32s({2})).ret,
            err::kEINVAL);  // back to pre-INIT state
}

}  // namespace
}  // namespace df::kernel
