#include "kernel/kasan.h"

#include <gtest/gtest.h>

namespace df::kernel {
namespace {

class KasanTest : public ::testing::Test {
 protected:
  Dmesg dmesg_;
  Kasan kasan_{dmesg_};

  std::string last_title() {
    return dmesg_.ring().empty() ? "" : dmesg_.ring().back().title;
  }
};

TEST_F(KasanTest, AllocFreeLifecycle) {
  const HeapPtr p = kasan_.alloc(64, "test:obj");
  EXPECT_NE(p, kNullHeapPtr);
  EXPECT_TRUE(kasan_.heap().is_live(p));
  kasan_.free(p, "test", "site");
  EXPECT_FALSE(kasan_.heap().is_live(p));
  EXPECT_EQ(kasan_.report_count(), 0u);
}

TEST_F(KasanTest, ValidAccessPasses) {
  const HeapPtr p = kasan_.alloc(64, "t");
  EXPECT_TRUE(kasan_.check(p, 0, 64, Access::kRead, "t", "f"));
  EXPECT_TRUE(kasan_.check(p, 60, 4, Access::kWrite, "t", "f"));
  EXPECT_EQ(kasan_.report_count(), 0u);
}

TEST_F(KasanTest, OutOfBoundsDetected) {
  const HeapPtr p = kasan_.alloc(64, "t");
  EXPECT_FALSE(kasan_.check(p, 60, 8, Access::kRead, "drv", "my_func"));
  EXPECT_EQ(kasan_.report_count(), 1u);
  EXPECT_EQ(last_title(), "KASAN: slab-out-of-bounds Read in my_func");
  EXPECT_TRUE(dmesg_.panicked());
}

TEST_F(KasanTest, OffsetPastEndDetected) {
  const HeapPtr p = kasan_.alloc(16, "t");
  EXPECT_FALSE(kasan_.check(p, 17, 0, Access::kRead, "drv", "f"));
}

TEST_F(KasanTest, UseAfterFreeDetected) {
  const HeapPtr p = kasan_.alloc(32, "t:obj");
  kasan_.free(p, "drv", "free_site");
  EXPECT_FALSE(kasan_.check(p, 0, 4, Access::kWrite, "drv", "use_site"));
  EXPECT_EQ(last_title(), "KASAN: slab-use-after-free Write in use_site");
}

TEST_F(KasanTest, DoubleFreeDetected) {
  const HeapPtr p = kasan_.alloc(32, "t");
  kasan_.free(p, "drv", "f1");
  kasan_.free(p, "drv", "f2");
  EXPECT_EQ(kasan_.report_count(), 1u);
  EXPECT_EQ(last_title(), "KASAN: double-free in f2");
}

TEST_F(KasanTest, NullDerefDetected) {
  EXPECT_FALSE(kasan_.check(kNullHeapPtr, 0, 4, Access::kRead, "drv", "f"));
  EXPECT_EQ(last_title(), "KASAN: null-ptr-deref Read in f");
}

TEST_F(KasanTest, FreeNullIsNoop) {
  kasan_.free(kNullHeapPtr, "drv", "f");
  EXPECT_EQ(kasan_.report_count(), 0u);
}

TEST_F(KasanTest, WildPointerDetected) {
  EXPECT_FALSE(kasan_.check(0xdeadbeef, 0, 4, Access::kRead, "drv", "f"));
  EXPECT_EQ(last_title(), "KASAN: invalid-access Read in f");
}

TEST_F(KasanTest, InvalidFreeDetected) {
  kasan_.free(0xdeadbeef, "drv", "f");
  EXPECT_EQ(last_title(), "KASAN: invalid-free in f");
}

TEST_F(KasanTest, ReadWriteDataRoundTrip) {
  const HeapPtr p = kasan_.alloc(8, "t");
  const uint8_t src[4] = {1, 2, 3, 4};
  EXPECT_TRUE(kasan_.write(p, 2, src, "drv", "w"));
  uint8_t dst[4] = {};
  EXPECT_TRUE(kasan_.read(p, 2, dst, "drv", "r"));
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
}

TEST_F(KasanTest, ReadPastEndFailsWithoutSideEffects) {
  const HeapPtr p = kasan_.alloc(4, "t");
  uint8_t dst[8] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(kasan_.read(p, 0, dst, "drv", "r"));
  EXPECT_EQ(dst[0], 0xff);  // untouched
}

TEST_F(KasanTest, HandlesNeverReused) {
  const HeapPtr a = kasan_.alloc(8, "a");
  kasan_.free(a, "d", "f");
  const HeapPtr b = kasan_.alloc(8, "b");
  EXPECT_NE(a, b);
  // The stale handle is still attributable after new allocations.
  EXPECT_FALSE(kasan_.check(a, 0, 1, Access::kRead, "d", "g"));
  EXPECT_EQ(last_title(), "KASAN: slab-use-after-free Read in g");
}

TEST_F(KasanTest, HeapAccounting) {
  const HeapPtr a = kasan_.alloc(100, "a");
  const HeapPtr b = kasan_.alloc(28, "b");
  EXPECT_EQ(kasan_.heap().live_count(), 2u);
  EXPECT_EQ(kasan_.heap().live_bytes(), 128u);
  kasan_.free(a, "d", "f");
  EXPECT_EQ(kasan_.heap().live_count(), 1u);
  EXPECT_EQ(kasan_.heap().live_bytes(), 28u);
  (void)b;
}

TEST_F(KasanTest, ResetClearsQuarantine) {
  const HeapPtr a = kasan_.alloc(8, "a");
  kasan_.reset();
  EXPECT_EQ(kasan_.heap().live_count(), 0u);
  // After reset the old handle is a wild pointer, not a UAF.
  EXPECT_FALSE(kasan_.check(a, 0, 1, Access::kRead, "d", "f"));
  EXPECT_EQ(last_title(), "KASAN: invalid-access Read in f");
}

}  // namespace
}  // namespace df::kernel
