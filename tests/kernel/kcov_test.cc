#include "kernel/kcov.h"

#include <gtest/gtest.h>

namespace df::kernel {
namespace {

TEST(CovFeature, PacksDriverAndBlock) {
  const uint64_t f = cov_feature(7, 1234);
  EXPECT_EQ(cov_driver(f), 7);
  EXPECT_EQ(f & 0xffffffffffffull, 1234u);
}

TEST(CovFeature, DistinctDriversDistinctFeatures) {
  EXPECT_NE(cov_feature(1, 5), cov_feature(2, 5));
  EXPECT_NE(cov_feature(1, 5), cov_feature(1, 6));
}

TEST(CovFeature, BlockMaskedTo48Bits) {
  const uint64_t f = cov_feature(1, 0xffffffffffffffffull);
  EXPECT_EQ(cov_driver(f), 1);
}

TEST(Kcov, DisabledByDefault) {
  Kcov k;
  k.hit(1);
  EXPECT_EQ(k.pending(), 0u);
}

TEST(Kcov, CollectsWhenEnabled) {
  Kcov k;
  k.enable();
  k.hit(1);
  k.hit(2);
  EXPECT_EQ(k.pending(), 2u);
  const auto v = k.collect();
  EXPECT_EQ(v, (std::vector<uint64_t>{1, 2}));
}

TEST(Kcov, DeduplicatesWithinExecution) {
  Kcov k;
  k.enable();
  for (int i = 0; i < 100; ++i) k.hit(42);
  EXPECT_EQ(k.pending(), 1u);
}

TEST(Kcov, CollectResetsDedup) {
  Kcov k;
  k.enable();
  k.hit(42);
  k.collect();
  k.hit(42);
  EXPECT_EQ(k.pending(), 1u);  // fresh execution re-records
}

TEST(Kcov, PreservesFirstHitOrder) {
  Kcov k;
  k.enable();
  k.hit(3);
  k.hit(1);
  k.hit(2);
  k.hit(1);
  EXPECT_EQ(k.collect(), (std::vector<uint64_t>{3, 1, 2}));
}

TEST(Kcov, DisableStopsCollection) {
  Kcov k;
  k.enable();
  k.hit(1);
  k.disable();
  k.hit(2);
  EXPECT_EQ(k.collect(), (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace df::kernel
