#include "kernel/kernel.h"

#include <gtest/gtest.h>

namespace df::kernel {
namespace {

// A minimal stateful driver used to exercise the kernel plumbing.
class EchoDriver final : public Driver {
 public:
  std::string_view name() const override { return "echo"; }
  std::vector<std::string> nodes() const override { return {"/dev/echo"}; }
  std::vector<SockTriple> socket_protos() const override {
    return {{99, 1, 7}};
  }

  void probe(DriverCtx& ctx) override {
    ++probes;
    ctx.cov(1);
  }
  void reset() override { opens = 0; }

  int64_t open(DriverCtx& ctx, File& f) override {
    ctx.cov(10);
    ++opens;
    f.make_state<int>(opens);
    return 0;
  }
  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    ctx.cov(20 + req % 5);
    if (req == 0xdead) return err::kEINVAL;
    out.assign(in.begin(), in.end());
    if (auto* n = f.state<int>()) put_u32(out, static_cast<uint32_t>(*n));
    return 0;
  }
  int64_t write(DriverCtx& ctx, File&, std::span<const uint8_t> d) override {
    ctx.cov(30);
    return static_cast<int64_t>(d.size());
  }
  int64_t sock_create(DriverCtx& ctx, File&) override {
    ctx.cov(40);
    return 0;
  }
  void release(DriverCtx&, File&) override { ++releases; }

  int probes = 0;
  int opens = 0;
  int releases = 0;
};

class KernelCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    drv_ = &static_cast<EchoDriver&>(
        kernel_.register_driver(std::make_unique<EchoDriver>()));
    kernel_.boot();
    task_ = kernel_.create_task(TaskOrigin::kNative, "test");
  }

  SyscallRes open_echo() {
    SyscallReq req;
    req.nr = Sys::kOpenAt;
    req.path = "/dev/echo";
    return kernel_.syscall(task_, req);
  }

  Kernel kernel_;
  EchoDriver* drv_ = nullptr;
  TaskId task_ = 0;
};

TEST_F(KernelCoreTest, BootProbesDrivers) {
  EXPECT_TRUE(kernel_.booted());
  EXPECT_EQ(drv_->probes, 1);
}

TEST_F(KernelCoreTest, OpenReturnsFd) {
  const auto res = open_echo();
  EXPECT_GE(res.ret, 3);  // 0..2 reserved
  EXPECT_EQ(drv_->opens, 1);
}

TEST_F(KernelCoreTest, OpenUnknownPathIsEnoent) {
  SyscallReq req;
  req.nr = Sys::kOpenAt;
  req.path = "/dev/nothing";
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kENOENT);
}

TEST_F(KernelCoreTest, IoctlRoundTrip) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq req;
  req.nr = Sys::kIoctl;
  req.fd = fd;
  req.arg = 0x1;
  req.data = {0xaa, 0xbb};
  const auto res = kernel_.syscall(task_, req);
  EXPECT_EQ(res.ret, 0);
  ASSERT_GE(res.out.size(), 2u);
  EXPECT_EQ(res.out[0], 0xaa);
}

TEST_F(KernelCoreTest, BadFdErrors) {
  SyscallReq req;
  req.nr = Sys::kIoctl;
  req.fd = 12345;
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEBADF);
  req.nr = Sys::kClose;
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEBADF);
}

TEST_F(KernelCoreTest, CloseRunsReleaseOnce) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq req;
  req.nr = Sys::kClose;
  req.fd = fd;
  EXPECT_EQ(kernel_.syscall(task_, req).ret, 0);
  EXPECT_EQ(drv_->releases, 1);
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEBADF);  // already closed
  EXPECT_EQ(drv_->releases, 1);
}

TEST_F(KernelCoreTest, DupSharesOpenFileDescription) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq dup;
  dup.nr = Sys::kDup;
  dup.fd = fd;
  const auto fd2 = static_cast<int32_t>(kernel_.syscall(task_, dup).ret);
  EXPECT_NE(fd, fd2);

  SyscallReq close1;
  close1.nr = Sys::kClose;
  close1.fd = fd;
  kernel_.syscall(task_, close1);
  EXPECT_EQ(drv_->releases, 0);  // dup still holds the description

  close1.fd = fd2;
  kernel_.syscall(task_, close1);
  EXPECT_EQ(drv_->releases, 1);
}

TEST_F(KernelCoreTest, SocketResolvesByTriple) {
  SyscallReq req;
  req.nr = Sys::kSocket;
  req.arg = 99;
  req.arg2 = 1;
  req.arg3 = 7;
  EXPECT_GE(kernel_.syscall(task_, req).ret, 3);
  req.arg3 = 8;  // unknown protocol
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEINVAL);
}

TEST_F(KernelCoreTest, SocketOpsOnNonSocketRejected) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq req;
  req.nr = Sys::kBind;
  req.fd = fd;
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEOPNOTSUPP);
}

TEST_F(KernelCoreTest, MmapReturnsHandleAndMunmapValidates) {
  // EchoDriver has no mmap, default is ENODEV.
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq req;
  req.nr = Sys::kMmap;
  req.fd = fd;
  req.size = 4096;
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kENODEV);
  SyscallReq um;
  um.nr = Sys::kMunmap;
  um.arg = 0x1234;
  EXPECT_EQ(kernel_.syscall(task_, um).ret, err::kEINVAL);
}

TEST_F(KernelCoreTest, KcovCollectsDriverBlocks) {
  kernel_.kcov_enable(task_);
  open_echo();
  const auto cov = kernel_.kcov_collect(task_);
  EXPECT_FALSE(cov.empty());
  bool saw_driver_block = false;
  for (uint64_t f : cov) {
    if (cov_driver(f) == drv_->driver_id()) saw_driver_block = true;
  }
  EXPECT_TRUE(saw_driver_block);
}

TEST_F(KernelCoreTest, CoreKernelCoverageDistinguishesOutcome) {
  kernel_.kcov_enable(task_);
  open_echo();
  const auto ok_cov = kernel_.kcov_collect(task_);
  SyscallReq bad;
  bad.nr = Sys::kOpenAt;
  bad.path = "/dev/nope";
  kernel_.syscall(task_, bad);
  const auto err_cov = kernel_.kcov_collect(task_);
  // Success and ENOENT paths of openat produce different core features.
  EXPECT_NE(ok_cov, err_cov);
}

TEST_F(KernelCoreTest, TracepointSeesSyscalls) {
  int events = 0;
  const int id = kernel_.attach_tracepoint(
      [&](const Task&, const SyscallReq&, const SyscallRes&) { ++events; });
  open_echo();
  EXPECT_EQ(events, 1);
  kernel_.detach_tracepoint(id);
  open_echo();
  EXPECT_EQ(events, 1);
}

TEST_F(KernelCoreTest, ExitTaskClosesFds) {
  open_echo();
  open_echo();
  kernel_.exit_task(task_);
  EXPECT_EQ(drv_->releases, 2);
  EXPECT_EQ(kernel_.task(task_), nullptr);
}

TEST_F(KernelCoreTest, RebootResetsDriversKeepsStats) {
  open_echo();
  const size_t cov_before = kernel_.cumulative_coverage();
  EXPECT_GT(cov_before, 0u);
  kernel_.reboot();
  EXPECT_EQ(drv_->opens, 0);    // reset() ran
  EXPECT_EQ(drv_->probes, 2);   // re-probed
  EXPECT_GE(kernel_.cumulative_coverage(), cov_before);  // stats survive
  EXPECT_EQ(kernel_.reboot_count(), 1u);
  // fds were force-dropped on reboot.
  SyscallReq req;
  req.nr = Sys::kIoctl;
  req.fd = 3;
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEBADF);
}

TEST_F(KernelCoreTest, SyscallOnDeadTaskFails) {
  kernel_.exit_task(task_);
  SyscallReq req;
  req.nr = Sys::kOpenAt;
  req.path = "/dev/echo";
  EXPECT_EQ(kernel_.syscall(task_, req).ret, err::kEPERM);
}

TEST_F(KernelCoreTest, PerDriverCoverageAttribution) {
  kernel_.kcov_enable(task_);
  open_echo();
  const auto per = kernel_.per_driver_coverage();
  EXPECT_GT(per.at(drv_->driver_id()), 0u);
  EXPECT_GT(per.at(0), 0u);  // core kernel pseudo-driver
}

TEST_F(KernelCoreTest, LseekFcntlFsyncGenericPaths) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq seek;
  seek.nr = Sys::kLseek;
  seek.fd = fd;
  seek.arg = 128;
  EXPECT_EQ(kernel_.syscall(task_, seek).ret, 128);

  SyscallReq fcntl;
  fcntl.nr = Sys::kFcntl;
  fcntl.fd = fd;
  fcntl.arg = 2;  // F_SETFL
  fcntl.arg2 = 0x800;
  EXPECT_EQ(kernel_.syscall(task_, fcntl).ret, 0);
  fcntl.arg = 1;  // F_GETFL
  EXPECT_EQ(kernel_.syscall(task_, fcntl).ret, 0x800);
  fcntl.arg = 99;
  EXPECT_EQ(kernel_.syscall(task_, fcntl).ret, err::kEINVAL);

  SyscallReq fsync;
  fsync.nr = Sys::kFsync;
  fsync.fd = fd;
  EXPECT_EQ(kernel_.syscall(task_, fsync).ret, 0);
}

TEST_F(KernelCoreTest, PollDefaultsToZero) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq poll;
  poll.nr = Sys::kPoll;
  poll.fd = fd;
  poll.arg = 0x1;
  EXPECT_EQ(kernel_.syscall(task_, poll).ret, 0);
}

TEST_F(KernelCoreTest, WriteReturnsByteCount) {
  const auto fd = static_cast<int32_t>(open_echo().ret);
  SyscallReq wr;
  wr.nr = Sys::kWrite;
  wr.fd = fd;
  wr.data = {1, 2, 3, 4, 5};
  EXPECT_EQ(kernel_.syscall(task_, wr).ret, 5);
}

TEST(KernelMisc, SysNameCoversAll) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(Sys::kCount); ++i) {
    EXPECT_STRNE(sys_name(static_cast<Sys>(i)), "?");
  }
}

}  // namespace
}  // namespace df::kernel
