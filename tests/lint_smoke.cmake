# df_lint smoke test (run via cmake -P from ctest): lint the seeded fixture
# corpus, validate the JSON report with scripts/check_bench_json.py, and
# assert that the seeded use-after-close and type-width bugs were flagged.
# Inputs: LINT, PYTHON, CHECKER, FIXTURES, OUT.

execute_process(
  COMMAND ${LINT} --device A1 --json ${OUT} ${FIXTURES}
  OUTPUT_VARIABLE lint_out
  RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "df_lint failed (rc=${lint_rc})")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (rc=${check_rc})")
endif()

file(READ ${OUT} report)
foreach(needle "use-after-close" "type-width" "dead-statement" "\"plans\"")
  string(FIND "${report}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "lint report is missing '${needle}':\n${report}")
  endif()
endforeach()

# clean.dsl must stay clean: exactly one file carries the seeded
# use-after-close error, and the planner covers the rt1711 graph.
string(FIND "${lint_out}" "clean.dsl: 4 calls, 0 findings" at)
if(at EQUAL -1)
  message(FATAL_ERROR "clean fixture reported findings:\n${lint_out}")
endif()
string(FIND "${lint_out}" "planner: rt1711_i2c" at)
if(at EQUAL -1)
  message(FATAL_ERROR "planner diagnostics missing rt1711:\n${lint_out}")
endif()
