#include "obs/analytics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/json_parse.h"

namespace df::obs {
namespace {

TEST(ProgramOrigin, NamesRoundTripThroughParser) {
  for (size_t i = 0; i < kProgramOriginCount; ++i) {
    const auto o = static_cast<ProgramOrigin>(i);
    const std::string_view name = origin_name(o);
    EXPECT_FALSE(name.empty());
    const auto parsed = origin_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, o) << name;
  }
  EXPECT_FALSE(origin_from_name("teleported").has_value());
  EXPECT_FALSE(origin_from_name("").has_value());
}

TEST(ProgramOrigin, WireNamesAreStable) {
  // Checkpoints and the JSON checker depend on these exact strings.
  EXPECT_EQ(origin_name(ProgramOrigin::kGenerate), "generate");
  EXPECT_EQ(origin_name(ProgramOrigin::kMutateSplice), "mutate_splice");
  EXPECT_EQ(origin_name(ProgramOrigin::kPlanInjected), "plan_injected");
  EXPECT_EQ(origin_name(ProgramOrigin::kMinimized), "minimized");
  EXPECT_EQ(origin_name(ProgramOrigin::kReplay), "replay");
}

TEST(OperatorAttribution, CreditsAccumulatePerOrigin) {
  OperatorAttribution a;
  EXPECT_FALSE(a.any());
  a.record_attempt(ProgramOrigin::kGenerate, 5);
  a.record_attempt(ProgramOrigin::kGenerate, 3);
  a.credit(ProgramOrigin::kGenerate, /*new_features=*/7, /*new_states=*/1,
           /*bugs=*/0, /*accepted=*/true);
  a.credit(ProgramOrigin::kGenerate, 0, 0, 1, false);
  a.record_attempt(ProgramOrigin::kMutateArg, 4);
  EXPECT_TRUE(a.any());

  const OperatorYield& gen = a.row(ProgramOrigin::kGenerate);
  EXPECT_EQ(gen.attempts, 2u);
  EXPECT_EQ(gen.total_calls, 8u);
  EXPECT_EQ(gen.accepts, 1u);
  EXPECT_EQ(gen.new_features, 7u);
  EXPECT_EQ(gen.new_states, 1u);
  EXPECT_EQ(gen.bugs, 1u);
  EXPECT_EQ(a.row(ProgramOrigin::kMutateArg).attempts, 1u);
  EXPECT_EQ(a.row(ProgramOrigin::kReplay).attempts, 0u);
}

TEST(OperatorAttribution, MinimizeRowTracksOracleWork) {
  OperatorAttribution a;
  a.record_minimize(/*oracle_calls=*/12, /*shrunk=*/true);
  a.record_minimize(6, false);
  const OperatorYield& m = a.row(ProgramOrigin::kMinimized);
  EXPECT_EQ(m.attempts, 2u);
  EXPECT_EQ(m.total_calls, 18u);
  EXPECT_EQ(m.accepts, 1u);
}

TEST(OperatorAttribution, RestoreRowRoundTripsEquality) {
  OperatorAttribution a;
  a.record_attempt(ProgramOrigin::kMutateSplice, 9);
  a.credit(ProgramOrigin::kMutateSplice, 3, 0, 0, true);

  OperatorAttribution b;
  for (size_t i = 0; i < kProgramOriginCount; ++i) {
    const auto o = static_cast<ProgramOrigin>(i);
    b.restore_row(o, a.row(o));
  }
  EXPECT_EQ(a, b);
  b.record_attempt(ProgramOrigin::kGenerate, 1);
  EXPECT_FALSE(a == b);
}

TEST(OperatorAttribution, JsonCarriesAllRowsInEnumOrder) {
  OperatorAttribution a;
  a.record_attempt(ProgramOrigin::kGenerate, 6);
  a.record_attempt(ProgramOrigin::kGenerate, 2);
  JsonWriter w;
  a.write_json(w);
  std::string error;
  const auto doc = json_parse(w.take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->items.size(), kProgramOriginCount);
  for (size_t i = 0; i < kProgramOriginCount; ++i) {
    EXPECT_EQ(doc->items[i].find("origin")->scalar,
              origin_name(static_cast<ProgramOrigin>(i)));
  }
  // mean_cost = total_calls / attempts = 8 / 2.
  EXPECT_DOUBLE_EQ(doc->items[0].find("mean_cost")->as_double(), 4.0);
  EXPECT_DOUBLE_EQ(doc->items[1].find("mean_cost")->as_double(), 0.0);
}

TEST(Lineage, ChainJsonUsesHexHashesAndWireNames) {
  std::vector<LineageLink> chain;
  chain.push_back({0x1234, ProgramOrigin::kGenerate, 7, 0});
  chain.push_back({0xabcd, ProgramOrigin::kMutateArg, 120, 1});
  JsonWriter w;
  write_lineage_json(w, chain);
  std::string error;
  const auto doc = json_parse(w.take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->items.size(), 2u);
  EXPECT_EQ(doc->items[0].find("hash")->scalar, "0000000000001234");
  EXPECT_EQ(doc->items[0].find("origin")->scalar, "generate");
  EXPECT_EQ(doc->items[1].find("hash")->scalar, "000000000000abcd");
  EXPECT_EQ(doc->items[1].find("depth")->as_u64(), 1u);
}

TEST(Lineage, SummaryJsonShape) {
  LineageSummary s;
  s.seeds = 5;
  s.roots = 2;
  s.max_depth = 2;
  s.depth_histogram = {2, 2, 1};
  s.top_ancestors.push_back({0xdeadbeef, 3, 3, 40});
  JsonWriter w;
  s.write_json(w);
  std::string error;
  const auto doc = json_parse(w.take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("seeds")->as_u64(), 5u);
  EXPECT_EQ(doc->find("roots")->as_u64(), 2u);
  ASSERT_EQ(doc->find("depth_histogram")->items.size(), 3u);
  const JsonValue& a = doc->find("top_ancestors")->items[0];
  EXPECT_EQ(a.find("hash")->scalar, "00000000deadbeef");
  EXPECT_EQ(a.find("descendants")->as_u64(), 3u);
}

TEST(Frontier, ClassNamesAreTheCheckerEnum) {
  EXPECT_EQ(frontier_class_name(FrontierClass::kUnreachableFromFrontier),
            "unreachable-from-frontier");
  EXPECT_EQ(frontier_class_name(FrontierClass::kPlannedButFailed),
            "planned-but-failed");
  EXPECT_EQ(frontier_class_name(FrontierClass::kNeverAttempted),
            "never-attempted");
}

TEST(Frontier, ReportJsonShape) {
  FrontierReport r;
  r.states_total = 4;
  r.states_visited = 3;
  FrontierState f;
  f.driver = "rt1711_i2c";
  f.state = "pd_contract";
  f.state_index = 3;
  f.cls = FrontierClass::kPlannedButFailed;
  f.plan_length = 3;
  f.plans_injected = 2;
  f.executed_no_visit = 2;
  r.unvisited.push_back(f);
  JsonWriter w;
  r.write_json(w);
  std::string error;
  const auto doc = json_parse(w.take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("states_total")->as_u64(), 4u);
  ASSERT_EQ(doc->find("unvisited")->items.size(), 1u);
  const JsonValue& u = doc->find("unvisited")->items[0];
  EXPECT_EQ(u.find("class")->scalar, "planned-but-failed");
  EXPECT_EQ(u.find("plans_injected")->as_u64(), 2u);
}

std::vector<StatsReporter::Point> make_points(size_t n) {
  std::vector<StatsReporter::Point> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i].sample.executions = 100 * i;
    pts[i].sample.total_coverage = 10 * i;
    pts[i].secs = 0.1 * static_cast<double>(i);
  }
  return pts;
}

std::vector<uint64_t> downsampled_execs(
    const std::vector<StatsReporter::Point>& pts, size_t max_points) {
  JsonWriter w;
  write_downsampled_series(w, pts, max_points);
  std::string error;
  const auto doc = json_parse(w.take(), &error);
  EXPECT_TRUE(doc.has_value()) << error;
  std::vector<uint64_t> out;
  for (const JsonValue& p : doc->items) {
    out.push_back(p.find("executions")->as_u64());
  }
  return out;
}

TEST(DownsampledSeries, ShortSeriesPassesThroughUnchanged) {
  const auto execs = downsampled_execs(make_points(5), 32);
  EXPECT_EQ(execs, (std::vector<uint64_t>{0, 100, 200, 300, 400}));
}

TEST(DownsampledSeries, LongSeriesBoundedKeepsEndpointsAndOrder) {
  const auto execs = downsampled_execs(make_points(500), 32);
  EXPECT_LE(execs.size(), 32u);
  EXPECT_GE(execs.size(), 2u);
  EXPECT_EQ(execs.front(), 0u);
  EXPECT_EQ(execs.back(), 100u * 499);
  for (size_t i = 1; i < execs.size(); ++i) {
    EXPECT_GT(execs[i], execs[i - 1]) << i;
  }
}

TEST(DownsampledSeries, GridIsDeterministic) {
  const auto a = downsampled_execs(make_points(257), 32);
  const auto b = downsampled_execs(make_points(257), 32);
  EXPECT_EQ(a, b);
}

TEST(AnalyticsSnapshot, JsonCarriesSchemaVersionAndSections) {
  AnalyticsSnapshot snap;
  snap.operators.record_attempt(ProgramOrigin::kGenerate, 4);
  const auto pts = make_points(3);
  JsonWriter w;
  snap.write_json(w, &pts);
  std::string error;
  const auto doc = json_parse(w.take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema_version")->as_u64(), kAnalyticsSchemaVersion);
  ASSERT_NE(doc->find("operators"), nullptr);
  ASSERT_NE(doc->find("lineage"), nullptr);
  ASSERT_NE(doc->find("frontier"), nullptr);
  ASSERT_NE(doc->find("series"), nullptr);
  EXPECT_EQ(doc->find("series")->items.size(), 3u);

  // Without a series pointer the "series" key is omitted entirely.
  JsonWriter w2;
  snap.write_json(w2);
  const auto doc2 = json_parse(w2.take(), &error);
  ASSERT_TRUE(doc2.has_value()) << error;
  EXPECT_EQ(doc2->find("series"), nullptr);
}

}  // namespace
}  // namespace df::obs
