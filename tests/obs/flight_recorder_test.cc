#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace df::obs {
namespace {

ExecutionRecord record_at(uint64_t exec) {
  ExecutionRecord rec;
  rec.exec_index = exec;
  rec.program = std::make_shared<const std::string>("prog");
  rec.rets = {0, -22};
  rec.states_before = {0, 1};
  rec.states_after = {1, 1};
  return rec;
}

TEST(FlightRecorder, DisabledDropsRecords) {
  FlightRecorder fr;
  EXPECT_FALSE(fr.enabled());
  fr.push(record_at(1));
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.recorded(), 0u);
}

TEST(FlightRecorder, KeepsTheLastNInOrder) {
  FlightRecorder fr;
  fr.enable(4);
  for (uint64_t i = 1; i <= 10; ++i) fr.push(record_at(i));
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.recorded(), 10u);
  // Oldest retained first: 7, 8, 9, 10.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fr.at(i).exec_index, 7 + i);
  }
}

TEST(FlightRecorder, RecordCarriesTheExecutionContext) {
  FlightRecorder fr;
  fr.enable(2);
  fr.push(record_at(42));
  const ExecutionRecord& rec = fr.at(0);
  EXPECT_EQ(rec.exec_index, 42u);
  ASSERT_NE(rec.program, nullptr);
  EXPECT_EQ(*static_cast<const std::string*>(rec.program.get()), "prog");
  ASSERT_EQ(rec.rets.size(), 2u);
  EXPECT_EQ(rec.rets[1], -22);
  EXPECT_EQ(rec.states_before, (std::vector<uint8_t>{0, 1}));
  EXPECT_EQ(rec.states_after, (std::vector<uint8_t>{1, 1}));
}

TEST(FlightRecorder, ClearKeepsCapacity) {
  FlightRecorder fr;
  fr.enable(3);
  fr.push(record_at(1));
  fr.push(record_at(2));
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_TRUE(fr.enabled());
  EXPECT_EQ(fr.capacity(), 3u);
  fr.push(record_at(3));
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_EQ(fr.at(0).exec_index, 3u);
}

TEST(FlightRecorder, ReenableResizesWindow) {
  FlightRecorder fr;
  fr.enable(2);
  fr.push(record_at(1));
  fr.push(record_at(2));
  fr.enable(8);  // clears and resizes
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.capacity(), 8u);
  fr.enable(0);  // disables again
  EXPECT_FALSE(fr.enabled());
  fr.push(record_at(5));
  EXPECT_EQ(fr.size(), 0u);
}

}  // namespace
}  // namespace df::obs
