// Minimal blocking HTTP client for introspection-server tests: one request
// per connection against 127.0.0.1 (matching the server's
// `Connection: close` contract), response read to EOF and split into
// status / content type / body. Test-only — intentionally not a library.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace df::test {

struct HttpTestResponse {
  bool ok = false;  // transport-level success (connect + parseable response)
  int status = 0;
  std::string content_type;
  std::string allow;  // the Allow header on 405 responses
  std::string body;
};

inline HttpTestResponse http_request(uint16_t port, const std::string& method,
                                     const std::string& target,
                                     const std::string& body = "") {
  HttpTestResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  std::string req = method + " " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                    "Connection: close\r\n";
  if (!body.empty() || method == "POST") {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n";
  req += body;
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return out;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  const std::string head = raw.substr(0, head_end);
  out.body = raw.substr(head_end + 4);
  if (std::sscanf(head.c_str(), "HTTP/1.1 %d", &out.status) != 1) return out;
  // Single-line headers; the server never emits continuations.
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos) {
    const size_t eol = head.find("\r\n", pos + 2);
    const std::string line = head.substr(
        pos + 2, eol == std::string::npos ? std::string::npos : eol - pos - 2);
    constexpr const char kCt[] = "Content-Type: ";
    if (line.rfind(kCt, 0) == 0) {
      out.content_type = line.substr(sizeof(kCt) - 1);
    }
    constexpr const char kAllow[] = "Allow: ";
    if (line.rfind(kAllow, 0) == 0) {
      out.allow = line.substr(sizeof(kAllow) - 1);
    }
    pos = eol;
  }
  out.ok = true;
  return out;
}

inline HttpTestResponse http_get(uint16_t port, const std::string& target) {
  return http_request(port, "GET", target);
}

inline HttpTestResponse http_post(uint16_t port, const std::string& target,
                                  const std::string& body) {
  return http_request(port, "POST", target, body);
}

}  // namespace df::test
