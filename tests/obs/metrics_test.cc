#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace df::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, BucketPlacement) {
  Histogram h;
  h.record(0);  // bucket 0
  h.record(1);  // bucket 1: [1, 2)
  h.record(2);  // bucket 2: [2, 4)
  h.record(3);  // bucket 2
  h.record(4);  // bucket 3: [4, 8)
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 4u);
}

TEST(Histogram, ExtremeValuesStayInRange) {
  Histogram h;
  h.record(UINT64_MAX);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.buckets()[Histogram::kBucketCount - 1], 1u);
  // The quantile estimate is clamped to the observed range.
  EXPECT_LE(h.quantile(0.99), UINT64_MAX);
  EXPECT_GE(h.quantile(0.01), h.min());
}

TEST(Histogram, QuantilesAreMonotonicAndClamped) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const uint64_t p50 = h.quantile(0.5);
  const uint64_t p90 = h.quantile(0.9);
  const uint64_t p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
}

TEST(Registry, LabeledMetricsAreDistinct) {
  Registry reg;
  Counter& a = reg.counter("engine.executions", "A1");
  Counter& b = reg.counter("engine.executions", "B");
  a.inc(3);
  b.inc(5);
  EXPECT_EQ(reg.counter("engine.executions", "A1").value(), 3u);
  EXPECT_EQ(reg.counter("engine.executions", "B").value(), 5u);
}

TEST(Registry, ReferencesAreStableAcrossInsertions) {
  Registry reg;
  Counter& first = reg.counter("stable");
  first.inc();
  // A burst of new keys must not invalidate the earlier reference.
  for (int i = 0; i < 100; ++i) {
    reg.counter("churn." + std::to_string(i)).inc();
    reg.histogram("churn_h." + std::to_string(i)).record(1);
  }
  first.inc();
  EXPECT_EQ(reg.counter("stable").value(), 2u);
}

TEST(Registry, SnapshotIsIsolatedFromLaterUpdates) {
  Registry reg;
  Counter& c = reg.counter("engine.bugs", "A1");
  Histogram& h = reg.histogram("phase.execute", "A1");
  c.inc(7);
  h.record(128);
  const Snapshot snap = reg.snapshot();
  c.inc(100);
  h.record(1 << 20);

  const auto* cv = snap.find_counter("engine.bugs", "A1");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->value, 7u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.find_counter("engine.bugs", "nope"), nullptr);
}

TEST(Registry, SnapshotJsonShape) {
  Registry reg;
  reg.counter("engine.executions", "A1").inc(10);
  reg.gauge("log.emitted", "warn").set(2);
  reg.histogram("phase.generate", "A1").record(1000);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.executions\""), std::string::npos);
  // Wall-dependent histogram fields carry the _ns suffix by contract.
  EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"sum_ns\""), std::string::npos);
}

TEST(Registry, ResetClearsValuesButKeepsKeys) {
  Registry reg;
  reg.counter("a").inc(5);
  reg.histogram("h").record(9);
  reg.reset();
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(ScopedTimer, RecordsOnceOnDestruction) {
  Histogram h;
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimer, NullHistogramIsNoOp) {
  ScopedTimer t(nullptr);  // must not crash or read the clock
}

TEST(JsonWriterBasics, EscapesAndNesting) {
  JsonWriter w;
  w.begin_object();
  w.field("title", "line1\nline\"2\"\\");
  w.key("arr").begin_array().value(uint64_t{1}).value(2.5).value(true)
      .end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"title\":\"line1\\nline\\\"2\\\"\\\\\","
            "\"arr\":[1,2.5,true]}");
}

TEST(JsonWriterBasics, RawInsertsVerbatim) {
  JsonWriter w;
  w.begin_object();
  w.key("events").begin_array();
  w.raw("{\"event\":\"bug\"}");
  w.raw("{\"event\":\"probe\"}");
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"events\":[{\"event\":\"bug\"},{\"event\":\"probe\"}]}");
}

}  // namespace
}  // namespace df::obs
