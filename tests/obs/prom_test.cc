#include "obs/prom.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace df::obs {
namespace {

TEST(PromName, PrefixesAndSanitizes) {
  EXPECT_EQ(prom_metric_name("engine.executions"), "df_engine_executions");
  EXPECT_EQ(prom_metric_name("fleet.worker.busy_ns"),
            "df_fleet_worker_busy_ns");
  EXPECT_EQ(prom_metric_name("a-b/c d"), "df_a_b_c_d");
  EXPECT_EQ(prom_metric_name("already_fine", ""), "already_fine");
  // Without a prefix a leading digit is not a valid metric start.
  EXPECT_EQ(prom_metric_name("9lives", ""), "_9lives");
}

TEST(PromEscape, LabelEscaping) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
}

// The full exposition for a small registry, byte for byte: families in
// snapshot (name, label) order, one # TYPE line per family, cumulative
// histogram buckets, `_sum`/`_count` last.
TEST(PromRender, GoldenExposition) {
  Registry reg;
  reg.counter("engine.executions", "A1").inc(100);
  reg.counter("engine.executions", "B2").inc(50);
  reg.gauge("campaign.progress").set(0.5);
  Histogram& h = reg.histogram("phase.execute", "A1");
  h.record(0);  // bucket 0 (le="0")
  h.record(1);  // bucket 1 (le="1")
  h.record(3);  // bucket 2 (le="3")

  const std::string want =
      "# TYPE df_engine_executions counter\n"
      "df_engine_executions{label=\"A1\"} 100\n"
      "df_engine_executions{label=\"B2\"} 50\n"
      "# TYPE df_campaign_progress gauge\n"
      "df_campaign_progress 0.5\n"
      "# TYPE df_phase_execute histogram\n"
      "df_phase_execute_bucket{label=\"A1\",le=\"0\"} 1\n"
      "df_phase_execute_bucket{label=\"A1\",le=\"1\"} 2\n"
      "df_phase_execute_bucket{label=\"A1\",le=\"3\"} 3\n"
      "df_phase_execute_bucket{label=\"A1\",le=\"+Inf\"} 3\n"
      "df_phase_execute_sum{label=\"A1\"} 4\n"
      "df_phase_execute_count{label=\"A1\"} 3\n";
  EXPECT_EQ(render_prometheus(reg.snapshot()), want);
}

TEST(PromRender, UnlabeledMetricHasNoBraces) {
  Registry reg;
  reg.counter("campaign.rounds").inc(7);
  EXPECT_EQ(render_prometheus(reg.snapshot()),
            "# TYPE df_campaign_rounds counter\ndf_campaign_rounds 7\n");
}

TEST(PromRender, LabelValuesAreEscaped) {
  Registry reg;
  reg.counter("c", "dev\"1\"\n").inc(1);
  const std::string out = render_prometheus(reg.snapshot());
  EXPECT_NE(out.find("df_c{label=\"dev\\\"1\\\"\\n\"} 1\n"),
            std::string::npos)
      << out;
}

// Histogram buckets must be cumulative (non-decreasing in le order) with
// the +Inf sample equal to _count — the property Prometheus itself
// enforces on scrape.
TEST(PromRender, HistogramBucketsAreCumulative) {
  Registry reg;
  Histogram& h = reg.histogram("lat", "");
  const uint64_t values[] = {0, 1, 1, 5, 9, 100, 5000, 1 << 20};
  uint64_t sum = 0;
  for (uint64_t v : values) {
    h.record(v);
    sum += v;
  }
  const std::string out = render_prometheus(reg.snapshot());

  std::istringstream lines(out);
  std::string line;
  std::vector<uint64_t> cumulative;
  uint64_t inf = 0, count = 0, total = 0;
  while (std::getline(lines, line)) {
    uint64_t v = 0;
    if (std::sscanf(line.c_str(), "df_lat_bucket{le=\"+Inf\"} %" SCNu64,
                    &inf) == 1) {
      continue;
    }
    if (line.rfind("df_lat_bucket{le=", 0) == 0) {
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos);
      v = std::strtoull(line.c_str() + space + 1, nullptr, 10);
      cumulative.push_back(v);
    } else if (std::sscanf(line.c_str(), "df_lat_count %" SCNu64, &count) ==
               1) {
    } else if (std::sscanf(line.c_str(), "df_lat_sum %" SCNu64, &total) ==
               1) {
    }
  }
  ASSERT_FALSE(cumulative.empty());
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_EQ(count, std::size(values));
  EXPECT_EQ(inf, count);
  EXPECT_GE(inf, cumulative.back());
  EXPECT_EQ(total, sum);
}

TEST(PromRender, EmptySnapshotIsEmptyText) {
  Registry reg;
  EXPECT_EQ(render_prometheus(reg.snapshot()), "");
}

}  // namespace
}  // namespace df::obs
