#include "obs/serve.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/json_parse.h"
#include "tests/obs/http_test_util.h"

namespace df::obs {
namespace {

using df::test::http_get;
using df::test::http_request;

TEST(HttpServer, BindsEphemeralPortAndStops) {
  HttpServer srv;
  std::string error;
  ASSERT_TRUE(srv.start(0, &error)) << error;
  EXPECT_TRUE(srv.running());
  EXPECT_GT(srv.port(), 0);
  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
  EXPECT_FALSE(srv.running());
}

TEST(HttpServer, ServesRegisteredHandler) {
  HttpServer srv;
  srv.handle("/status", [] {
    HttpResponse r;
    r.content_type = "application/json";
    JsonWriter w;
    w.begin_object().field("healthy", true).field("devices", uint64_t{7});
    w.end_object();
    r.body = w.take();
    return r;
  });
  ASSERT_TRUE(srv.start(0));

  const auto res = http_get(srv.port(), "/status");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  std::string error;
  const auto doc = json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->find("devices"), nullptr);
  EXPECT_EQ(doc->find("devices")->as_u64(), 7u);
  EXPECT_GE(srv.requests(), 1u);
}

TEST(HttpServer, QueryStringIsStrippedBeforeMatching) {
  HttpServer srv;
  srv.handle("/metrics", [] {
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  const auto res = http_get(srv.port(), "/metrics?window=5m");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ok");
}

TEST(HttpServer, UnknownPathIs404) {
  HttpServer srv;
  srv.handle("/known", [] { return HttpResponse{}; });
  ASSERT_TRUE(srv.start(0));
  const auto res = http_get(srv.port(), "/unknown");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 404);
}

// The server is read-only: every non-GET method — even on a registered
// path — gets 405 with an Allow header naming the one accepted method
// (RFC 9110 requires Allow on 405 responses).
TEST(HttpServer, NonGetIs405WithAllowHeader) {
  HttpServer srv;
  srv.handle("/status", [] { return HttpResponse{}; });
  ASSERT_TRUE(srv.start(0));
  for (const char* method : {"POST", "PUT", "DELETE", "HEAD"}) {
    const auto res = http_request(srv.port(), method, "/status");
    ASSERT_TRUE(res.ok) << method;
    EXPECT_EQ(res.status, 405) << method;
    EXPECT_EQ(res.allow, "GET") << method;
  }
}

TEST(HttpServer, HandlerStatusCodePropagates) {
  HttpServer srv;
  srv.handle("/healthz", [] {
    HttpResponse r;
    r.status = 503;
    r.body = "stalled: A1\n";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  const auto res = http_get(srv.port(), "/healthz");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 503);
  EXPECT_EQ(res.body, "stalled: A1\n");
}

TEST(HttpServer, HandlersReplaceableWhileRunning) {
  HttpServer srv;
  srv.handle("/v", [] {
    HttpResponse r;
    r.body = "one";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  EXPECT_EQ(http_get(srv.port(), "/v").body, "one");
  srv.handle("/v", [] {
    HttpResponse r;
    r.body = "two";
    return r;
  });
  EXPECT_EQ(http_get(srv.port(), "/v").body, "two");
}

TEST(HttpServer, PortInUseFailsWithError) {
  HttpServer a;
  ASSERT_TRUE(a.start(0));
  HttpServer b;
  std::string error;
  EXPECT_FALSE(b.start(a.port(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(b.running());
}

}  // namespace
}  // namespace df::obs
