#include "obs/serve.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/json_parse.h"
#include "tests/obs/http_test_util.h"

namespace df::obs {
namespace {

using df::test::http_get;
using df::test::http_request;

TEST(HttpServer, BindsEphemeralPortAndStops) {
  HttpServer srv;
  std::string error;
  ASSERT_TRUE(srv.start(0, &error)) << error;
  EXPECT_TRUE(srv.running());
  EXPECT_GT(srv.port(), 0);
  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
  EXPECT_FALSE(srv.running());
}

TEST(HttpServer, ServesRegisteredHandler) {
  HttpServer srv;
  srv.handle("/status", [] {
    HttpResponse r;
    r.content_type = "application/json";
    JsonWriter w;
    w.begin_object().field("healthy", true).field("devices", uint64_t{7});
    w.end_object();
    r.body = w.take();
    return r;
  });
  ASSERT_TRUE(srv.start(0));

  const auto res = http_get(srv.port(), "/status");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  std::string error;
  const auto doc = json_parse(res.body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->find("devices"), nullptr);
  EXPECT_EQ(doc->find("devices")->as_u64(), 7u);
  EXPECT_GE(srv.requests(), 1u);
}

TEST(HttpServer, QueryStringIsStrippedBeforeMatching) {
  HttpServer srv;
  srv.handle("/metrics", [] {
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  const auto res = http_get(srv.port(), "/metrics?window=5m");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ok");
}

TEST(HttpServer, UnknownPathIs404) {
  HttpServer srv;
  srv.handle("/known", [] { return HttpResponse{}; });
  ASSERT_TRUE(srv.start(0));
  const auto res = http_get(srv.port(), "/unknown");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 404);
}

// A server without route handlers is read-only: every non-GET method —
// even on a registered path — gets 405 with an Allow header naming the one
// accepted method (RFC 9110 requires Allow on 405 responses).
TEST(HttpServer, NonGetIs405WithAllowHeader) {
  HttpServer srv;
  srv.handle("/status", [] { return HttpResponse{}; });
  ASSERT_TRUE(srv.start(0));
  for (const char* method : {"POST", "PUT", "DELETE", "HEAD"}) {
    const auto res = http_request(srv.port(), method, "/status");
    ASSERT_TRUE(res.ok) << method;
    EXPECT_EQ(res.status, 405) << method;
    EXPECT_EQ(res.allow, "GET") << method;
  }
}

// Route handlers see the method, the matched path, and the request body —
// the shape of the job API (POST /jobs with a JobSpec document).
TEST(HttpServer, RouteReceivesMethodPathAndBody) {
  HttpServer srv;
  srv.handle_route("/jobs", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = req.method + " " + req.path + " [" + req.body + "]";
    return r;
  });
  ASSERT_TRUE(srv.start(0));

  auto res = df::test::http_post(srv.port(), "/jobs", "{\"seed\":7}");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "POST /jobs [{\"seed\":7}]");

  res = http_get(srv.port(), "/jobs/12/pause");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.body, "GET /jobs/12/pause []");

  // Prefix match requires a path-segment boundary, not a string prefix.
  res = http_get(srv.port(), "/jobsx");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 404);
}

// The longest registered prefix wins, and exact GET handlers shadow routes.
TEST(HttpServer, LongestRoutePrefixWinsAndExactHandlersShadow) {
  HttpServer srv;
  srv.handle_route("/jobs", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "outer";
    return r;
  });
  srv.handle_route("/jobs/special", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "inner";
    return r;
  });
  srv.handle("/jobs/exact", [] {
    HttpResponse r;
    r.body = "exact";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  EXPECT_EQ(http_get(srv.port(), "/jobs/7").body, "outer");
  EXPECT_EQ(http_get(srv.port(), "/jobs/special/x").body, "inner");
  EXPECT_EQ(http_get(srv.port(), "/jobs/exact").body, "exact");
}

// With routes registered the Allow header advertises POST too, and a POST
// to a path no route claims still gets 405 (the resource is GET-only).
TEST(HttpServer, PostOutsideRoutesIs405WithExtendedAllow) {
  HttpServer srv;
  srv.handle("/metrics", [] { return HttpResponse{}; });
  srv.handle_route("/jobs", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(srv.start(0));
  const auto res = df::test::http_post(srv.port(), "/metrics", "x");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 405);
  EXPECT_EQ(res.allow, "GET, POST");
}

// Oversized bodies are rejected with 413 before the handler ever runs —
// first from the declared Content-Length, and the connection can never
// buffer more than the cap.
TEST(HttpServer, OversizedBodyIs413) {
  bool handler_ran = false;
  HttpServer srv;
  srv.handle_route("/jobs", [&handler_ran](const HttpRequest&) {
    handler_ran = true;
    return HttpResponse{};
  });
  ASSERT_TRUE(srv.start(0));
  const std::string big(HttpServer::kMaxBodyBytes + 1, 'x');
  const auto res = df::test::http_post(srv.port(), "/jobs", big);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 413);
  EXPECT_FALSE(handler_ran);

  // At the cap exactly the request goes through.
  const std::string fits(HttpServer::kMaxBodyBytes, 'x');
  const auto ok = df::test::http_post(srv.port(), "/jobs", fits);
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.status, 200);
  EXPECT_TRUE(handler_ran);
}

TEST(HttpServer, HandlerStatusCodePropagates) {
  HttpServer srv;
  srv.handle("/healthz", [] {
    HttpResponse r;
    r.status = 503;
    r.body = "stalled: A1\n";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  const auto res = http_get(srv.port(), "/healthz");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, 503);
  EXPECT_EQ(res.body, "stalled: A1\n");
}

TEST(HttpServer, HandlersReplaceableWhileRunning) {
  HttpServer srv;
  srv.handle("/v", [] {
    HttpResponse r;
    r.body = "one";
    return r;
  });
  ASSERT_TRUE(srv.start(0));
  EXPECT_EQ(http_get(srv.port(), "/v").body, "one");
  srv.handle("/v", [] {
    HttpResponse r;
    r.body = "two";
    return r;
  });
  EXPECT_EQ(http_get(srv.port(), "/v").body, "two");
}

TEST(HttpServer, PortInUseFailsWithError) {
  HttpServer a;
  ASSERT_TRUE(a.start(0));
  HttpServer b;
  std::string error;
  EXPECT_FALSE(b.start(a.port(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(b.running());
}

}  // namespace
}  // namespace df::obs
