#include "obs/span.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/trace.h"

namespace df::obs {
namespace {

// Pulls a named field out of a kSpan event; fails the test when absent.
uint64_t num_field(const TraceEvent& ev, std::string_view key) {
  for (const auto& f : ev.fields) {
    if (f.key == key) return f.num;
  }
  ADD_FAILURE() << "missing field " << key;
  return 0;
}

std::string str_field(const TraceEvent& ev, std::string_view key) {
  for (const auto& f : ev.fields) {
    if (f.key == key) return f.str;
  }
  ADD_FAILURE() << "missing field " << key;
  return {};
}

TEST(SpanTracer, DisabledByDefault) {
  TraceSink sink(64);
  SpanTracer spans(sink);
  EXPECT_FALSE(spans.enabled());
  EXPECT_EQ(spans.begin("campaign"), 0u);
  spans.end(0);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(spans.spans_started(), 0u);
}

TEST(SpanTracer, NestsStrictlyAndRecordsParents) {
  TraceSink sink(64);
  SpanTracer spans(sink);
  spans.set_enabled(true);
  const uint64_t campaign = spans.begin("campaign");
  const uint64_t iter = spans.begin("iteration", "A1", 1);
  const uint64_t phase = spans.begin("phase:execute", "A1", 1);
  spans.end(phase);
  spans.end(iter);
  spans.end(campaign);
  // Export order groups by device id: the device-less campaign span ("")
  // sorts first, then A1's spans chronologically (innermost closed first).
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(str_field(sink.at(0), "span"), "campaign");
  EXPECT_EQ(num_field(sink.at(0), "parent"), 0u);
  EXPECT_EQ(str_field(sink.at(1), "span"), "phase:execute");
  EXPECT_EQ(num_field(sink.at(1), "parent"), iter);
  EXPECT_EQ(str_field(sink.at(2), "span"), "iteration");
  EXPECT_EQ(num_field(sink.at(2), "parent"), campaign);
  EXPECT_EQ(sink.at(1).device, "A1");
  EXPECT_EQ(sink.at(1).exec_index, 1u);
  EXPECT_EQ(spans.open_depth(), 0u);
}

TEST(SpanTracer, EndClosesAbandonedChildren) {
  TraceSink sink(64);
  SpanTracer spans(sink);
  spans.set_enabled(true);
  const uint64_t outer = spans.begin("outer");
  spans.begin("leaked-child");
  spans.end(outer);  // must close the child too
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(spans.open_depth(), 0u);
}

TEST(SpanTracer, ScopedSpanNullTracerIsANoOp) {
  { const ScopedSpan span(nullptr, "anything"); }
  TraceSink sink(16);
  SpanTracer spans(sink);
  spans.set_enabled(true);
  {
    const ScopedSpan span(&spans, "scoped", "A1", 7);
    EXPECT_NE(span.id(), 0u);
  }
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(str_field(sink.at(0), "span"), "scoped");
}

TEST(ChromeTrace, ExportsSortedCompleteEventsWithMetadata) {
  TraceSink sink(64);
  SpanTracer spans(sink);
  spans.set_enabled(true);
  const uint64_t root = spans.begin("campaign");
  const uint64_t a = spans.begin("iteration", "A1", 1);
  spans.end(a);
  const uint64_t b = spans.begin("iteration", "B", 2);
  spans.end(b);
  spans.end(root);

  const std::string json = chrome_trace_json(sink);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // One thread per track: main (root span), A1, B.
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"A1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"campaign\""), std::string::npos);
  // Parent linkage survives the export.
  EXPECT_NE(json.find("\"parent\":" + std::to_string(root)),
            std::string::npos);
}

TEST(ChromeTrace, IgnoresNonSpanEvents) {
  TraceSink sink(16);
  TraceEvent ev;
  ev.kind = EventKind::kBug;
  ev.device = "A1";
  sink.emit(std::move(ev));
  const std::string json = chrome_trace_json(sink);
  // Only process metadata remains; no complete events.
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(SpanTracer, IdsAreUniqueAndDeterministic) {
  std::set<uint64_t> ids;
  TraceSink sink(256);
  SpanTracer spans(sink);
  spans.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    const uint64_t id = spans.begin("iteration", "A1", i);
    EXPECT_TRUE(ids.insert(id).second);
    spans.end(id);
  }
  // Ids are sequential from 1: a pure function of the executed work.
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), 10u);
}

}  // namespace
}  // namespace df::obs
