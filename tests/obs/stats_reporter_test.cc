#include "obs/stats_reporter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.h"

namespace df::obs {
namespace {

EngineSample sample_at(uint64_t execs) {
  EngineSample s;
  s.executions = execs;
  s.kernel_coverage = execs / 2;
  s.total_coverage = execs / 2 + 10;
  s.corpus_size = execs / 100;
  s.unique_bugs = execs / 1000;
  s.relation_edges = execs / 50;
  s.reboots = execs / 5000;
  return s;
}

TEST(StatsReporter, DevicesKeepFirstSeenOrder) {
  StatsReporter rep(100);
  EXPECT_TRUE(rep.empty());
  EXPECT_EQ(rep.interval(), 100u);
  rep.record("B", sample_at(0));
  rep.record("A1", sample_at(0));
  rep.record("B", sample_at(100));
  ASSERT_EQ(rep.devices().size(), 2u);
  EXPECT_EQ(rep.devices()[0], "B");
  EXPECT_EQ(rep.devices()[1], "A1");
  EXPECT_EQ(rep.series("B").size(), 2u);
  EXPECT_EQ(rep.series("A1").size(), 1u);
  EXPECT_FALSE(rep.empty());
}

TEST(StatsReporter, SeriesCarriesTheSamples) {
  StatsReporter rep(10);
  rep.record("A1", sample_at(0));
  rep.record("A1", sample_at(10));
  rep.record("A1", sample_at(20));
  const auto& pts = rep.series("A1");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].sample.executions, 0u);
  EXPECT_EQ(pts[2].sample.executions, 20u);
  EXPECT_EQ(pts[2].sample.kernel_coverage, 10u);
  // secs is monotone (steady clock).
  EXPECT_LE(pts[0].secs, pts[1].secs);
  EXPECT_LE(pts[1].secs, pts[2].secs);
}

TEST(StatsReporter, JsonShapeAndAggregate) {
  StatsReporter rep(10);
  rep.record("A1", sample_at(10));
  rep.record("B", sample_at(10));
  rep.record("A1", sample_at(20));
  rep.record("B", sample_at(40));
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"sample_every\":10"), std::string::npos);
  EXPECT_NE(json.find("\"devices\":["), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":{"), std::string::npos);
  // Aggregate sums index-wise: point 1 = 20 + 40 executions.
  EXPECT_NE(json.find("\"executions\":[20,60]"), std::string::npos);
  EXPECT_NE(json.find("\"execs_per_sec\""), std::string::npos);
}

TEST(StatsReporter, TimingExcludedOnRequest) {
  StatsReporter rep(10);
  rep.record("A1", sample_at(10));
  const std::string with = rep.to_json(true);
  const std::string without = rep.to_json(false);
  EXPECT_NE(with.find("\"timing\""), std::string::npos);
  EXPECT_EQ(without.find("\"timing\""), std::string::npos);
  EXPECT_EQ(without.find("secs"), std::string::npos);
  // Deterministic content is unaffected by the flag.
  EXPECT_NE(without.find("\"executions\":[10]"), std::string::npos);
}

TEST(StatsReporter, UnknownDeviceYieldsEmptySeries) {
  StatsReporter rep;
  EXPECT_TRUE(rep.series("nope").empty());
}

// Fixed coverage across a window larger than the stall threshold.
EngineSample flat_sample(uint64_t execs, uint64_t coverage) {
  EngineSample s;
  s.executions = execs;
  s.total_coverage = coverage;
  s.kernel_coverage = coverage;
  return s;
}

TEST(StatsReporter, WatchdogDisabledByDefault) {
  StatsReporter rep(100);
  EXPECT_EQ(rep.stall_window(), 0u);
  rep.record("A1", flat_sample(0, 5));
  rep.record("A1", flat_sample(100000, 5));
  EXPECT_FALSE(rep.stalled("A1"));
}

TEST(StatsReporter, WatchdogFlagsCoveragePlateau) {
  StatsReporter rep(100);
  rep.set_stall_window(500);
  rep.record("A1", flat_sample(0, 5));
  rep.record("A1", flat_sample(400, 5));
  EXPECT_FALSE(rep.stalled("A1"));  // within the window
  rep.record("A1", flat_sample(600, 5));
  EXPECT_TRUE(rep.stalled("A1"));
}

TEST(StatsReporter, WatchdogFlagsDeviceStuckAtZeroCoverage) {
  StatsReporter rep(100);
  rep.set_stall_window(500);
  rep.record("A1", flat_sample(0, 0));
  rep.record("A1", flat_sample(600, 0));
  EXPECT_TRUE(rep.stalled("A1"));
}

TEST(StatsReporter, WatchdogClearsOnProgress) {
  StatsReporter rep(100);
  rep.set_stall_window(500);
  rep.record("A1", flat_sample(0, 5));
  rep.record("A1", flat_sample(600, 5));
  ASSERT_TRUE(rep.stalled("A1"));
  rep.record("A1", flat_sample(700, 6));  // new coverage
  EXPECT_FALSE(rep.stalled("A1"));
}

TEST(StatsReporter, WatchdogPublishesGaugeAndStallEvent) {
  Observability obs;
  StatsReporter rep(100);
  rep.set_stall_window(500);
  rep.attach_observability(&obs);
  rep.record("A1", flat_sample(0, 5));
  rep.record("A1", flat_sample(600, 5));
  EXPECT_EQ(obs.registry.gauge("campaign.stalled", "A1").value(), 1.0);
  ASSERT_EQ(obs.trace.size(), 1u);
  EXPECT_EQ(obs.trace.at(0).kind, EventKind::kStall);
  EXPECT_EQ(obs.trace.at(0).device, "A1");
  EXPECT_EQ(obs.trace.at(0).exec_index, 600u);
  // Progress resets the gauge without a second event.
  rep.record("A1", flat_sample(700, 6));
  EXPECT_EQ(obs.registry.gauge("campaign.stalled", "A1").value(), 0.0);
  EXPECT_EQ(obs.trace.size(), 1u);
}

TEST(StatsReporter, WatchdogTracksDevicesIndependently) {
  StatsReporter rep(100);
  rep.set_stall_window(500);
  rep.record("A1", flat_sample(0, 5));
  rep.record("B", flat_sample(0, 5));
  rep.record("A1", flat_sample(600, 5));
  rep.record("B", flat_sample(600, 9));
  EXPECT_TRUE(rep.stalled("A1"));
  EXPECT_FALSE(rep.stalled("B"));
}

// The aggregate accessors behind /healthz (obs/serve.h): name-ordered
// stalled list and the fleet-level verdict.
TEST(StatsReporter, StalledDevicesAndAnyStalled) {
  StatsReporter rep(100);
  rep.set_stall_window(500);
  EXPECT_FALSE(rep.any_stalled());
  EXPECT_TRUE(rep.stalled_devices().empty());
  // Insert out of name order; the stalled list must come back sorted.
  rep.record("C1", flat_sample(0, 5));
  rep.record("A1", flat_sample(0, 5));
  rep.record("B", flat_sample(0, 5));
  rep.record("C1", flat_sample(600, 5));
  rep.record("A1", flat_sample(600, 5));
  rep.record("B", flat_sample(600, 9));
  EXPECT_TRUE(rep.any_stalled());
  EXPECT_EQ(rep.stalled_devices(), (std::vector<std::string>{"A1", "C1"}));
  // Progress on one device shrinks the list; on both, clears the verdict.
  rep.record("A1", flat_sample(700, 6));
  EXPECT_EQ(rep.stalled_devices(), (std::vector<std::string>{"C1"}));
  rep.record("C1", flat_sample(700, 6));
  EXPECT_FALSE(rep.any_stalled());
}

}  // namespace
}  // namespace df::obs
