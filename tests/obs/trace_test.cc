#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace df::obs {
namespace {

TraceEvent make_event(EventKind kind, uint64_t exec) {
  TraceEvent ev{kind, "A1", exec, {}};
  return ev;
}

TEST(TraceSink, RingRetainsNewestAndCountsDropped) {
  TraceSink sink(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    sink.emit(make_event(EventKind::kNewCoverage, i));
  }
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  // Oldest-first: events 7, 8, 9, 10 survive.
  for (size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink.at(i).exec_index, 7u + i);
  }
}

// Parallel fleet workers interleave (and, on overflow, evict) events in
// scheduling order. The per-device ring partition must make the retained
// set and the export order independent of that interleaving: same
// per-device subsequences => same export, devices in id order.
TEST(TraceSink, ExportIsIndependentOfCrossDeviceInterleaving) {
  const auto dev_event = [](const char* dev, uint64_t exec) {
    return TraceEvent{EventKind::kNewCoverage, dev, exec, {}};
  };
  TraceSink run1(2);
  TraceSink run2(2);
  // Run 1: device B races ahead; run 2: strict alternation. Both overflow
  // the per-device capacity of 2, evicting each device's oldest event.
  for (uint64_t i = 1; i <= 3; ++i) run1.emit(dev_event("B", i));
  for (uint64_t i = 1; i <= 3; ++i) run1.emit(dev_event("A", i));
  for (uint64_t i = 1; i <= 3; ++i) {
    run2.emit(dev_event("A", i));
    run2.emit(dev_event("B", i));
  }
  EXPECT_EQ(run1.to_jsonl(), run2.to_jsonl());
  EXPECT_EQ(run1.size(), 4u);
  EXPECT_EQ(run1.dropped(), 2u);
  // Export order: device ids ascending, chronological within a device.
  EXPECT_EQ(run1.at(0).device, "A");
  EXPECT_EQ(run1.at(0).exec_index, 2u);
  EXPECT_EQ(run1.at(1).exec_index, 3u);
  EXPECT_EQ(run1.at(2).device, "B");
  EXPECT_EQ(run1.at(2).exec_index, 2u);
  EXPECT_EQ(run1.at(3).exec_index, 3u);
}

TEST(TraceSink, ExecEventsGatedByFlag) {
  TraceSink sink(16);
  EXPECT_TRUE(sink.record_execs());
  sink.set_record_execs(false);
  sink.emit(make_event(EventKind::kExec, 1));
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 0u);
  // Milestone kinds are unaffected by the gate.
  sink.emit(make_event(EventKind::kBug, 2));
  EXPECT_EQ(sink.size(), 1u);
  sink.set_record_execs(true);
  sink.emit(make_event(EventKind::kExec, 3));
  EXPECT_EQ(sink.size(), 2u);
}

TEST(TraceSink, EventJsonShape) {
  TraceEvent ev{EventKind::kBug, "C1", 42, {}};
  ev.with("title", "kasan: use-after-free in \"ioctl\"");
  ev.with("dup_count", uint64_t{3});
  const std::string json = TraceSink::to_json(ev);
  EXPECT_EQ(json,
            "{\"event\":\"bug\",\"device\":\"C1\",\"exec\":42,"
            "\"title\":\"kasan: use-after-free in \\\"ioctl\\\"\","
            "\"dup_count\":3}");
}

TEST(TraceSink, JsonlOneRecordPerLine) {
  TraceSink sink(8);
  sink.emit(make_event(EventKind::kCorpusAdd, 1));
  sink.emit(make_event(EventKind::kDecay, 2));
  sink.emit(make_event(EventKind::kReboot, 3));
  const std::string jsonl = sink.to_jsonl();
  std::istringstream in(jsonl);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"event\":\"corpus_add\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"decay\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"reboot\""), std::string::npos);
}

TEST(TraceSink, EscapingSurvivesHostileStrings) {
  TraceEvent ev{EventKind::kBug, "A1\n\"x\"", 1, {}};
  ev.with("title", std::string("null\x01" "byte\ttab"));
  const std::string json = TraceSink::to_json(ev);
  // No raw control characters may survive into the JSON line.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(TraceSink, FileMirrorWritesEveryEvent) {
  const std::string path = ::testing::TempDir() + "df_trace_mirror.jsonl";
  {
    TraceSink sink(2);  // ring smaller than the event count
    ASSERT_TRUE(sink.open_file(path));
    EXPECT_TRUE(sink.file_open());
    for (uint64_t i = 1; i <= 5; ++i) {
      sink.emit(make_event(EventKind::kNewCoverage, i));
    }
    sink.close_file();
    EXPECT_FALSE(sink.file_open());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"event\":\"new_coverage\""), std::string::npos);
    ++lines;
  }
  // The file mirror is not ring-bounded: all five events are on disk.
  EXPECT_EQ(lines, 5u);
  std::remove(path.c_str());
}

TEST(TraceSink, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(EventKind::kExec), "exec");
  EXPECT_STREQ(kind_name(EventKind::kNewCoverage), "new_coverage");
  EXPECT_STREQ(kind_name(EventKind::kRelationLearn), "relation_learn");
  EXPECT_STREQ(kind_name(EventKind::kBug), "bug");
  EXPECT_STREQ(kind_name(EventKind::kCorpusAdd), "corpus_add");
  EXPECT_STREQ(kind_name(EventKind::kDecay), "decay");
  EXPECT_STREQ(kind_name(EventKind::kProbe), "probe");
  EXPECT_STREQ(kind_name(EventKind::kReboot), "reboot");
}

}  // namespace
}  // namespace df::obs
