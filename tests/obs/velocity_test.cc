#include "obs/velocity.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json_parse.h"
#include "obs/stats_reporter.h"

namespace df::obs {
namespace {

EngineSample sample(uint64_t execs, uint64_t total_cov = 0,
                    uint64_t kernel_cov = 0, uint64_t states = 0,
                    uint64_t bugs = 0) {
  EngineSample s;
  s.executions = execs;
  s.total_coverage = total_cov;
  s.kernel_coverage = kernel_cov;
  s.states_visited = states;
  s.unique_bugs = bugs;
  return s;
}

TEST(VelocityTracker, FirstObservationSeedsInstantaneousRates) {
  VelocityTracker t({.half_life_secs = 1.0});
  t.observe_at("A1", 2.0, sample(100, 20, 10, 4, 2));
  const VelocityRates r = t.rates("A1");
  EXPECT_DOUBLE_EQ(r.execs_per_sec, 50.0);
  EXPECT_DOUBLE_EQ(r.features_per_sec, 10.0);
  EXPECT_DOUBLE_EQ(r.kernel_features_per_sec, 5.0);
  EXPECT_DOUBLE_EQ(r.states_per_sec, 2.0);
  EXPECT_DOUBLE_EQ(r.crashes_per_sec, 1.0);
}

// dt == half_life gives alpha = 1 - 2^-1 = 0.5: the EWMA lands exactly
// halfway between the previous estimate and the instantaneous rate.
TEST(VelocityTracker, EwmaFoldsWithHalfLifeAlpha) {
  VelocityTracker t({.half_life_secs = 1.0});
  t.observe_at("A1", 1.0, sample(100));  // seeds at 100 execs/sec
  t.observe_at("A1", 2.0, sample(300));  // instantaneous 200 execs/sec
  EXPECT_DOUBLE_EQ(t.rates("A1").execs_per_sec, 150.0);
}

TEST(VelocityTracker, RatesDecayWhenProgressStops) {
  VelocityTracker t({.half_life_secs = 1.0});
  t.observe_at("A1", 1.0, sample(1000, 100));
  const double before = t.rates("A1").features_per_sec;
  t.observe_at("A1", 2.0, sample(2000, 100));  // no new coverage
  const double after = t.rates("A1").features_per_sec;
  EXPECT_LT(after, before);
  EXPECT_GT(t.rates("A1").execs_per_sec, 0.0);
}

TEST(VelocityTracker, NonPositiveDtLeavesRatesUntouched) {
  VelocityTracker t({.half_life_secs = 1.0});
  t.observe_at("A1", 1.0, sample(100));
  const double rate = t.rates("A1").execs_per_sec;
  t.observe_at("A1", 1.0, sample(500));  // same timestamp: baselines only
  EXPECT_DOUBLE_EQ(t.rates("A1").execs_per_sec, rate);
  t.observe_at("A1", 0.5, sample(600));  // out of order
  EXPECT_DOUBLE_EQ(t.rates("A1").execs_per_sec, rate);
}

// A zero-elapsed observation must not fold into the EWMA (division by
// dt), but it MUST advance the baseline sample: the next positive-dt
// observation computes its instantaneous rate against the newest sample,
// not the one from before the zero-dt fold.
TEST(VelocityTracker, ZeroElapsedFoldAdvancesBaselineSample) {
  VelocityTracker t({.half_life_secs = 1.0});
  t.observe_at("A1", 1.0, sample(100));  // seeds at 100 execs/sec
  t.observe_at("A1", 1.0, sample(500));  // dt == 0: baseline only
  EXPECT_DOUBLE_EQ(t.rates("A1").execs_per_sec, 100.0);
  // dt = 1, alpha = 0.5. Instantaneous rate is (500-500)/1 = 0 against the
  // advanced baseline, so the EWMA halves; against a stale baseline of 100
  // it would be (500-100)/1 = 400 and the EWMA would jump to 250.
  t.observe_at("A1", 2.0, sample(500));
  EXPECT_DOUBLE_EQ(t.rates("A1").execs_per_sec, 50.0);
}

// Checkpoint resume restarts the process wall clock: restored reporter
// points keep their original (pre-checkpoint) secs while post-resume
// samples start again near zero. The milestone ladder must stay monotone
// in its content fields (target coverage, executions) regardless, because
// it scans the series in point order, not by timestamp.
TEST(VelocityTracker, MilestoneLadderMonotoneAcrossCheckpointResume) {
  StatsReporter rep(100);
  const uint64_t execs[] = {0, 100, 200, 300, 400};
  const uint64_t cov[] = {0, 10, 20, 30, 40};
  // First three points restored from a checkpoint (original wall clock),
  // last two sampled after resume (wall clock restarted).
  const double secs[] = {0.0, 1.0, 2.0, 0.1, 0.2};
  for (size_t i = 0; i < 5; ++i) {
    StatsReporter::Point p;
    p.sample = sample(execs[i], cov[i]);
    p.secs = secs[i];
    rep.restore_point("A1", p);
  }
  VelocityTracker t;
  std::string error;
  const auto doc = json_parse(t.to_json(&rep), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* ladder =
      doc->find("devices")->items[0].find("time_to_coverage");
  ASSERT_NE(ladder, nullptr);
  ASSERT_EQ(ladder->items.size(), 5u);
  uint64_t last_target = 0, last_execs = 0;
  for (const JsonValue& m : ladder->items) {
    const uint64_t target = m.find("target_coverage")->as_u64();
    const uint64_t e = m.find("executions")->as_u64();
    EXPECT_GE(target, last_target);
    EXPECT_GE(e, last_execs);
    last_target = target;
    last_execs = e;
  }
  EXPECT_EQ(last_execs, 400u);
}

TEST(VelocityTracker, UnknownDeviceHasZeroRates) {
  VelocityTracker t;
  EXPECT_DOUBLE_EQ(t.rates("nope").execs_per_sec, 0.0);
}

TEST(VelocityTracker, AggregateSumsDevices) {
  VelocityTracker t({.half_life_secs = 1.0});
  t.observe_at("A1", 1.0, sample(100, 10));
  t.observe_at("B", 1.0, sample(300, 30));
  const VelocityRates agg = t.aggregate_rates();
  EXPECT_DOUBLE_EQ(agg.execs_per_sec, 400.0);
  EXPECT_DOUBLE_EQ(agg.features_per_sec, 40.0);
  EXPECT_EQ(t.devices().size(), 2u);
}

// Milestone ladder comes from the reporter's (checkpoint-restorable)
// series, not tracker state: fractions of the final total coverage with
// the first executions count that reached each target.
TEST(VelocityTracker, MilestoneLadderFromReporterSeries) {
  StatsReporter rep(100);
  const uint64_t execs[] = {0, 100, 200, 300, 400};
  const uint64_t cov[] = {0, 10, 20, 30, 40};
  for (size_t i = 0; i < 5; ++i) {
    StatsReporter::Point p;
    p.sample = sample(execs[i], cov[i]);
    p.secs = 0.1 * static_cast<double>(i);
    rep.restore_point("A1", p);
  }
  VelocityTracker t;
  std::string error;
  const auto doc = json_parse(t.to_json(&rep), &error);
  ASSERT_TRUE(doc.has_value()) << error;

  const JsonValue* devices = doc->find("devices");
  ASSERT_NE(devices, nullptr);
  ASSERT_EQ(devices->items.size(), 1u);
  const JsonValue& dev = devices->items[0];
  EXPECT_EQ(dev.find("device")->scalar, "A1");

  const JsonValue* ladder = dev.find("time_to_coverage");
  ASSERT_NE(ladder, nullptr);
  ASSERT_EQ(ladder->items.size(), 5u);  // 25/50/75/90/100%
  const uint64_t want_target[] = {10, 20, 30, 36, 40};
  const uint64_t want_execs[] = {100, 200, 300, 400, 400};
  for (size_t i = 0; i < 5; ++i) {
    const JsonValue& m = ladder->items[i];
    EXPECT_EQ(m.find("target_coverage")->as_u64(), want_target[i]) << i;
    EXPECT_EQ(m.find("executions")->as_u64(), want_execs[i]) << i;
    ASSERT_NE(m.find("timing"), nullptr);
    ASSERT_NE(m.find("timing")->find("secs"), nullptr);
  }

  // Aggregate mirrors the single device here.
  const JsonValue* agg = doc->find("aggregate");
  ASSERT_NE(agg, nullptr);
  const JsonValue* agg_ladder = agg->find("time_to_coverage");
  ASSERT_NE(agg_ladder, nullptr);
  EXPECT_EQ(agg_ladder->items.size(), 5u);
}

TEST(VelocityTracker, ExportWithoutReporterStillParses) {
  VelocityTracker t({.half_life_secs = 30.0});
  t.observe_at("A1", 1.0, sample(100, 10));
  std::string error;
  const auto doc = json_parse(t.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_DOUBLE_EQ(doc->find("half_life_secs")->as_double(), 30.0);
  const JsonValue* devices = doc->find("devices");
  ASSERT_NE(devices, nullptr);
  ASSERT_EQ(devices->items.size(), 1u);
  // Without a reporter there is no milestone ladder, only rates.
  EXPECT_EQ(devices->items[0].find("time_to_coverage"), nullptr);
  const JsonValue* timing = devices->items[0].find("timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_DOUBLE_EQ(timing->find("execs_per_sec")->as_double(), 100.0);
}

TEST(VelocityTracker, EmptyCoverageSeriesYieldsEmptyLadder) {
  StatsReporter rep(10);
  StatsReporter::Point p;
  p.sample = sample(100, 0);  // campaign found nothing
  rep.restore_point("A1", p);
  VelocityTracker t;
  std::string error;
  const auto doc = json_parse(t.to_json(&rep), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* ladder =
      doc->find("devices")->items[0].find("time_to_coverage");
  ASSERT_NE(ladder, nullptr);
  EXPECT_TRUE(ladder->items.empty());
}

}  // namespace
}  // namespace df::obs
