# Obs export smoke test (run via cmake -P from ctest): drive a small fleet
# campaign with --stats-json, then validate the document with
# scripts/check_bench_json.py. Inputs: FLEET, PYTHON, CHECKER, OUT.

execute_process(
  COMMAND ${FLEET} 600 3 --quiet --stats-json ${OUT}
  RESULT_VARIABLE campaign_rc)
if(NOT campaign_rc EQUAL 0)
  message(FATAL_ERROR "fleet_campaign failed (rc=${campaign_rc})")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (rc=${check_rc})")
endif()
