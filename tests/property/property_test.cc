// Property-based suites: parameterized sweeps over seeds asserting
// structural invariants of the core data structures under randomized use.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/distill.h"
#include "analysis/semantic.h"
#include "core/descriptions.h"
#include "core/exec/broker.h"
#include "core/gen/generator.h"
#include "core/relation/graph.h"
#include "device/catalog.h"
#include "device/snapshot.h"
#include "dsl/fmt.h"
#include "dsl/parse.h"
#include "hal/parcel.h"
#include "kernel/kasan.h"

namespace df {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// --- Relation graph: Eq. (1) mass conservation under arbitrary histories ---

TEST_P(SeededProperty, RelationGraphInvariants) {
  util::Rng rng(GetParam());
  dsl::CallTable table;
  std::vector<const dsl::CallDesc*> descs;
  for (int i = 0; i < 12; ++i) {
    dsl::CallDesc d;
    d.name = "c" + std::to_string(i);
    descs.push_back(table.add(std::move(d)));
  }
  core::RelationGraph g;
  for (const auto* d : descs) g.add_vertex(d, rng.uniform() + 0.01);

  size_t observed = 0;
  for (int step = 0; step < 3000; ++step) {
    const auto* a = descs[rng.below(descs.size())];
    const auto* b = descs[rng.below(descs.size())];
    if (a != b) {
      g.observe_relation(a, b);
      ++observed;
    }
    if (rng.chance(1, 20)) g.decay(0.8 + rng.uniform() * 0.19);
    if (step % 100 == 0) {
      for (const auto* v : descs) {
        const double in = g.in_weight_sum(v);
        ASSERT_GE(in, 0.0);
        ASSERT_LE(in, 1.0 + 1e-9);
      }
    }
  }
  ASSERT_GT(observed, 0u);
  // Edge weights themselves stay in (0, 1].
  for (const auto* a : descs) {
    for (const auto& [b, w] : g.out_edges(a)) {
      ASSERT_GT(w, 0.0);
      ASSERT_LE(w, 1.0 + 1e-9);
    }
  }
}

// --- Generator: every emitted program is structurally valid and formats/
// parses losslessly -------------------------------------------------------------

TEST_P(SeededProperty, GeneratorProgramsRoundTripThroughText) {
  auto dev = device::make_device("A1", GetParam());
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);
  for (const auto& svc : dev->services()) {
    std::vector<std::pair<uint32_t, double>> w;
    for (const auto& uw : svc->app_usage_profile()) {
      w.emplace_back(uw.code, uw.weight);
    }
    core::add_hal_interface(table, svc->descriptor(), svc->interface(), w);
  }
  core::RelationGraph rel;
  for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
  core::Corpus corpus;
  util::Rng rng(GetParam());
  core::Generator gen(table, rel, corpus, rng, {});

  dsl::Program prog = gen.generate_fresh();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(prog.valid()) << dsl::format_program(prog);
    const std::string text = dsl::format_program(prog);
    std::string err;
    auto reparsed = dsl::parse_program(text, table, &err);
    ASSERT_TRUE(reparsed.has_value()) << err << "\n" << text;
    ASSERT_EQ(dsl::format_program(*reparsed), text);
    ASSERT_EQ(dsl::program_hash(*reparsed), dsl::program_hash(prog));
    prog = rng.chance(1, 2) ? gen.mutate(prog) : gen.generate_fresh();
  }
}

// --- Program surgery: remove_call/repair_refs never break validity ------------

TEST_P(SeededProperty, ProgramSurgeryPreservesValidity) {
  auto dev = device::make_device("A2", GetParam());
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);
  core::RelationGraph rel;
  for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
  core::Corpus corpus;
  util::Rng rng(GetParam() * 31 + 1);
  core::Generator gen(table, rel, corpus, rng, {});

  for (int round = 0; round < 60; ++round) {
    dsl::Program p = gen.generate_fresh();
    while (p.size() > 1) {
      p.remove_call(rng.below(p.size()));
      ASSERT_TRUE(p.valid());
    }
  }
}

// --- Static analysis: repair and canonicalize are idempotent fixpoint
// operators that preserve structural validity --------------------------------

TEST_P(SeededProperty, RepairAndCanonicalizeAreIdempotent) {
  auto dev = device::make_device("A1", GetParam());
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);
  core::RelationGraph rel;
  for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
  core::Corpus corpus;
  util::Rng rng(GetParam() * 17 + 3);
  core::Generator gen(table, rel, corpus, rng, {});
  const analysis::ProgramLint lint;  // strict offline options

  for (int round = 0; round < 40; ++round) {
    dsl::Program p = gen.generate_fresh();
    // Dirty some handle refs so repair has real work: retarget to an
    // arbitrary earlier call or sever entirely (both structurally valid).
    for (size_t i = 0; i < p.calls.size(); ++i) {
      for (auto& v : p.calls[i].args) {
        if (v.ref >= 0 && rng.chance(1, 3)) {
          v.ref = (i > 0 && rng.chance(1, 2))
                      ? static_cast<int32_t>(rng.below(i))
                      : dsl::Value::kNoRef;
        }
      }
    }
    lint.repair(p);
    ASSERT_TRUE(p.valid()) << dsl::format_program(p);
    const uint64_t repaired = dsl::program_hash(p);
    ASSERT_EQ(lint.repair(p), 0u);  // second repair finds nothing
    ASSERT_EQ(dsl::program_hash(p), repaired);

    dsl::Program canon = dsl::clone(p);
    analysis::canonicalize(canon);
    ASSERT_TRUE(canon.valid()) << dsl::format_program(canon);
    const uint64_t canonical = dsl::program_hash(canon);
    ASSERT_EQ(analysis::canonicalize(canon), 0u);  // fixpoint reached
    ASSERT_EQ(dsl::program_hash(canon), canonical);
    // Canonicalization only removes dead producers, so the static
    // footprint of a program and its canonical form are identical.
    ASSERT_EQ(analysis::static_footprint(p), analysis::static_footprint(canon));
    // A canonical program has no dead-statement findings left.
    ASSERT_FALSE(lint.analyze(canon).has(analysis::Pass::kDeadStatement))
        << dsl::format_program(canon);
  }
}

TEST_P(SeededProperty, CleanProgramsAreRepairFixpoints) {
  auto dev = device::make_device("A2", GetParam());
  dsl::CallTable table;
  core::add_syscall_descriptions(table, *dev);
  core::RelationGraph rel;
  for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
  core::Corpus corpus;
  util::Rng rng(GetParam() * 13 + 7);
  core::Generator gen(table, rel, corpus, rng, {});
  const analysis::ProgramLint lint;

  size_t clean_seen = 0;
  for (int round = 0; round < 60; ++round) {
    dsl::Program p = gen.generate_fresh();
    if (!lint.analyze(p).clean()) continue;
    ++clean_seen;
    // Hash stability: repair must be the identity on a clean program.
    const uint64_t before = dsl::program_hash(p);
    ASSERT_EQ(lint.repair(p), 0u) << dsl::format_program(p);
    ASSERT_EQ(dsl::program_hash(p), before);
  }
  ASSERT_GT(clean_seen, 0u);  // the generator's gate keeps most programs clean
}

// --- Parcel: arbitrary byte strings never crash the readers -------------------

TEST_P(SeededProperty, ParcelReadersTotalOnGarbage) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> bytes(rng.below(64));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
    hal::Parcel p(bytes);
    // Interleave reads of every kind; must terminate and never throw.
    for (int k = 0; k < 10; ++k) {
      switch (rng.below(5)) {
        case 0: p.read_u32(); break;
        case 1: p.read_u64(); break;
        case 2: p.read_string(); break;
        case 3: p.read_blob(); break;
        default: p.read_bool(); break;
      }
    }
    SUCCEED();
  }
}

// --- KASAN heap: random alloc/free/access traffic keeps accounting sane -------

TEST_P(SeededProperty, KasanHeapAccountingInvariant) {
  util::Rng rng(GetParam());
  kernel::Dmesg dmesg;
  kernel::Kasan kasan(dmesg);
  std::vector<std::pair<kernel::HeapPtr, size_t>> live;
  size_t live_bytes = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.below(3);
    if (op == 0 || live.empty()) {
      const size_t size = 1 + rng.below(256);
      live.emplace_back(kasan.alloc(size, "prop"), size);
      live_bytes += size;
    } else if (op == 1) {
      const size_t idx = rng.below(live.size());
      kasan.free(live[idx].first, "prop", "free");
      live_bytes -= live[idx].second;
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      const size_t idx = rng.below(live.size());
      const auto [ptr, size] = live[idx];
      // In-bounds access must always pass.
      const size_t off = rng.below(size);
      ASSERT_TRUE(kasan.check(ptr, off, 1, kernel::Access::kRead, "p", "f"));
    }
    ASSERT_EQ(kasan.heap().live_count(), live.size());
    ASSERT_EQ(kasan.heap().live_bytes(), live_bytes);
  }
  ASSERT_EQ(kasan.report_count(), 0u);
  ASSERT_FALSE(dmesg.panicked());
}

// --- Device kernels: random syscall storms never corrupt process state --------

TEST_P(SeededProperty, RandomSyscallStormIsMemorySafe) {
  auto dev = device::make_device("B", GetParam());
  auto& k = dev->kernel();
  const auto task = k.create_task(kernel::TaskOrigin::kNative, "storm");
  util::Rng rng(GetParam() * 7 + 5);
  const auto paths = k.registry().paths();
  for (int i = 0; i < 4000; ++i) {
    kernel::SyscallReq req;
    req.nr = static_cast<kernel::Sys>(
        rng.below(static_cast<uint64_t>(kernel::Sys::kCount)));
    req.fd = static_cast<int32_t>(rng.below(16));
    req.arg = rng.next() % 0x10000;
    req.arg2 = rng.below(16);
    req.arg3 = rng.below(4);
    req.size = rng.below(256);
    if (!paths.empty() && rng.chance(1, 2)) {
      req.path = paths[rng.below(paths.size())];
    }
    req.data.resize(rng.below(64));
    for (auto& b : req.data) b = static_cast<uint8_t>(rng.next());
    k.syscall(task, req);
    if (k.panicked()) dev->reboot();
  }
  SUCCEED();  // no crash / sanitizer violation
}

// --- Snapshots: every driver's save_state/load_state round-trips under a
// randomized warm-up, across the whole device catalog (DESIGN.md §13) -------

TEST_P(SeededProperty, DriverStateSaveLoadRoundTripsAcrossCatalog) {
  std::set<std::string> seen_drivers;
  for (const auto& spec : device::device_table()) {
    auto dev = device::make_device(spec.id, GetParam());
    dsl::CallTable table;
    core::add_syscall_descriptions(table, *dev);
    for (const auto& svc : dev->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      core::add_hal_interface(table, svc->descriptor(), svc->interface(), w);
    }
    const trace::SpecTable spec_table = core::make_spec_table(table);
    core::Broker broker(*dev, spec_table);
    core::RelationGraph rel;
    for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
    core::Corpus corpus;
    util::Rng rng(GetParam() * 101 + 7);
    core::Generator gen(table, rel, corpus, rng, {});

    // Randomized warm-up: drive the drivers into arbitrary live states.
    for (int i = 0; i < 25; ++i) broker.execute(gen.generate_fresh());

    // Pin the state, remember what every driver looked like at the pin.
    const device::StateSnapshot snap = broker.capture_snapshot();
    struct Saved {
      size_t state = 0;
      std::string bytes;
    };
    std::map<std::string, Saved> want;
    for (const auto& d : dev->kernel().drivers()) {
      kernel::StateBuf b;
      d->save_state(b);
      want[std::string(d->name())] = {
          d->current_state(), std::string(b.bytes().begin(), b.bytes().end())};
      seen_drivers.insert(std::string(d->name()));
    }

    auto run_probes = [&](const std::vector<dsl::Program>& probes) {
      std::string fp;
      for (const auto& p : probes) {
        const core::ExecResult r = broker.execute(p);
        for (const int64_t v : r.rets) fp += std::to_string(v) + ",";
        fp += "|" + std::to_string(r.features.size()) + ";";
      }
      return fp;
    };
    std::vector<dsl::Program> probes;
    for (int i = 0; i < 4; ++i) probes.push_back(gen.generate_fresh());
    const std::string replay_want = run_probes(probes);

    // Perturb well past the pin, then rewind.
    for (int i = 0; i < 15; ++i) broker.execute(gen.generate_fresh());
    // Restore must be dmesg-silent and must not rewind campaign-cumulative
    // tallies (state-visit counts and transition matrices survive as they
    // stood just before the restore).
    const uint64_t dmesg_before = dev->kernel().dmesg().next_seq();
    std::map<std::string, std::pair<std::vector<uint64_t>,
                                    std::vector<uint64_t>>> tallies;
    for (const auto& d : dev->kernel().drivers()) {
      tallies[std::string(d->name())] = {d->state_visits(), d->state_matrix()};
    }
    std::string error;
    ASSERT_TRUE(broker.restore_snapshot(snap, &error))
        << spec.id << ": " << error;
    EXPECT_EQ(dev->kernel().dmesg().next_seq(), dmesg_before) << spec.id;
    for (const auto& d : dev->kernel().drivers()) {
      const auto& t = tallies.at(std::string(d->name()));
      EXPECT_EQ(d->state_visits(), t.first) << spec.id << "/" << d->name();
      EXPECT_EQ(d->state_matrix(), t.second) << spec.id << "/" << d->name();
    }

    // Byte-level check: every driver reports exactly the pinned state. This
    // alone can't catch a field *both* save and load forgot, hence the
    // behavioral replay below.
    for (const auto& d : dev->kernel().drivers()) {
      const Saved& w = want.at(std::string(d->name()));
      EXPECT_EQ(d->current_state(), w.state) << spec.id << "/" << d->name();
      kernel::StateBuf b;
      d->save_state(b);
      EXPECT_EQ(std::string(b.bytes().begin(), b.bytes().end()), w.bytes)
          << spec.id << "/" << d->name();
    }
    // Behavioral check: the same probes produce the same returns/features.
    EXPECT_EQ(run_probes(probes), replay_want) << spec.id;
  }
  // The catalog exercises the full driver roster.
  EXPECT_GE(seen_drivers.size(), 11u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace df
