# Provenance smoke test (run via cmake -P from ctest): drive crash_triage
# with span tracing and a crash-report directory, then validate both outputs
# with scripts/check_bench_json.py — the Chrome trace must contain at least
# one complete span tree and at least one crash_<hash>.json provenance
# report must exist and pass schema checks.
# Inputs: TRIAGE, PYTHON, CHECKER, OUTDIR.

file(REMOVE_RECURSE ${OUTDIR})
file(MAKE_DIRECTORY ${OUTDIR})
set(trace ${OUTDIR}/trace.json)
set(crashes ${OUTDIR}/crashes)

execute_process(
  COMMAND ${TRIAGE} A1 30000 3 --quiet
          --trace-out ${trace} --crash-dir ${crashes}
  RESULT_VARIABLE triage_rc)
if(NOT triage_rc EQUAL 0)
  message(FATAL_ERROR "crash_triage failed (rc=${triage_rc})")
endif()

# The checker's chrome-trace branch rejects traces without a complete span.
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${trace}
  RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${trace} (rc=${trace_rc})")
endif()

file(GLOB reports ${crashes}/crash_*.json)
list(LENGTH reports report_count)
if(report_count EQUAL 0)
  message(FATAL_ERROR "no crash_<hash>.json provenance reports in ${crashes}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${reports}
  RESULT_VARIABLE crash_rc)
if(NOT crash_rc EQUAL 0)
  message(FATAL_ERROR "provenance reports failed validation (rc=${crash_rc})")
endif()
