#!/usr/bin/env python3
"""End-to-end smoke test for the live introspection server (DESIGN.md §10).

Launches fleet_campaign with --serve-port 0 and a linger window, parses the
announce line for the ephemeral port, waits for the final summary line, then
scrapes /healthz, /metrics, /status, /coverage, /frontier, and /buildz
while the process lingers and validates shapes:

  - /healthz answers 200 "ok" (no stall at this tiny budget),
  - /metrics is Prometheus exposition carrying the engine execution
    counters,
  - /status and /coverage parse as JSON with the full device table,
  - /frontier carries a per-device frontier report whose every unvisited
    state is classified (DESIGN.md §11),
  - /buildz reports the binary's compiler and telemetry schema versions.

Usage: serve_smoke.py <path-to-fleet_campaign>
"""

import json
import re
import subprocess
import sys
import urllib.error
import urllib.request

ANNOUNCE = re.compile(
    r"serving live introspection on http://127\.0\.0\.1:(\d+)/")
FLEET = {"A1", "A2", "B", "C1", "C2", "D", "E"}
EXECS = 600


def fail(proc, msg):
    proc.kill()
    proc.wait()
    print(f"FAIL: {msg}")
    return 1


def scrape(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as res:
        return res.status, res.read().decode("utf-8")


def main(argv):
    if len(argv) != 1:
        print(__doc__)
        return 2
    cmd = [argv[0], str(EXECS), "7", "--serve-port", "0",
           "--serve-linger-ms", "30000", "--quiet"]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    try:
        line = proc.stdout.readline()
        m = ANNOUNCE.search(line)
        if m is None:
            return fail(proc, f"no announce line, got {line!r}")
        port = int(m.group(1))

        # Wait for the one-line summary (printed even under --quiet) so the
        # campaign is finished and /status reflects the final state; the
        # process then lingers with the server up.
        done = False
        for line in proc.stdout:
            if line.startswith("fleet_campaign:"):
                done = True
                break
        if not done:
            return fail(proc, "campaign exited without a summary line")

        status, body = scrape(port, "/healthz")
        if status != 200 or body.strip() != "ok":
            return fail(proc, f"/healthz: {status} {body!r}")

        status, body = scrape(port, "/metrics")
        if status != 200 or not body:
            return fail(proc, f"/metrics: {status}, empty body")
        if "# TYPE df_engine_executions counter" not in body:
            return fail(proc, "/metrics missing engine execution counters")

        status, body = scrape(port, "/status")
        if status != 200:
            return fail(proc, f"/status: {status}")
        doc = json.loads(body)
        devices = {d["device"] for d in doc["devices"]}
        if devices != FLEET:
            return fail(proc, f"/status devices: {sorted(devices)}")
        if not all(d["executions"] == EXECS for d in doc["devices"]):
            return fail(proc, "/status executions incomplete")
        if doc["healthy"] is not True:
            return fail(proc, "/status healthy must be true")
        if "velocity" not in doc or "fleet" not in doc:
            return fail(proc, "/status missing velocity/fleet sections")

        status, body = scrape(port, "/coverage")
        if status != 200:
            return fail(proc, f"/coverage: {status}")
        doc = json.loads(body)
        if len(doc["devices"]) != len(FLEET):
            return fail(proc, "/coverage must list the whole fleet")
        if not doc["devices"][0]["state_coverage"]:
            return fail(proc, "/coverage state_coverage empty")

        status, body = scrape(port, "/frontier")
        if status != 200:
            return fail(proc, f"/frontier: {status}")
        doc = json.loads(body)
        if len(doc["devices"]) != len(FLEET):
            return fail(proc, "/frontier must list the whole fleet")
        classes = {"unreachable-from-frontier", "planned-but-failed",
                   "never-attempted"}
        for dev in doc["devices"]:
            rep = dev["frontier"]
            if len(rep["unvisited"]) != \
                    rep["states_total"] - rep["states_visited"]:
                return fail(proc, f"/frontier incomplete on {dev['device']}")
            for state in rep["unvisited"]:
                if state["class"] not in classes:
                    return fail(proc,
                                f"/frontier bad class {state['class']!r}")

        status, body = scrape(port, "/buildz")
        if status != 200:
            return fail(proc, f"/buildz: {status}")
        doc = json.loads(body)
        if not doc["compiler"]:
            return fail(proc, "/buildz compiler empty")
        if "analytics" not in doc["schema"]:
            return fail(proc, "/buildz missing analytics schema version")
    except (urllib.error.URLError, OSError, KeyError,
            json.JSONDecodeError) as e:
        return fail(proc, f"{type(e).__name__}: {e}")

    proc.terminate()
    proc.wait(timeout=10)
    print("OK: serve smoke (announce, /healthz, /metrics, /status, "
          "/coverage, /frontier, /buildz)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
