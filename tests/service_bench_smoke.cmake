# Service scheduling bench smoke test (run via cmake -P from ctest): run
# bench_service_throughput with a small job batch, then validate the
# emitted BENCH_service.json (including the service section's determinism
# flag and preemption accounting) with scripts/check_bench_json.py.
# Inputs: BENCH, PYTHON, CHECKER, OUTDIR.

file(MAKE_DIRECTORY ${OUTDIR})

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          DF_SERVICE_JOBS=3 DF_SERVICE_BUDGET=1024 DF_BENCH_JSON_DIR=${OUTDIR}
          ${BENCH}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_service_throughput failed (rc=${bench_rc}): "
                      "preempted jobs diverged from their uninterrupted "
                      "references or JSON write failure")
endif()

set(OUT ${OUTDIR}/BENCH_service.json)
if(NOT EXISTS ${OUT})
  message(FATAL_ERROR "bench_service_throughput did not write ${OUT}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (rc=${check_rc})")
endif()
