#!/usr/bin/env python3
"""End-to-end test for the campaign service control plane (DESIGN.md §14).

Boots df_service on an ephemeral port, then drives the whole job lifecycle
over HTTP:

  - POST /jobs admits two campaigns (and rejects a malformed spec with 400),
  - GET /jobs lists them with queue order, GET /jobs/<id> shows the record,
  - POST /jobs/<id>/pause parks the long job, /resume re-enqueues it,
  - POST /jobs/<id>/cancel kills a queued job (terminal, never runs),
  - GET /healthz answers 200 "ok" at every probe point,
  - per-job /status and /coverage views populate after the first quantum,
  - the finished job's result document is byte-identical to an
    uninterrupted `df_service --oneshot` reference run of the same spec —
    the scheduler determinism contract, exercised through the real binary
    and the real HTTP surface,
  - POST /shutdown stops the scheduler loop and the process exits 0.

Usage: service_e2e.py <path-to-df_service> [workdir]

The workdir (default: a fresh temp dir) keeps the service root and the
service log; CI uploads it as an artifact when the test fails.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

ANNOUNCE = re.compile(r"serving job API on http://127\.0\.0\.1:(\d+)/")

SPEC_A = {
    "name": "e2e-a", "devices": ["A1", "E"], "seed": 11, "budget": 1280,
    "priority": 1, "slice": 64, "sample_every": 128,
    "checkpoint_every": 256, "fault_rate": 0.0,
}
SPEC_B = {
    "name": "e2e-b", "devices": ["B"], "seed": 23, "budget": 1024,
    "priority": 0, "slice": 64, "sample_every": 128,
    "checkpoint_every": 256, "fault_rate": 0.0,
}
# Low priority, never scheduled before the cancel at this quantum cadence.
SPEC_C = {
    "name": "e2e-c", "devices": ["C1"], "seed": 7, "budget": 4096,
    "priority": -10, "slice": 64, "sample_every": 128,
    "checkpoint_every": 512, "fault_rate": 0.0,
}
BAD_SPEC = {"name": "nope", "devices": ["NOT-A-DEVICE"], "budget": 100}


def request(port, path, body=None, method=None):
    url = f"http://127.0.0.1:{port}{path}"
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as res:
            return res.status, res.read().decode("utf-8")
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode("utf-8")


def healthz_ok(port):
    status, body = request(port, "/healthz")
    return status == 200 and body.strip() == "ok"


def wait_state(port, job_id, want, deadline_s=60):
    end = time.monotonic() + deadline_s
    state = "?"
    while time.monotonic() < end:
        status, body = request(port, f"/jobs/{job_id}")
        if status == 200:
            state = json.loads(body)["state"]
            if state == want:
                return True, state
        time.sleep(0.1)
    return False, state


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    binary = argv[0]
    workdir = argv[1] if len(argv) > 1 else tempfile.mkdtemp(
        prefix="df_service_e2e_")
    os.makedirs(workdir, exist_ok=True)
    root = os.path.join(workdir, "root")
    log_path = os.path.join(workdir, "df_service.log")

    log = open(log_path, "w")
    proc = subprocess.Popen(
        [binary, "--root", root, "--port", "0", "--idle-exit-ms", "120000"],
        stdout=subprocess.PIPE, stderr=log, text=True)

    def fail(msg):
        proc.kill()
        proc.wait()
        print(f"FAIL: {msg}")
        print(f"artifacts in {workdir}")
        return 1

    try:
        line = proc.stdout.readline()
        m = ANNOUNCE.search(line)
        if m is None:
            return fail(f"no announce line, got {line!r}")
        port = int(m.group(1))

        if not healthz_ok(port):
            return fail("/healthz not ok at boot")

        # Malformed spec: unknown device -> 400 with a descriptive error.
        status, body = request(port, "/jobs", body=BAD_SPEC)
        if status != 400 or "error" not in json.loads(body):
            return fail(f"bad spec must 400: {status} {body!r}")

        ids = {}
        for key, spec in (("a", SPEC_A), ("b", SPEC_B), ("c", SPEC_C)):
            status, body = request(port, "/jobs", body=spec)
            if status != 200:
                return fail(f"submit {key}: {status} {body!r}")
            ids[key] = json.loads(body)["id"]

        status, body = request(port, "/jobs")
        listing = json.loads(body)
        if status != 200 or len(listing["jobs"]) != 3:
            return fail(f"/jobs listing: {status} {body!r}")

        # Pause job a (running or queued — both legal), check it parks.
        status, body = request(port, f"/jobs/{ids['a']}/pause", method="POST")
        if status != 200:
            return fail(f"pause a: {status} {body!r}")
        ok, state = wait_state(port, ids["a"], "paused")
        if not ok:
            return fail(f"job a never paused (last state {state})")
        # Pausing a paused job is an invalid transition: 409.
        status, body = request(port, f"/jobs/{ids['a']}/pause", method="POST")
        if status != 409:
            return fail(f"double pause must 409: {status} {body!r}")

        if not healthz_ok(port):
            return fail("/healthz not ok while job paused")

        # Cancel the low-priority queued job: terminal, result stays empty.
        status, body = request(port, f"/jobs/{ids['c']}/cancel",
                               method="POST")
        if status != 200:
            return fail(f"cancel c: {status} {body!r}")
        ok, state = wait_state(port, ids["c"], "cancelled")
        if not ok:
            return fail(f"job c not cancelled (last state {state})")
        # Resuming a cancelled job is invalid: 409; unknown job is 404.
        status, _ = request(port, f"/jobs/{ids['c']}/resume", method="POST")
        if status != 409:
            return fail(f"resume cancelled must 409: {status}")
        status, _ = request(port, "/jobs/999/pause", method="POST")
        if status != 404:
            return fail(f"unknown job must 404: {status}")

        # Resume a; both a and b must finish.
        status, body = request(port, f"/jobs/{ids['a']}/resume",
                               method="POST")
        if status != 200:
            return fail(f"resume a: {status} {body!r}")
        for key in ("a", "b"):
            ok, state = wait_state(port, ids[key], "done", deadline_s=120)
            if not ok:
                return fail(f"job {key} never finished (last state {state})")

        # Per-job views are populated after the first quantum.
        for view in ("status", "coverage"):
            status, body = request(port, f"/jobs/{ids['a']}/{view}")
            if status != 200 or body.strip() in ("", "{}"):
                return fail(f"/jobs/{ids['a']}/{view} empty: {status}")

        if not healthz_ok(port):
            return fail("/healthz not ok after jobs finished")

        # Determinism: the preempted/paused/resumed job a reproduces the
        # uninterrupted --oneshot reference byte for byte.
        results = {}
        for key in ("a", "b"):
            status, body = request(port, f"/jobs/{ids[key]}")
            rec = json.loads(body)
            if rec["progress"] != rec["spec"]["budget"]:
                return fail(f"job {key} progress {rec['progress']}")
            results[key] = json.dumps(rec["result"], sort_keys=True)
        for key, spec in (("a", SPEC_A), ("b", SPEC_B)):
            spec_path = os.path.join(workdir, f"spec_{key}.json")
            with open(spec_path, "w") as f:
                json.dump(spec, f)
            out = subprocess.run(
                [binary, "--oneshot", spec_path, "--scratch",
                 os.path.join(workdir, f"oneshot_{key}")],
                capture_output=True, text=True, timeout=300)
            if out.returncode != 0:
                return fail(f"oneshot {key} failed: {out.stderr!r}")
            want = json.dumps(json.loads(out.stdout), sort_keys=True)
            if results[key] != want:
                return fail(f"job {key} diverged from reference:\n"
                            f"  service:   {results[key]}\n"
                            f"  reference: {want}")

        status, body = request(port, "/shutdown", method="POST")
        if status != 200:
            return fail(f"/shutdown: {status} {body!r}")
        if proc.wait(timeout=30) != 0:
            return fail(f"service exited {proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        log.close()

    print("service_e2e: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
