// Tests for the eBPF-style tracer: origin filtering, critical-argument
// extraction, specialized syscall IDs, and directional coverage features.
#include <gtest/gtest.h>

#include "device/catalog.h"
#include "hal/services/sensors_hal.h"
#include "trace/ebpf.h"
#include "trace/syscall_trace.h"

namespace df::trace {
namespace {

using kernel::Sys;
using kernel::SyscallReq;

TEST(CriticalArg, IoctlUsesRequest) {
  SyscallReq req;
  req.nr = Sys::kIoctl;
  req.arg = 0x7401;
  EXPECT_EQ(critical_arg_of(req), 0x7401u);
}

TEST(CriticalArg, SockoptPacksLevelAndName) {
  SyscallReq req;
  req.nr = Sys::kSetsockopt;
  req.arg = 6;
  req.arg2 = 1;
  EXPECT_EQ(critical_arg_of(req), (6ull << 32) | 1);
}

TEST(CriticalArg, SocketPacksFamilyProto) {
  SyscallReq req;
  req.nr = Sys::kSocket;
  req.arg = 31;
  req.arg3 = 1;
  EXPECT_EQ(critical_arg_of(req), (31ull << 32) | 1);
}

TEST(CriticalArg, PlainSyscallsZero) {
  SyscallReq req;
  req.nr = Sys::kRead;
  req.arg = 99;
  EXPECT_EQ(critical_arg_of(req), 0u);
}

TEST(SpecTable, AssignsStableDenseIds) {
  SpecTable t;
  const uint32_t a = t.add(Sys::kIoctl, 0x7401);
  const uint32_t b = t.add(Sys::kIoctl, 0x7402);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.add(Sys::kIoctl, 0x7401), a);  // idempotent
  EXPECT_EQ(t.id_of(Sys::kIoctl, 0x7401), a);
  EXPECT_EQ(t.size(), 2u);
}

TEST(SpecTable, FallsBackToPlainForm) {
  SpecTable t;
  const uint32_t plain = t.add_plain(Sys::kIoctl);
  EXPECT_EQ(t.id_of(Sys::kIoctl, 0x9999), plain);
}

TEST(SpecTable, OverflowBucketsAreDeterministic) {
  SpecTable t;
  const uint32_t a = t.id_of(Sys::kIoctl, 0x1234);
  const uint32_t b = t.id_of(Sys::kIoctl, 0x1234);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1u << 20);  // overflow namespace
}

TEST(HalFeature, NamespaceDisjointFromKernelCoverage) {
  const uint64_t hal = kernel::cov_feature(kHalCovDriverId, 123);
  const uint64_t drv = kernel::cov_feature(3, 123);
  EXPECT_TRUE(is_hal_feature(hal));
  EXPECT_FALSE(is_hal_feature(drv));
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = device::make_device("A1", 1);
    table_.add(Sys::kIoctl, 0x9002);  // SENS_ENABLE
    table_.add(Sys::kIoctl, 0x9004);  // SENS_SET_RATE
    table_.add_plain(Sys::kOpenAt);
  }
  void hal_activate(uint32_t sensor) {
    hal::Parcel p;
    p.write_u32(sensor);
    p.write_u32(1);
    dev_->service_manager().call("android.hardware.sensors@sim",
                                 hal::services::SensorsHal::kActivate, p);
  }
  std::unique_ptr<device::Device> dev_;
  SpecTable table_;
};

TEST_F(TracerTest, RecordsHalOriginatedSequence) {
  DirectionalTracer tracer(dev_->kernel(), table_);
  tracer.begin_execution();
  hal_activate(3);
  // The Sensors HAL opens the hub and issues ENABLE + SET_RATE.
  const auto& seq = tracer.sequence();
  ASSERT_GE(seq.size(), 3u);
  EXPECT_EQ(seq[0], table_.id_of(Sys::kOpenAt, 0));
  EXPECT_EQ(seq[1], table_.id_of(Sys::kIoctl, 0x9002));
  EXPECT_EQ(seq[2], table_.id_of(Sys::kIoctl, 0x9004));
}

TEST_F(TracerTest, IgnoresNativeTasks) {
  DirectionalTracer tracer(dev_->kernel(), table_);
  tracer.begin_execution();
  const auto task =
      dev_->kernel().create_task(kernel::TaskOrigin::kNative, "n");
  SyscallReq req;
  req.nr = Sys::kOpenAt;
  req.path = "/dev/sensor_hub";
  dev_->kernel().syscall(task, req);
  EXPECT_TRUE(tracer.sequence().empty());
}

TEST_F(TracerTest, FeaturesAreOrderSensitive) {
  DirectionalTracer tracer(dev_->kernel(), table_);
  tracer.begin_execution();
  hal_activate(3);
  const auto f1 = tracer.take_features();

  // Restart the HAL so the open happens again, then activate a different
  // sensor id — same syscall IDs, same order: same features.
  dev_->reboot();
  tracer.begin_execution();
  hal_activate(5);
  const auto f2 = tracer.take_features();
  EXPECT_EQ(f1, f2);  // IDs ignore payload values by design
  for (uint64_t f : f1) EXPECT_TRUE(is_hal_feature(f));
}

TEST_F(TracerTest, TakeFeaturesClearsSequence) {
  DirectionalTracer tracer(dev_->kernel(), table_);
  tracer.begin_execution();
  hal_activate(1);
  EXPECT_FALSE(tracer.sequence().empty());
  tracer.take_features();
  EXPECT_TRUE(tracer.sequence().empty());
}

TEST_F(TracerTest, ChainedPairFeaturesDifferByPrefix) {
  // [A, B] and [B] produce different features for B because the chained
  // hash includes the predecessor.
  SpecTable t;
  const uint32_t a = t.add(Sys::kIoctl, 1);
  const uint32_t b = t.add(Sys::kIoctl, 2);
  const uint64_t b_after_a = util::hash_combine(a, b);
  const uint64_t b_first = util::hash_combine(0, b);
  EXPECT_NE(b_after_a, b_first);
}

TEST(EbpfProbe, DetachOnDestruction) {
  auto dev = device::make_device("A1", 1);
  uint64_t count = 0;
  {
    EbpfProbe probe(dev->kernel(), std::nullopt,
                    [&](const SyscallEvent&) { ++count; });
    const auto task =
        dev->kernel().create_task(kernel::TaskOrigin::kNative, "n");
    SyscallReq req;
    req.nr = Sys::kOpenAt;
    req.path = "/dev/rt1711";
    dev->kernel().syscall(task, req);
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(probe.events_delivered(), 1u);
  }
  // Probe detached: no more deliveries.
  const auto task2 =
      dev->kernel().create_task(kernel::TaskOrigin::kNative, "n2");
  SyscallReq req;
  req.nr = Sys::kOpenAt;
  req.path = "/dev/rt1711";
  dev->kernel().syscall(task2, req);
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace df::trace
