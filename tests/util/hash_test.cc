#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace df::util {
namespace {

TEST(Hash, Fnv1aKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Hash, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("ioctl$RT1711_ATTACH"), fnv1a("ioctl$RT1711_DETACH"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

TEST(Hash, Mix64IsBijectiveish) {
  // A strong mixer should not collide on a small dense range.
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, CombineChainUnique) {
  // Chained combination over sequences must distinguish permutations —
  // the property directional HAL coverage depends on.
  const uint64_t seq1 = hash_combine(hash_combine(0, 10), 20);
  const uint64_t seq2 = hash_combine(hash_combine(0, 20), 10);
  EXPECT_NE(seq1, seq2);
}

TEST(Hash, ConstexprUsable) {
  static_assert(fnv1a("df") != 0);
  static_assert(mix64(1) != 1);
  SUCCEED();
}

}  // namespace
}  // namespace df::util
