#include "util/log.h"

#include <gtest/gtest.h>

#include <vector>

namespace df::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
    old_level_ = log_level();
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(old_level_);
    clear_log_overrides();
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel old_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, RespectsMinimumLevel) {
  set_log_level(LogLevel::kWarn);
  DF_LOG(kInfo) << "dropped";
  DF_LOG(kWarn) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LogTest, StreamsMultipleValues) {
  set_log_level(LogLevel::kDebug);
  DF_LOG(kError) << "coverage=" << 42 << " device=" << "A1";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "coverage=42 device=A1");
  EXPECT_EQ(captured_[0].first, LogLevel::kError);
}

TEST_F(LogTest, LevelOrdering) {
  set_log_level(LogLevel::kError);
  DF_LOG(kDebug) << "no";
  DF_LOG(kInfo) << "no";
  DF_LOG(kWarn) << "no";
  DF_LOG(kError) << "yes";
  ASSERT_EQ(captured_.size(), 1u);
}

TEST_F(LogTest, ConfigureParsesGlobalAndOverrides) {
  ASSERT_TRUE(configure_log("info,engine=debug,hal=error"));
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  EXPECT_EQ(component_level("engine"), LogLevel::kDebug);
  EXPECT_EQ(component_level("hal"), LogLevel::kError);
  EXPECT_EQ(component_level("daemon"), LogLevel::kInfo);  // falls back
}

TEST_F(LogTest, ComponentOverrideLowersThreshold) {
  set_log_level(LogLevel::kWarn);
  ASSERT_TRUE(configure_log("warn,engine=debug"));
  DF_CLOG("engine", kDebug) << "engine detail";
  DF_CLOG("daemon", kDebug) << "dropped";
  DF_LOG(kDebug) << "dropped too";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "engine detail");
}

TEST_F(LogTest, ComponentOverrideRaisesThreshold) {
  ASSERT_TRUE(configure_log("debug,hal=error"));
  DF_CLOG("hal", kInfo) << "dropped";
  DF_CLOG("hal", kError) << "hal error";
  DF_CLOG("engine", kInfo) << "engine info";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "hal error");
  EXPECT_EQ(captured_[1].second, "engine info");
}

TEST_F(LogTest, MalformedSpecAppliesNothing) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(configure_log("info,engine=loud"));   // bad level name
  EXPECT_FALSE(configure_log("verbose"));            // bad global level
  EXPECT_FALSE(configure_log("=debug"));             // empty component
  EXPECT_FALSE(configure_log(""));                   // empty spec
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  EXPECT_EQ(component_level("engine"), LogLevel::kWarn);
}

TEST_F(LogTest, OverridesReplacedWholesale) {
  ASSERT_TRUE(configure_log("warn,engine=debug"));
  ASSERT_TRUE(configure_log("warn,daemon=info"));
  EXPECT_EQ(component_level("engine"), LogLevel::kWarn);  // old override gone
  EXPECT_EQ(component_level("daemon"), LogLevel::kInfo);
}

}  // namespace
}  // namespace df::util
