#include "util/log.h"

#include <gtest/gtest.h>

#include <vector>

namespace df::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
    old_level_ = log_level();
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(old_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel old_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, RespectsMinimumLevel) {
  set_log_level(LogLevel::kWarn);
  DF_LOG(kInfo) << "dropped";
  DF_LOG(kWarn) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LogTest, StreamsMultipleValues) {
  set_log_level(LogLevel::kDebug);
  DF_LOG(kError) << "coverage=" << 42 << " device=" << "A1";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "coverage=42 device=A1");
  EXPECT_EQ(captured_[0].first, LogLevel::kError);
}

TEST_F(LogTest, LevelOrdering) {
  set_log_level(LogLevel::kError);
  DF_LOG(kDebug) << "no";
  DF_LOG(kInfo) << "no";
  DF_LOG(kWarn) << "no";
  DF_LOG(kError) << "yes";
  ASSERT_EQ(captured_.size(), 1u);
}

}  // namespace
}  // namespace df::util
