#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace df::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo = lo || v == -3;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
}

TEST(Rng, ProbExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.prob(0.0));
    EXPECT_TRUE(r.prob(1.0));
    EXPECT_FALSE(r.prob(-1.0));
    EXPECT_TRUE(r.prob(2.0));
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng r(19);
  std::vector<double> w = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[r.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(Rng, WeightedEmptyAndZero) {
  Rng r(23);
  EXPECT_EQ(r.weighted({}), 0u);
  // All-zero weights degrade to uniform choice over indices.
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.weighted({0.0, 0.0, 0.0}));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, WeightedIgnoresNegative) {
  Rng r(29);
  std::vector<double> w = {-5.0, 1.0};
  for (int i = 0; i < 500; ++i) EXPECT_EQ(r.weighted(w), 1u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(31);
  auto p = r.permutation(50);
  std::sort(p.begin(), p.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, PermutationShuffles) {
  Rng r(37);
  const auto a = r.permutation(50);
  const auto b = r.permutation(50);
  EXPECT_NE(a, b);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(41);
  Rng child = a.fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

// Statistical sanity: bit balance of the generator output.
TEST(Rng, BitBalance) {
  Rng r(43);
  int ones = 0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    ones += __builtin_popcountll(r.next());
  }
  const double frac = static_cast<double>(ones) / (64.0 * kSamples);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace df::util
