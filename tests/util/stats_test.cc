#include "util/stats.h"

#include <gtest/gtest.h>

namespace df::util {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({7.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 0.001);
}

TEST(MannWhitney, EmptySamplesNotSignificant) {
  const auto r = mann_whitney_u({}, {1.0, 2.0});
  EXPECT_FALSE(r.significant_at_05);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

TEST(MannWhitney, AllTiedNotSignificant) {
  const auto r = mann_whitney_u({5, 5, 5, 5}, {5, 5, 5, 5});
  EXPECT_FALSE(r.significant_at_05);
}

TEST(MannWhitney, ClearlySeparatedSamplesSignificant) {
  // Ten repetitions, as in the paper's evaluation protocol.
  std::vector<double> a = {101, 103, 98, 105, 99, 102, 104, 100, 97, 106};
  std::vector<double> b = {51, 53, 48, 55, 49, 52, 54, 50, 47, 56};
  const auto r = mann_whitney_u(a, b);
  EXPECT_TRUE(r.significant_at_05);
  EXPECT_LT(r.p_two_sided, 0.001);
  EXPECT_GT(r.z, 3.0);
}

TEST(MannWhitney, IdenticalDistributionsNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> b = {1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5, 0.5};
  const auto r = mann_whitney_u(a, b);
  EXPECT_FALSE(r.significant_at_05);
}

TEST(MannWhitney, SymmetricInDirection) {
  std::vector<double> a = {10, 11, 12, 13, 14};
  std::vector<double> b = {1, 2, 3, 4, 5};
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-9);
  EXPECT_NEAR(ab.z, -ba.z, 1e-9);
}

TEST(MannWhitney, HandlesTiesViaMidranks) {
  std::vector<double> a = {1, 1, 2, 2, 3};
  std::vector<double> b = {2, 2, 3, 3, 4};
  const auto r = mann_whitney_u(a, b);
  // Must not crash or produce NaN; direction favours b.
  EXPECT_EQ(r.p_two_sided, r.p_two_sided);  // not NaN
  EXPECT_LT(r.u, 12.5);                     // U below the mean of 12.5
}

TEST(MannWhitney, UStatisticRange) {
  std::vector<double> a = {9, 10, 11};
  std::vector<double> b = {1, 2, 3};
  const auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.u, 9.0);  // a wins every pairwise comparison: U = n1*n2
}

}  // namespace
}  // namespace df::util
