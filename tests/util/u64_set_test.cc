#include "util/u64_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace df::util {
namespace {

TEST(U64Set, InsertAndContains) {
  U64Set s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(42));
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(43));
  EXPECT_EQ(s.size(), 1u);
}

TEST(U64Set, ZeroKeyIsAValidMember) {
  U64Set s;
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.insert(0));
  EXPECT_FALSE(s.insert(0));
  EXPECT_TRUE(s.contains(0));
  EXPECT_EQ(s.size(), 1u);
  s.clear();
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.insert(0));
}

TEST(U64Set, GrowsPastInitialCapacity) {
  U64Set s;
  for (uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(s.insert(i * 0x9e37));
  EXPECT_EQ(s.size(), 10000u);
  for (uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(s.contains(i * 0x9e37));
  EXPECT_FALSE(s.contains(7));
}

TEST(U64Set, ClearRetainsCapacity) {
  U64Set s;
  for (uint64_t i = 1; i <= 1000; ++i) s.insert(i);
  const size_t cap = s.capacity();
  EXPECT_GT(cap, 1000u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.capacity(), cap);  // the per-execution reset frees nothing
  for (uint64_t i = 1; i <= 1000; ++i) EXPECT_FALSE(s.contains(i));
  for (uint64_t i = 1; i <= 1000; ++i) EXPECT_TRUE(s.insert(i));
  EXPECT_EQ(s.capacity(), cap);
}

TEST(U64Set, ReservePreventsGrowth) {
  U64Set s;
  s.reserve(5000);
  const size_t cap = s.capacity();
  for (uint64_t i = 1; i <= 5000; ++i) s.insert(i);
  EXPECT_EQ(s.capacity(), cap);
}

// Coverage features cluster in the high bits ((driver_id << 48) | block);
// the mixer must keep probe chains functional for exactly that shape.
TEST(U64Set, HandlesClusteredCoverageFeatureKeys) {
  U64Set s;
  for (uint16_t driver = 1; driver <= 12; ++driver) {
    for (uint64_t block = 0; block < 512; ++block) {
      EXPECT_TRUE(s.insert((uint64_t{driver} << 48) | block));
    }
  }
  EXPECT_EQ(s.size(), 12u * 512u);
  EXPECT_TRUE(s.contains((uint64_t{3} << 48) | 17));
  EXPECT_FALSE(s.contains((uint64_t{13} << 48) | 17));
}

TEST(U64Set, MatchesUnorderedSetOracle) {
  U64Set s;
  std::unordered_set<uint64_t> oracle;
  Rng rng(1234);
  for (int i = 0; i < 20000; ++i) {
    // Narrow key space forces duplicate inserts and both outcomes.
    const uint64_t key = rng.next() & 0xfff;
    EXPECT_EQ(s.insert(key), oracle.insert(key).second);
  }
  EXPECT_EQ(s.size(), oracle.size());
  for (uint64_t key = 0; key <= 0xfff; ++key) {
    EXPECT_EQ(s.contains(key), oracle.count(key) != 0) << key;
  }
}

}  // namespace
}  // namespace df::util
